"""Exception hierarchy for the engine.

Errors are split along the same lines as the paper's prototype: problems
detected by the SQL front-end (lexing, parsing, semantic analysis) versus
problems raised by the runtime (the executor and the external graph
library).  Everything derives from :class:`ReproError` so applications can
catch engine failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SqlError(ReproError):
    """Base class for errors detected by the SQL front-end."""


class LexError(SqlError):
    """Invalid character sequence while tokenizing.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}:{column}")
        self.line = line
        self.column = column


class ParseError(SqlError):
    """The token stream does not form a valid statement."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(SqlError):
    """Semantic analysis failure: unknown names, ambiguity, type mismatch.

    The paper mandates one such check explicitly: the types of
    ``E.S, E.D, VP.X, VP.Y`` in a REACHES predicate must match,
    "otherwise a semantic error arises" (Section 2).
    """


class CatalogError(ReproError):
    """Unknown or duplicate table/column at the catalog level."""


class TypeError_(ReproError):
    """Value does not fit the declared column type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class TransactionError(ReproError):
    """Transaction-control misuse: BEGIN inside a transaction, COMMIT or
    ROLLBACK without one, DDL inside an explicit transaction, or
    transaction statements outside a session."""


class TransactionConflictError(TransactionError):
    """A write-write conflict detected at COMMIT: another transaction
    committed to one of this transaction's written tables after its
    snapshot was pinned.  The losing transaction is rolled back; retry
    it against fresh state."""


class ExecutionError(ReproError):
    """Generic runtime failure inside a physical operator."""


class ResourceLimitError(ExecutionError):
    """A materialization guard tripped (cross products, nested-loop
    joins and graph-join pair grids all fail fast instead of exhausting
    memory; the MonetDB prototype shares the failure mode)."""


class GraphRuntimeError(ExecutionError):
    """Raised by the graph runtime library.

    The paper requires this for non-positive weights: the CHEAPEST SUM
    weight expression "must always be strictly greater than 0, otherwise a
    runtime exception is raised" (Section 2).
    """


class NotSupportedError(ReproError):
    """A recognized SQL feature that this engine deliberately omits."""
