"""Exception hierarchy for the engine.

Errors are split along the same lines as the paper's prototype: problems
detected by the SQL front-end (lexing, parsing, semantic analysis) versus
problems raised by the runtime (the executor and the external graph
library).  Everything derives from :class:`ReproError` so applications can
catch engine failures with a single ``except`` clause.

Every user-facing class carries a stable, machine-readable :attr:`code`
(``ReproError.code``) so errors survive serialization: the database
server (:mod:`repro.server`) ships ``{code, message}`` pairs over the
wire instead of tracebacks, and :func:`error_from_code` rebuilds the
matching typed exception on the client.  Codes are part of the wire
protocol — never renamed, only added.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""

    #: Stable machine-readable identifier, serialized by the wire
    #: protocol; subclasses override it (never reuse or rename a code).
    code = "ERROR"


class SqlError(ReproError):
    """Base class for errors detected by the SQL front-end."""

    code = "SQL_ERROR"


class LexError(SqlError):
    """Invalid character sequence while tokenizing.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    code = "LEX_ERROR"

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}:{column}")
        self.line = line
        self.column = column


class ParseError(SqlError):
    """The token stream does not form a valid statement."""

    code = "PARSE_ERROR"

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(SqlError):
    """Semantic analysis failure: unknown names, ambiguity, type mismatch.

    The paper mandates one such check explicitly: the types of
    ``E.S, E.D, VP.X, VP.Y`` in a REACHES predicate must match,
    "otherwise a semantic error arises" (Section 2).
    """

    code = "BIND_ERROR"


class CatalogError(ReproError):
    """Unknown or duplicate table/column at the catalog level."""

    code = "CATALOG_ERROR"


class TypeError_(ReproError):
    """Value does not fit the declared column type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """

    code = "TYPE_ERROR"


class TransactionError(ReproError):
    """Transaction-control misuse: BEGIN inside a transaction, COMMIT or
    ROLLBACK without one, DDL inside an explicit transaction, or
    transaction statements outside a session."""

    code = "TRANSACTION_ERROR"


class TransactionConflictError(TransactionError):
    """A write-write conflict detected at COMMIT: another transaction
    committed to one of this transaction's written tables after its
    snapshot was pinned.  The losing transaction is rolled back; retry
    it against fresh state."""

    code = "TRANSACTION_CONFLICT"


class ExecutionError(ReproError):
    """Generic runtime failure inside a physical operator."""

    code = "EXECUTION_ERROR"


class ResourceLimitError(ExecutionError):
    """A materialization guard tripped (cross products, nested-loop
    joins and graph-join pair grids all fail fast instead of exhausting
    memory; the MonetDB prototype shares the failure mode)."""

    code = "RESOURCE_LIMIT"


class GraphRuntimeError(ExecutionError):
    """Raised by the graph runtime library.

    The paper requires this for non-positive weights: the CHEAPEST SUM
    weight expression "must always be strictly greater than 0, otherwise a
    runtime exception is raised" (Section 2).
    """

    code = "GRAPH_RUNTIME_ERROR"


class NotSupportedError(ReproError):
    """A recognized SQL feature that this engine deliberately omits."""

    code = "NOT_SUPPORTED"


class DatabaseClosedError(ReproError):
    """A statement reached a :class:`~repro.api.Database` after
    :meth:`~repro.api.Database.close` — the session outlived the engine
    (the server's graceful-shutdown path closes the database while
    client sessions may still exist)."""

    code = "DATABASE_CLOSED"


class ServerError(ReproError):
    """Base class for failures of the network service layer
    (:mod:`repro.server`) as opposed to the engine underneath."""

    code = "SERVER_ERROR"


class ProtocolError(ServerError):
    """A malformed wire frame: bad length prefix, oversized frame,
    invalid JSON, or an unknown request operation."""

    code = "PROTOCOL_ERROR"


class BackpressureError(ServerError):
    """Admission control rejected the statement: the server's bounded
    request queue is past its high-water mark.  The request was *not*
    executed; retry after a backoff."""

    code = "BACKPRESSURE"


class StatementTimeoutError(ServerError):
    """The per-statement server timeout elapsed before the statement
    finished.  The statement keeps running to completion on its worker
    (pure-Python kernels cannot be interrupted mid-numpy-call) but its
    result is discarded and never sent."""

    code = "STATEMENT_TIMEOUT"


class ServerShutdownError(ServerError):
    """The server is draining for shutdown and accepts no new
    statements; in-flight statements still complete."""

    code = "SERVER_SHUTDOWN"


class WalError(ReproError):
    """The write-ahead log is unusable: the log directory holds
    unreplayed records but the database was constructed without
    recovery, the log is missing records the image's checkpoint
    expects, or a segment's structure is corrupt beyond the
    truncate-the-torn-tail repair."""

    code = "WAL_ERROR"


class FaultInjectedError(ReproError):
    """Raised by an ``error``-action crashpoint
    (:mod:`repro.faults`) — the fault-injection analogue of an I/O
    error, used by tests to exercise failure paths in-process."""

    code = "FAULT_INJECTED"


def _walk_subclasses(cls) -> "list[type[ReproError]]":
    out = [cls]
    for sub in cls.__subclasses__():
        out.extend(_walk_subclasses(sub))
    return out


#: code -> exception class, for wire-protocol round-trips.  Built once at
#: import; every class above is reachable from :class:`ReproError`.
ERROR_CODES: "dict[str, type[ReproError]]" = {
    cls.code: cls for cls in _walk_subclasses(ReproError)
}


def error_from_code(code: str, message: str) -> ReproError:
    """Rebuild the typed exception a server serialized as ``{code,
    message}``.  Unknown codes (a newer server) degrade to the base
    :class:`ReproError`; classes with positional constructor extras
    (:class:`LexError`) are rebuilt through ``__new__`` so the message
    survives verbatim."""
    cls = ERROR_CODES.get(code, ReproError)
    try:
        return cls(message)
    except TypeError:
        exc = cls.__new__(cls)
        Exception.__init__(exc, message)
        return exc
