"""Nested tables — the paper's path type (Section 3.3)."""

from .value import NestedTableValue

__all__ = ["NestedTableValue"]
