"""The nested-table runtime value.

Section 3.3: "At the physical layer, a nested table is represented as a
list of references to the actual rows of the table expression that
generated it.  This is a handy solution because in the MonetDB execution
model all intermediate results are fully materialized by its operators.
Therefore, the rows composing a nested table can always be referred in a
later stage."

Our executor has the same property — every operator materializes — so a
:class:`NestedTableValue` holds a shared reference to the materialized
edge-table *batch* plus an int64 array of row positions (the shortest
path, in order).  UNNEST "merely materializes the contained rows
according to these references".
"""

from __future__ import annotations

from typing import Any

import numpy as np


class NestedTableValue:
    """One path: ordered row references into a materialized edge batch.

    The same ``source`` batch object is shared by every path produced by
    one graph operator invocation, so memory stays proportional to the
    path lengths, not to path count × edge table width.
    """

    __slots__ = ("source", "row_ids")

    def __init__(self, source: "Any", row_ids: np.ndarray):
        self.source = source  # exec.batch.Batch (kept generic to avoid a cycle)
        self.row_ids = np.asarray(row_ids, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.row_ids)

    @property
    def is_empty(self) -> bool:
        return len(self.row_ids) == 0

    def column_names(self) -> list[str]:
        return [c.name for c in self.source.schema]

    def to_rows(self) -> list[tuple]:
        """Materialize the referenced edge rows, in path order."""
        columns = [col.take(self.row_ids) for col in self.source.columns]
        return [
            tuple(col.value(i) for col in columns) for i in range(len(self.row_ids))
        ]

    def to_dicts(self) -> list[dict]:
        names = self.column_names()
        return [dict(zip(names, row)) for row in self.to_rows()]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NestedTableValue):
            return NotImplemented
        return self.source is other.source and np.array_equal(
            self.row_ids, other.row_ids
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NestedTable({len(self)} rows: {self.row_ids.tolist()})"
