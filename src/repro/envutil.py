"""Environment-knob parsing shared by every layer.

A dependency-free leaf module: :mod:`repro.storage`, :mod:`repro.exec`
and :mod:`repro.graph` all read tuning knobs from the environment, and
all of them want the same policy — a malformed value falls back to the
default silently, because a typo'd env var must not crash imports or
every statement that consults the knob.
"""

from __future__ import annotations

import os


def env_int(name: str, default: "int | None") -> "int | None":
    """``int(os.environ[name])``, or ``default`` when unset/malformed."""
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default
