"""Logical data types of the column store.

The engine supports a compact but complete set of primitive SQL types plus
the special nested-table type introduced by the paper for shortest paths
(Section 3.3).  Each logical type maps to a numpy dtype used by the
physical column representation; strings and nested tables are stored in
``object`` arrays.

Type coercion follows the usual SQL numeric ladder::

    BOOLEAN < INTEGER < BIGINT < DOUBLE

DATE values are stored as days since the Unix epoch (an integer), which
keeps comparisons vectorizable.
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any

import numpy as np

from ..errors import TypeError_


class DataType(enum.Enum):
    """Logical SQL type of a column or expression."""

    BOOLEAN = "boolean"
    INTEGER = "integer"
    BIGINT = "bigint"
    DOUBLE = "double"
    VARCHAR = "varchar"
    DATE = "date"
    #: The paper's path type: a bag of edge-table rows (Section 3.3).
    NESTED_TABLE = "nested table"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_numeric(self) -> bool:
        return self in _NUMERIC

    @property
    def is_integral(self) -> bool:
        return self in (DataType.INTEGER, DataType.BIGINT)

    @property
    def numpy_dtype(self) -> np.dtype:
        return _NUMPY_DTYPES[self]


_NUMERIC = frozenset(
    {DataType.BOOLEAN, DataType.INTEGER, DataType.BIGINT, DataType.DOUBLE}
)

_NUMPY_DTYPES = {
    DataType.BOOLEAN: np.dtype(np.bool_),
    DataType.INTEGER: np.dtype(np.int32),
    DataType.BIGINT: np.dtype(np.int64),
    DataType.DOUBLE: np.dtype(np.float64),
    DataType.VARCHAR: np.dtype(object),
    DataType.DATE: np.dtype(np.int64),
    DataType.NESTED_TABLE: np.dtype(object),
}

#: Position in the numeric promotion ladder.
_NUMERIC_RANK = {
    DataType.BOOLEAN: 0,
    DataType.INTEGER: 1,
    DataType.BIGINT: 2,
    DataType.DOUBLE: 3,
}

_TYPE_NAMES = {
    "bool": DataType.BOOLEAN,
    "boolean": DataType.BOOLEAN,
    "int": DataType.INTEGER,
    "integer": DataType.INTEGER,
    "smallint": DataType.INTEGER,
    "bigint": DataType.BIGINT,
    "double": DataType.DOUBLE,
    "float": DataType.DOUBLE,
    "real": DataType.DOUBLE,
    "decimal": DataType.DOUBLE,
    "numeric": DataType.DOUBLE,
    "varchar": DataType.VARCHAR,
    "char": DataType.VARCHAR,
    "text": DataType.VARCHAR,
    "string": DataType.VARCHAR,
    "date": DataType.DATE,
}


def parse_type_name(name: str) -> DataType:
    """Resolve a SQL type name (as written in DDL or CAST) to a DataType."""
    try:
        return _TYPE_NAMES[name.strip().lower()]
    except KeyError:
        raise TypeError_(f"unknown type name: {name!r}") from None


def promote(left: DataType, right: DataType) -> DataType:
    """Return the common numeric supertype of two types.

    Non-numeric operands must already be equal; otherwise the combination
    is a type error.
    """
    if left == right:
        return left
    if left.is_numeric and right.is_numeric:
        rank = max(_NUMERIC_RANK[left], _NUMERIC_RANK[right])
        for type_, type_rank in _NUMERIC_RANK.items():
            if type_rank == rank:
                return type_
    raise TypeError_(f"incompatible types: {left} and {right}")


def comparable(left: DataType, right: DataType) -> bool:
    """True when values of the two types may be compared with =, <, ..."""
    if left == right:
        return left != DataType.NESTED_TABLE
    return left.is_numeric and right.is_numeric


def date_to_days(value: _dt.date) -> int:
    """Encode a date as days since the Unix epoch."""
    return (value - _dt.date(1970, 1, 1)).days


def days_to_date(days: int) -> _dt.date:
    """Decode a days-since-epoch integer back into a date."""
    return _dt.date(1970, 1, 1) + _dt.timedelta(days=int(days))


def parse_date_literal(text: str) -> int:
    """Parse ``'YYYY-MM-DD'`` into the internal day count."""
    try:
        return date_to_days(_dt.date.fromisoformat(text))
    except ValueError as exc:
        raise TypeError_(f"invalid date literal {text!r}: {exc}") from None


def infer_literal_type(value: Any) -> DataType:
    """Infer the logical type of a Python literal."""
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, (int, np.integer)):
        if -(2**31) <= int(value) < 2**31:
            return DataType.INTEGER
        return DataType.BIGINT
    if isinstance(value, (float, np.floating)):
        return DataType.DOUBLE
    if isinstance(value, str):
        return DataType.VARCHAR
    if isinstance(value, _dt.date):
        return DataType.DATE
    raise TypeError_(f"cannot infer SQL type for {value!r}")


def coerce_python_value(value: Any, type_: DataType) -> Any:
    """Convert a Python value to the internal representation of ``type_``.

    ``None`` always passes through (SQL NULL).  Dates are accepted either
    as :class:`datetime.date`, ISO strings, or pre-encoded integers.
    """
    if value is None:
        return None
    if type_ == DataType.BOOLEAN:
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        raise TypeError_(f"expected boolean, got {value!r}")
    if type_ == DataType.INTEGER or type_ == DataType.BIGINT:
        if isinstance(value, (bool, np.bool_)):
            return int(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, (float, np.floating)) and float(value).is_integer():
            return int(value)
        raise TypeError_(f"expected {type_}, got {value!r}")
    if type_ == DataType.DOUBLE:
        if isinstance(value, (bool, np.bool_)):
            return float(value)
        if isinstance(value, (int, float, np.integer, np.floating)):
            return float(value)
        raise TypeError_(f"expected double, got {value!r}")
    if type_ == DataType.VARCHAR:
        if isinstance(value, str):
            return value
        raise TypeError_(f"expected varchar, got {value!r}")
    if type_ == DataType.DATE:
        if isinstance(value, _dt.datetime):
            return date_to_days(value.date())
        if isinstance(value, _dt.date):
            return date_to_days(value)
        if isinstance(value, str):
            return parse_date_literal(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        raise TypeError_(f"expected date, got {value!r}")
    raise TypeError_(f"cannot store Python value into {type_}")
