"""Write-ahead log: logical commit records, group commit, recovery.

Layout — a sibling directory next to the checkpoint image (by default
``<dbdir>.wal/``; the image directory itself is atomically swapped by
``save()``, so the log must live outside it)::

    <dbdir>.wal/
        seg-00000001.wal      # 16-byte segment header, then records
        seg-00000002.wal      # rotated at each checkpoint

Segment header: ``b"RWAL"`` magic, ``u32`` format version, ``u64``
segment sequence number.  Each record is length-prefixed and
CRC32-checksummed::

    [u32 payload_len][u32 crc32(payload)][payload]
    payload = [u32 header_len][header JSON]
              [u32 blob_len][.npy bytes] * header["nb"]

The JSON header carries the record's monotonic LSN, its kind, and the
kind-specific fields; bulk column payloads ride as raw ``np.save``
blobs after it.  Records are *logical*: recovery replays them through
the same write paths the live engine uses (``insert_rows``,
``insert_columns``, ``replace_columns`` with the original
:class:`~repro.storage.table.WriteInfo`), so statistics, zone maps and
graph-index overlays come back exactly as a live run would have left
them.

Sync policies (``Database(durability=...)``):

* ``"off"`` — no WAL object exists at all; every write path is
  byte-for-byte the pre-WAL code.
* ``"commit"`` — every commit appends, flushes and runs its own
  ``fsync`` before acknowledging.
* ``"batch"`` — group commit: appends flush to the OS immediately, but
  the ``fsync`` is performed by one *leader* on behalf of every
  committer that arrived while the previous fsync was in flight
  (leader/follower on a condition variable over the ``_synced_lsn``
  watermark).  Same durability guarantee per acknowledged commit, a
  fraction of the fsyncs under concurrency.

Torn tails: :func:`scan_wal` accepts every record up to the first
structural problem — a short header, a zero/oversized length, a CRC
mismatch, a payload that runs past EOF, or an LSN gap — physically
truncates the file there, and drops any later segments (they can only
hold post-gap records).  A record whose LSN is ≤ the last one seen is
a *duplicate* (a retried append that crashed between write and ack)
and is skipped, not fatal.
"""

from __future__ import annotations

import datetime
import io
import json
import os
import re
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..errors import WalError
from .column import Column
from .schema import Schema
from .table import Table, WriteInfo
from .types import DataType

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultInjector

_MAGIC = b"RWAL"
_WAL_VERSION = 1
_SEGMENT_HEADER = struct.Struct("<4sIQ")
_RECORD_HEADER = struct.Struct("<II")  # payload_len, crc32
_U32 = struct.Struct("<I")
#: Structural sanity bound: a single logical record larger than this is
#: treated as corruption, not an allocation request.
_MAX_RECORD = 1 << 31
_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.wal$")


def default_wal_directory(database_dir: str) -> str:
    """The log directory paired with a checkpoint image directory."""
    return os.path.abspath(database_dir) + ".wal"


def _segment_name(seq: int) -> str:
    return f"seg-{seq:08d}.wal"


def _fsync_dir(path: str) -> None:
    """Make a directory entry durable (rename/create visibility)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# value + column serialization
# ---------------------------------------------------------------------------
# Row values are encoded as JSON with the same date tagging the wire
# protocol uses ({"$": "date", "v": "..."}); duplicated here rather
# than imported because repro.server pulls in repro.api and the WAL
# sits below both.
def _encode_value(value):
    if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
        return {"$": "date", "v": value.isoformat()}
    if isinstance(value, np.generic):
        return value.item()
    return value


def _decode_value(value):
    if isinstance(value, dict) and value.get("$") == "date":
        return datetime.date.fromisoformat(value["v"])
    return value


def _strify(values) -> np.ndarray:
    """Object payload → fixed-width unicode; NULL slots store ""
    (NULLs are carried by the mask blob)."""
    return np.array(["" if v is None else v for v in values], dtype=np.str_)


def _column_parts(column: Column) -> "tuple[dict, list[np.ndarray]]":
    """One column → (descriptor, payload blobs)."""
    is_str = column.type.numpy_dtype == np.dtype(object)
    mask = column.mask
    desc = {"t": column.type.value, "s": is_str, "m": mask is not None}
    data = _strify(column.data) if is_str else np.asarray(column.data)
    blobs = [data]
    if mask is not None:
        blobs.append(np.asarray(mask))
    return desc, blobs


def _column_from_parts(desc: dict, blobs: "list[np.ndarray]", at: int) -> "tuple[Column, int]":
    type_ = DataType(desc["t"])
    data = blobs[at]
    at += 1
    mask = None
    if desc["m"]:
        mask = np.ascontiguousarray(blobs[at]).astype(bool, copy=False)
        at += 1
    if desc["s"]:
        out = np.empty(len(data), dtype=object)
        for i, value in enumerate(data):
            out[i] = None if mask is not None and mask[i] else str(value)
        data = out
    else:
        data = np.ascontiguousarray(data).astype(type_.numpy_dtype, copy=False)
    return Column(type_, data, mask if mask is not None and mask.any() else None), at


def _pack_record(header: dict, blobs: "list[np.ndarray]") -> bytes:
    header = dict(header, nb=len(blobs))
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [_U32.pack(len(head)), head]
    for array in blobs:
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
        raw = buffer.getvalue()
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    payload = b"".join(parts)
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _unpack_payload(payload: bytes) -> "tuple[dict, list[np.ndarray]]":
    (head_len,) = _U32.unpack_from(payload, 0)
    at = _U32.size
    header = json.loads(payload[at : at + head_len].decode("utf-8"))
    at += head_len
    blobs = []
    for _ in range(int(header.get("nb", 0))):
        (blob_len,) = _U32.unpack_from(payload, at)
        at += _U32.size
        blobs.append(
            np.load(io.BytesIO(payload[at : at + blob_len]), allow_pickle=False)
        )
        at += blob_len
    return header, blobs


# ---------------------------------------------------------------------------
# scanning / recovery
# ---------------------------------------------------------------------------
@dataclass
class WalRecord:
    lsn: int
    kind: str
    header: dict
    blobs: "list[np.ndarray]" = field(default_factory=list)


@dataclass
class WalScan:
    """Everything recovery needs to know about an on-disk log."""

    records: "list[WalRecord]" = field(default_factory=list)
    last_lsn: int = 0
    next_seq: int = 1
    segments: int = 0
    duplicates: int = 0
    truncated_bytes: int = 0
    truncated_segment: "Optional[str]" = None
    truncate_reason: "Optional[str]" = None
    dropped_segments: int = 0


def wal_exists(directory: str) -> bool:
    """True when ``directory`` holds any WAL segment files."""
    try:
        entries = os.listdir(directory)
    except OSError:
        return False
    return any(_SEGMENT_RE.match(entry) for entry in entries)


def scan_wal(directory: str, repair: bool = True) -> WalScan:
    """Read every decodable record in commit (LSN) order.

    With ``repair`` (the recovery default) the first structural
    problem physically truncates its segment at the record boundary
    and deletes any later segments; with ``repair=False`` the scan is
    read-only and merely stops there.
    """
    scan = WalScan()
    try:
        entries = sorted(os.listdir(directory))
    except OSError:
        return scan
    segments = []
    for entry in entries:
        match = _SEGMENT_RE.match(entry)
        if match:
            segments.append((int(match.group(1)), os.path.join(directory, entry)))
    segments.sort()
    stopped_at = None  # index into segments of the segment that stopped the scan
    for index, (seq, path) in enumerate(segments):
        scan.segments += 1
        scan.next_seq = max(scan.next_seq, seq + 1)
        with open(path, "rb") as handle:
            raw = handle.read()
        if (
            len(raw) < _SEGMENT_HEADER.size
            or _SEGMENT_HEADER.unpack_from(raw, 0)[:2] != (_MAGIC, _WAL_VERSION)
        ):
            _record_stop(scan, path, 0, "bad segment header", repair)
            stopped_at = index
            break
        offset = _SEGMENT_HEADER.size
        stop = None
        while offset < len(raw):
            remaining = len(raw) - offset
            if remaining < _RECORD_HEADER.size:
                stop = "torn record header"
                break
            length, crc = _RECORD_HEADER.unpack_from(raw, offset)
            if length == 0 or length > _MAX_RECORD:
                stop = "bad record length"
                break
            if remaining - _RECORD_HEADER.size < length:
                stop = "torn record payload"
                break
            payload = raw[offset + _RECORD_HEADER.size : offset + _RECORD_HEADER.size + length]
            if zlib.crc32(payload) != crc:
                stop = "checksum mismatch"
                break
            header, blobs = _unpack_payload(payload)
            lsn = int(header["lsn"])
            if lsn <= scan.last_lsn:
                # a re-appended record (crash between write and ack):
                # the first copy already counted — skip, don't fail
                scan.duplicates += 1
            elif scan.last_lsn and lsn != scan.last_lsn + 1:
                stop = f"lsn gap ({scan.last_lsn} -> {lsn})"
                break
            else:
                scan.records.append(
                    WalRecord(lsn, str(header["kind"]), header, blobs)
                )
                scan.last_lsn = lsn
            offset += _RECORD_HEADER.size + length
        if stop is not None:
            _record_stop(scan, path, offset, stop, repair)
            stopped_at = index
            break
    if stopped_at is not None:
        # anything after the truncation point can only hold records
        # from beyond the gap; recovery keeps the longest valid prefix
        for seq, path in segments[stopped_at + 1 :]:
            scan.dropped_segments += 1
            if repair:
                os.unlink(path)
    return scan


def _record_stop(scan: WalScan, path: str, offset: int, reason: str, repair: bool) -> None:
    scan.truncated_segment = os.path.basename(path)
    scan.truncate_reason = reason
    scan.truncated_bytes += os.path.getsize(path) - offset
    if repair:
        with open(path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())


def apply_record(db, record: WalRecord) -> None:
    """Replay one logical record through the live write paths, so every
    side channel (stats refresh, zone-map extension, graph overlays,
    plan-cache invalidation) fires exactly as it did at commit time."""
    header = record.header
    kind = record.kind
    if kind == "insert":
        rows = [
            tuple(_decode_value(value) for value in row) for row in header["rows"]
        ]
        db.catalog.get(header["table"]).insert_rows(rows)
    elif kind == "append":
        columns, at = [], 0
        for desc in header["cols"]:
            column, at = _column_from_parts(desc, record.blobs, at)
            columns.append(column)
        db.catalog.get(header["table"]).insert_columns(columns)
    elif kind == "delete":
        table = db.catalog.get(header["table"])
        version = table.current()
        dropped = np.ascontiguousarray(record.blobs[0]).astype(np.int64, copy=False)
        keep = np.ones(version.num_rows, dtype=bool)
        keep[dropped] = False
        table.replace_columns(
            [column.filter(keep) for column in version.columns],
            WriteInfo("delete", dropped_rows=dropped),
        )
    elif kind == "update":
        table = db.catalog.get(header["table"])
        version = table.current()
        columns = list(version.columns)
        at = 0
        for name, desc in zip(header["touched"], header["cols"]):
            column, at = _column_from_parts(desc, record.blobs, at)
            columns[version.schema.index_of(name)] = column
        table.replace_columns(
            columns, WriteInfo("update", columns=tuple(header["touched"]))
        )
    elif kind == "txn":
        at = 0
        for entry in header["tables"]:
            columns = []
            for desc in entry["cols"]:
                column, at = _column_from_parts(desc, record.blobs, at)
                columns.append(column)
            db.catalog.get(entry["table"]).replace_columns(columns)
    elif kind == "create_table":
        db.catalog.create_table(
            header["table"],
            Schema([(name, DataType(type_)) for name, type_ in header["columns"]]),
        )
    elif kind == "drop_table":
        db.catalog.drop_table(header["table"])
        db.plan_cache.invalidate_table(header["table"])
        db.graph_indices.drop_for_table(header["table"])
        db.stats.drop(header["table"])
    elif kind == "ctas":
        table = Table(
            header["table"],
            Schema([(name, DataType(type_)) for name, type_ in header["columns"]]),
        )
        columns, at = [], 0
        for desc in header["cols"]:
            column, at = _column_from_parts(desc, record.blobs, at)
            columns.append(column)
        if columns and len(columns[0]):
            table.insert_columns(columns)
        db.catalog.publish_table(table)
    elif kind == "create_graph_index":
        db.graph_indices.create(
            header["name"], header["table"], header["src"], header["dst"]
        )
    elif kind == "drop_graph_index":
        db.graph_indices.drop(header["name"])
    else:  # pragma: no cover - a newer writer's record kind
        raise WalError(f"unknown WAL record kind {kind!r} at lsn {record.lsn}")


# ---------------------------------------------------------------------------
# the log itself
# ---------------------------------------------------------------------------
class WriteAheadLog:
    """Append-only logical log with group commit and checkpoints.

    Concurrency contract: :attr:`mutex` serializes *append + version
    install* — the database holds it across both, so the LSN order in
    the log is exactly the order table versions became visible.
    :meth:`sync` runs outside it (appends flush to the OS buffer cache
    inside the mutex; only the fsync — the slow part — happens after
    release), which is what lets group commit coalesce committers
    without serializing them behind the disk.
    """

    def __init__(
        self,
        directory: str,
        *,
        durability: str = "commit",
        faults: "Optional[FaultInjector]" = None,
        start_lsn: int = 0,
        start_seq: int = 1,
    ):
        if durability not in ("commit", "batch"):
            raise WalError(
                f"invalid WAL durability {durability!r} "
                "(expected 'commit' or 'batch')"
            )
        self.directory = os.path.abspath(directory)
        self.durability = durability
        self.faults = faults
        #: The checkpoint image directory this log is paired with —
        #: only a ``save()`` to this exact target may rotate and prune
        #: (a backup save elsewhere must never steal the log's tail).
        #: ``None`` until recovery/first save establishes it.
        self.paired_target: "Optional[str]" = None
        self.mutex = threading.RLock()
        self._sync_mutex = threading.Lock()
        self._batch_cond = threading.Condition()
        self._batch_leader = False
        self._last_lsn = int(start_lsn)
        self._synced_lsn = int(start_lsn)
        self._handle = None
        self.seq = 0
        # counters (reads are approximate under concurrency; fine for \storage)
        self.appends = 0
        self.bytes_written = 0
        self.sync_requests = 0
        self.syncs = 0
        self.checkpoints = 0
        os.makedirs(self.directory, exist_ok=True)
        self._open_segment(int(start_seq))

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, directory: str, **kwargs) -> "WriteAheadLog":
        """A log for a *fresh* database: refuses a directory that
        already holds segments (their records would be silently
        shadowed — recover them with ``Database.open`` instead)."""
        if wal_exists(directory):
            raise WalError(
                f"write-ahead log directory {directory!r} already holds "
                "segments; use Database.open() to recover it"
            )
        return cls(directory, **kwargs)

    def _open_segment(self, seq: int) -> None:
        path = os.path.join(self.directory, _segment_name(seq))
        handle = open(path, "xb")
        handle.write(_SEGMENT_HEADER.pack(_MAGIC, _WAL_VERSION, seq))
        handle.flush()
        os.fsync(handle.fileno())
        _fsync_dir(self.directory)
        self._handle = handle
        self.seq = seq

    # -- appending ------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        return self._last_lsn

    @property
    def synced_lsn(self) -> int:
        return self._synced_lsn

    def _append(self, kind: str, header: dict, blobs: "list[np.ndarray]") -> int:
        """Write one record; caller holds :attr:`mutex`.  The bytes are
        flushed to the OS before returning (so a later group-commit
        fsync from any thread covers them); they are *durable* only
        after :meth:`sync`."""
        if self._handle is None:
            raise WalError("write-ahead log is closed")
        lsn = self._last_lsn + 1
        record = _pack_record(dict(header, lsn=lsn, kind=kind), blobs)
        if self.faults is not None:
            self.faults.fire("wal.append.before")
            self.faults.fire("wal.append.write", data=record, handle=self._handle)
        self._handle.write(record)
        self._handle.flush()
        self._last_lsn = lsn
        self.appends += 1
        self.bytes_written += len(record)
        if self.faults is not None:
            self.faults.fire("wal.append.after")
        return lsn

    def sync(self, lsn: "Optional[int]") -> None:
        """Make every record up to ``lsn`` durable before the commit is
        acknowledged.  ``commit``: one fsync per call.  ``batch``: the
        leader fsyncs once for every waiter that arrived meanwhile."""
        if lsn is None:
            return
        self.sync_requests += 1
        if self.faults is not None:
            self.faults.fire("wal.sync.before")
        if self.durability == "commit":
            with self._sync_mutex:
                handle = self._handle
                if handle is not None:
                    end = self._last_lsn
                    os.fsync(handle.fileno())
                    self.syncs += 1
                    self._advance_synced(end)
        else:
            self._sync_batch(lsn)
        if self.faults is not None:
            self.faults.fire("wal.sync.after")

    def _sync_batch(self, lsn: int) -> None:
        with self._batch_cond:
            while True:
                if self._synced_lsn >= lsn:
                    return
                if not self._batch_leader:
                    self._batch_leader = True
                    break
                self._batch_cond.wait()
        # leader: fsync once on behalf of every committer whose append
        # (and OS-buffer flush) happened before this point
        end = self._synced_lsn
        try:
            with self._sync_mutex:
                handle = self._handle
                if handle is not None:
                    end = self._last_lsn
                    os.fsync(handle.fileno())
                    self.syncs += 1
        finally:
            with self._batch_cond:
                self._batch_leader = False
                if self._synced_lsn < end:
                    self._synced_lsn = end
                self._batch_cond.notify_all()

    def _advance_synced(self, lsn: int) -> None:
        with self._batch_cond:
            if self._synced_lsn < lsn:
                self._synced_lsn = lsn
            self._batch_cond.notify_all()

    # -- record builders (caller holds mutex) ---------------------------
    def log_insert(self, table: str, rows) -> int:
        encoded = [[_encode_value(value) for value in row] for row in rows]
        return self._append("insert", {"table": table, "rows": encoded}, [])

    def log_append(self, table: str, columns) -> int:
        descs, blobs = [], []
        for column in columns:
            desc, parts = _column_parts(column)
            descs.append(desc)
            blobs.extend(parts)
        return self._append("append", {"table": table, "cols": descs}, blobs)

    def log_delete(self, table: str, dropped: np.ndarray) -> int:
        return self._append(
            "delete",
            {"table": table, "count": int(len(dropped))},
            [np.ascontiguousarray(dropped, dtype=np.int64)],
        )

    def log_update(self, table: str, touched, columns) -> int:
        descs, blobs = [], []
        for column in columns:
            desc, parts = _column_parts(column)
            descs.append(desc)
            blobs.extend(parts)
        return self._append(
            "update",
            {"table": table, "touched": list(touched), "cols": descs},
            blobs,
        )

    def log_txn(self, items) -> int:
        """``items``: ordered ``(table_name, columns)`` pairs — the full
        column set of every table the transaction wrote, in the install
        order of ``commit_transaction``."""
        entries, blobs = [], []
        for table, columns in items:
            descs = []
            for column in columns:
                desc, parts = _column_parts(column)
                descs.append(desc)
                blobs.extend(parts)
            entries.append({"table": table, "cols": descs})
        return self._append("txn", {"tables": entries}, blobs)

    def log_create_table(self, table: str, schema: Schema) -> int:
        columns = [[c.name, c.type.value] for c in schema]
        return self._append("create_table", {"table": table, "columns": columns}, [])

    def log_ctas(self, table: str, schema: Schema, columns) -> int:
        descs, blobs = [], []
        for column in columns:
            desc, parts = _column_parts(column)
            descs.append(desc)
            blobs.extend(parts)
        return self._append(
            "ctas",
            {
                "table": table,
                "columns": [[c.name, c.type.value] for c in schema],
                "cols": descs,
            },
            blobs,
        )

    def log_simple(self, kind: str, **fields) -> int:
        return self._append(kind, fields, [])

    # -- checkpoints ----------------------------------------------------
    def begin_checkpoint(self) -> "tuple[int, int]":
        """Roll to a fresh segment; caller holds :attr:`mutex` and has
        just pinned the snapshot the image will serialize.  Returns
        ``(checkpoint_lsn, old_seq)``; pass ``old_seq`` to
        :meth:`finish_checkpoint` once the image swap succeeded."""
        with self._sync_mutex:
            if self._handle is None:
                raise WalError("write-ahead log is closed")
            old_seq = self.seq
            checkpoint_lsn = self._last_lsn
            # records up to here become durable with the checkpoint
            # regardless of sync policy — the image depends on them
            os.fsync(self._handle.fileno())
            self.syncs += 1
            self._handle.close()
            self._open_segment(old_seq + 1)
        self._advance_synced(checkpoint_lsn)
        self.checkpoints += 1
        return checkpoint_lsn, old_seq

    def finish_checkpoint(self, upto_seq: int) -> int:
        """Prune segments fully covered by a successfully-swapped
        image.  Returns the number of files removed."""
        removed = 0
        with self.mutex:
            try:
                entries = sorted(os.listdir(self.directory))
            except OSError:
                return 0
            for entry in entries:
                match = _SEGMENT_RE.match(entry)
                if match and int(match.group(1)) <= upto_seq:
                    os.unlink(os.path.join(self.directory, entry))
                    removed += 1
            if removed:
                _fsync_dir(self.directory)
        return removed

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Final flush+fsync (clean shutdown loses nothing even under
        ``batch``), then release the handle."""
        with self.mutex:
            with self._sync_mutex:
                handle = self._handle
                if handle is None:
                    return
                end = self._last_lsn
                handle.flush()
                os.fsync(handle.fileno())
                handle.close()
                self._handle = None
            self._advance_synced(end)

    def stats(self) -> dict:
        return {
            "durability": self.durability,
            "last_lsn": self._last_lsn,
            "synced_lsn": self._synced_lsn,
            "segment_seq": self.seq,
            "appends": self.appends,
            "bytes_written": self.bytes_written,
            "sync_requests": self.sync_requests,
            "syncs": self.syncs,
            "checkpoints": self.checkpoints,
        }


__all__ = [
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "apply_record",
    "default_wal_directory",
    "scan_wal",
    "wal_exists",
]
