"""Snapshots: the read view of one statement or transaction.

A :class:`Snapshot` maps table names to pinned, immutable
:class:`~repro.storage.table.TableVersion` objects plus each table's
statistics marker at pin time.  Every scan, ANALYZE and ``save()``
resolves through the snapshot rather than the live table, so readers
take **no locks at all**: pinning is one atomic reference read per
table, and a pinned version stays valid forever (columns are immutable
and versions are never mutated in place).

Tables not pinned up front are pinned lazily on first access — each
individual pin is still race-free (a single reference read), it just
reflects the table's state at first touch rather than at snapshot
creation.  The statement layer pins a statement's whole referenced-table
set eagerly (under the database's snapshot mutex, which COMMIT also
holds while installing a multi-table write set) so one statement can
never observe half of a concurrent transaction's commit.

``overlay`` carries a transaction's buffered (uncommitted) table
versions: resolution order is overlay → pinned → live catalog, which
gives a transaction read-your-own-writes semantics while every other
session keeps reading committed state.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from .table import Catalog, TableVersion


class Snapshot:
    """An immutable-by-convention view ``{table → TableVersion}``.

    Not thread-safe by itself (one snapshot belongs to one statement or
    one session transaction); all shared state it touches is.
    """

    __slots__ = ("_catalog", "_stats_marker", "_versions", "_markers", "overlay")

    def __init__(
        self,
        catalog: Catalog,
        stats_marker: Optional[Callable[[str], int]] = None,
        overlay: Optional[dict[str, TableVersion]] = None,
    ):
        self._catalog = catalog
        self._stats_marker = stats_marker or (lambda name: 0)
        self._versions: dict[str, TableVersion] = {}
        self._markers: dict[str, int] = {}
        #: A transaction's buffered writes (shared dict, mutated by the
        #: transaction as it writes); empty for statement snapshots.
        self.overlay: dict[str, TableVersion] = (
            overlay if overlay is not None else {}
        )

    # ------------------------------------------------------------------
    def pin(self, names: Iterable[str]) -> None:
        """Eagerly pin the named tables (missing ones are skipped — the
        executor raises its regular CatalogError if they are scanned)."""
        for name in names:
            key = name.lower()
            if key not in self._versions and self._catalog.has(key):
                self._pin(key)

    def _pin(self, key: str) -> TableVersion:
        version = self._catalog.get(key).current()
        self._versions[key] = version
        self._markers[key] = self._stats_marker(key)
        return version

    # ------------------------------------------------------------------
    def table_version(self, name: str) -> TableVersion:
        """The version this snapshot reads for ``name`` (overlay first,
        then pinned, then lazily pinned from the live catalog)."""
        key = name.lower()
        version = self.overlay.get(key)
        if version is not None:
            return version
        version = self._versions.get(key)
        if version is not None:
            return version
        return self._pin(key)

    def committed_version(self, name: str) -> TableVersion:
        """Like :meth:`table_version` but skipping the write overlay:
        the pinned *committed* state.  Used where the result feeds
        shared global structures (ANALYZE statistics) that must never
        absorb uncommitted data."""
        key = name.lower()
        version = self._versions.get(key)
        if version is not None:
            return version
        return self._pin(key)

    def has(self, name: str) -> bool:
        key = name.lower()
        return (
            key in self.overlay or key in self._versions or self._catalog.has(key)
        )

    def version_id(self, name: str) -> int:
        return self.table_version(name).version_id

    def fingerprint(self, name: str) -> tuple:
        return self.table_version(name).schema.fingerprint()

    def stats_marker(self, name: str) -> int:
        """The table's ANALYZE marker at pin time (plan-cache epoch)."""
        key = name.lower()
        if key not in self._markers:
            self.table_version(key)
            # overlay-only tables never went through _pin: read live
            if key not in self._markers:
                self._markers[key] = self._stats_marker(key)
        return self._markers[key]

    def table_names(self) -> list[str]:
        """All pinned table names (overlay included)."""
        return sorted(set(self._versions) | set(self.overlay))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pinned = ", ".join(
            f"{k}@{v.version_id}" for k, v in sorted(self._versions.items())
        )
        return f"<Snapshot {pinned or '(empty)'}>"


__all__ = ["Snapshot"]
