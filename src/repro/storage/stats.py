"""Per-table / per-column statistics for the cost-based optimizer.

``ANALYZE [table]`` (or :meth:`StatsManager.analyze`) scans the live
columns and records, per column: null count, distinct-value count and —
for numeric/date columns — min and max.  The optimizer uses them for
selectivity estimation, join ordering and hash-join build-side choice;
without ANALYZE it falls back to live row counts plus heuristics.

Maintenance rides on the existing write-listener/version machinery:

* every committed mutation refreshes the recorded ``row_count`` (the
  listener fires after the column swap, so ``table.num_rows`` is the
  post-write count) and marks the column-level stats *stale* — they are
  still served (better than nothing) but flagged, and ``\\stats`` shows
  the staleness;
* every ANALYZE bumps the table's *marker* (per-table counter).
  Plan-cache entries record, per referenced table, the marker at plan
  time, so fresh statistics transparently re-optimize exactly the
  cached plans that read the analyzed table.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from .table import Catalog, Table, TableVersion
from .types import DataType


@dataclass
class ColumnStats:
    """Statistics of one column, computed by ANALYZE."""

    null_count: int
    distinct: int
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None

    @property
    def has_range(self) -> bool:
        return self.min_value is not None and self.max_value is not None


@dataclass
class TableStats:
    """Statistics of one table at ANALYZE time."""

    table: str
    row_count: int
    version: int  #: table version at ANALYZE time (staleness detection)
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    stale: bool = False  #: set when the table mutated since ANALYZE

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())


def _analyze_column(column, type_: DataType) -> ColumnStats:
    enc = column.encoding
    if enc is not None and enc.kind == "dict":
        # resting dictionary: distinct/min/max are free — the sorted
        # dictionary *is* the distinct set
        null_count = int(column.null_mask().sum())
        uniques = enc.uniques
        min_value = max_value = None
        if len(uniques) and (type_.is_numeric or type_ == DataType.DATE):
            min_value = np.asarray(uniques)[0].item()
            max_value = np.asarray(uniques)[-1].item()
        return ColumnStats(
            null_count=null_count,
            distinct=int(len(uniques)),
            min_value=min_value,
            max_value=max_value,
        )
    null_count = int(column.null_mask().sum())
    data = column.data
    valid = ~column.null_mask()
    values = data[valid]
    if len(values) == 0:
        return ColumnStats(null_count=null_count, distinct=0)
    if type_ == DataType.NESTED_TABLE:
        return ColumnStats(null_count=null_count, distinct=len(values))
    if data.dtype == np.dtype(object):
        uniques = set(values.tolist())
        distinct = len(uniques)
        min_value = max_value = None
    else:
        uniques = np.unique(values)
        distinct = int(len(uniques))
        min_value = max_value = None
        if type_.is_numeric or type_ == DataType.DATE:
            min_value = uniques[0].item()
            max_value = uniques[-1].item()
    return ColumnStats(
        null_count=null_count,
        distinct=distinct,
        min_value=min_value,
        max_value=max_value,
    )


class StatsManager:
    """Thread-safe registry of :class:`TableStats` over one catalog."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._mutex = threading.Lock()
        self._stats: dict[str, TableStats] = {}
        #: Per-table ANALYZE counters: plan-cache entries record the
        #: marker per referenced table, so fresh statistics re-optimize
        #: only the plans that actually read the analyzed table.
        self._markers: dict[str, int] = {}

    # ------------------------------------------------------------------
    def analyze(
        self, table_name: str, table_version: Optional[TableVersion] = None
    ) -> TableStats:
        """Compute and store fresh statistics for one table.

        ``table_version`` pins the state to analyze (the statement's
        snapshot version), so ANALYZE never blocks writers and never
        observes a half-applied write; without it the table's current
        committed version is used.
        """
        if table_version is None:
            table_version = self._catalog.get(table_name).current()
        stats = TableStats(
            table=table_version.name,
            row_count=table_version.num_rows,
            version=table_version.version_id,
        )
        for col_def, column in zip(table_version.schema, table_version.columns):
            stats.columns[col_def.name] = _analyze_column(column, col_def.type)
        with self._mutex:
            self._stats[stats.table] = stats
            self._markers[stats.table] = self._markers.get(stats.table, 0) + 1
        return stats

    def restore(self, stats: TableStats) -> None:
        """Install statistics recovered by ``load()`` (persisted by a
        previous ``save()``), bumping the table's marker so plans cached
        before the restore re-optimize against the recovered stats."""
        with self._mutex:
            self._stats[stats.table] = stats
            self._markers[stats.table] = self._markers.get(stats.table, 0) + 1

    # ------------------------------------------------------------------
    def get(self, table_name: str) -> Optional[TableStats]:
        """Recorded stats for a table (possibly stale), or None."""
        with self._mutex:
            return self._stats.get(table_name.lower())

    def marker(self, table_name: str) -> int:
        """ANALYZE counter for one table (0 = never analyzed).

        Lock-free on purpose: this sits on the plan-cache hit path
        (validated per referenced table per lookup, while the cache
        mutex is held).  A single dict read is atomic under the GIL,
        and the marker is a monotone counter — the worst a race can do
        is conservatively invalidate one plan."""
        return self._markers.get(table_name.lower(), 0)

    def drop(self, table_name: str) -> None:
        """DROP TABLE hook."""
        with self._mutex:
            self._stats.pop(table_name.lower(), None)
            self._markers.pop(table_name.lower(), None)

    def on_table_write(self, table: Table) -> None:
        """Write-listener hook: refresh row count, flag column stats."""
        with self._mutex:
            stats = self._stats.get(table.name)
            if stats is None:
                return
            stats.row_count = table.num_rows
            stats.stale = stats.version != table.version

    # ------------------------------------------------------------------
    def row_count(self, table_name: str) -> int:
        """The live row count (always current, with or without ANALYZE)."""
        return self._catalog.get(table_name).num_rows

    def describe(self) -> dict[str, TableStats]:
        """Snapshot of all recorded stats (the ``\\stats`` surface)."""
        with self._mutex:
            return dict(self._stats)


__all__ = ["ColumnStats", "TableStats", "StatsManager"]
