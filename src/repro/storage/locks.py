"""Reader/writer locking for concurrent statement execution.

One :class:`RWLock` guards each base table: any number of readers
(SELECT, the scan phase of DML, graph-index builds) may hold it
concurrently, while writers (INSERT/DELETE/UPDATE/TRUNCATE) get
exclusive access.  The lock is *write-preferring* — once a writer is
waiting, new readers queue behind it — so heavy read traffic cannot
starve DML.

The write side is reentrant per thread, and a thread holding the write
lock may also acquire the read side (it degrades to a no-op); this lets
``Table`` mutators lock themselves defensively even when the statement
layer already holds the statement-scoped write lock.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """A write-preferring readers-writer lock with a reentrant write side."""

    __slots__ = ("_cond", "_readers", "_writer", "_writer_depth", "_writers_waiting")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None  # owning thread id, if write-held
        self._writer_depth = 0
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                return  # we hold the write lock: reading is already safe
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            if self._writer == threading.get_ident():
                return  # matching no-op for the degraded acquire
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_write by a thread not holding the lock")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()


class LockSet:
    """Statement-scoped acquisition of many table locks without deadlock.

    Locks are always taken in sorted table-name order; a table appearing
    in both the read- and write-set is write-locked only.  Use as a
    context manager around one statement execution.
    """

    __slots__ = ("_plan",)

    def __init__(self, tables: dict[str, RWLock], writes: set[str]):
        # name -> (lock, is_write), ordered by name for a global order
        self._plan = [
            (tables[name], name in writes) for name in sorted(tables)
        ]

    def __enter__(self) -> "LockSet":
        acquired = []
        try:
            for lock, is_write in self._plan:
                if is_write:
                    lock.acquire_write()
                else:
                    lock.acquire_read()
                acquired.append((lock, is_write))
        except BaseException:
            for lock, is_write in reversed(acquired):
                if is_write:
                    lock.release_write()
                else:
                    lock.release_read()
            raise
        return self

    def __exit__(self, *exc) -> None:
        for lock, is_write in reversed(self._plan):
            if is_write:
                lock.release_write()
            else:
                lock.release_read()
