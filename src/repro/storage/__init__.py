"""Column-store storage substrate (the engine's MonetDB stand-in)."""

from .column import Column
from .encoding import (
    DictEncoding,
    Encoding,
    PackedEncoding,
    PlainEncoding,
    RLEEncoding,
    choose_encoding,
    encode_columns,
    factorize_counters,
)
from .locks import LockSet, RWLock
from .schema import ColumnDef, Schema
from .snapshot import Snapshot
from .stats import ColumnStats, StatsManager, TableStats
from .ingest import bulk_column, bulk_columns, read_csv_vectors, read_npz_vectors
from .table import (
    TXN_VERSION_BASE,
    Catalog,
    Table,
    TableVersion,
    WriteInfo,
    build_appended_columns,
    concat_for_append,
    next_txn_version_id,
)
from .zonemap import (
    ZONE_ROWS,
    ColumnZoneMap,
    StorageCounters,
    ZonePredicate,
    build_column_zone_map,
    extend_zone_map,
    select_zone_spans,
    zone_map_for,
)
from .types import (
    DataType,
    coerce_python_value,
    comparable,
    date_to_days,
    days_to_date,
    infer_literal_type,
    parse_date_literal,
    parse_type_name,
    promote,
)

__all__ = [
    "Column",
    "Encoding",
    "PlainEncoding",
    "DictEncoding",
    "RLEEncoding",
    "PackedEncoding",
    "choose_encoding",
    "encode_columns",
    "factorize_counters",
    "ZONE_ROWS",
    "ColumnZoneMap",
    "StorageCounters",
    "ZonePredicate",
    "build_column_zone_map",
    "extend_zone_map",
    "select_zone_spans",
    "zone_map_for",
    "bulk_column",
    "bulk_columns",
    "read_csv_vectors",
    "read_npz_vectors",
    "ColumnDef",
    "Schema",
    "Snapshot",
    "Catalog",
    "Table",
    "TableVersion",
    "TXN_VERSION_BASE",
    "WriteInfo",
    "build_appended_columns",
    "concat_for_append",
    "next_txn_version_id",
    "DataType",
    "coerce_python_value",
    "comparable",
    "date_to_days",
    "days_to_date",
    "infer_literal_type",
    "parse_date_literal",
    "parse_type_name",
    "promote",
    "LockSet",
    "RWLock",
    "ColumnStats",
    "StatsManager",
    "TableStats",
]
