"""Column-store storage substrate (the engine's MonetDB stand-in)."""

from .column import Column
from .locks import LockSet, RWLock
from .schema import ColumnDef, Schema
from .snapshot import Snapshot
from .stats import ColumnStats, StatsManager, TableStats
from .table import (
    TXN_VERSION_BASE,
    Catalog,
    Table,
    TableVersion,
    build_appended_columns,
    next_txn_version_id,
)
from .types import (
    DataType,
    coerce_python_value,
    comparable,
    date_to_days,
    days_to_date,
    infer_literal_type,
    parse_date_literal,
    parse_type_name,
    promote,
)

__all__ = [
    "Column",
    "ColumnDef",
    "Schema",
    "Snapshot",
    "Catalog",
    "Table",
    "TableVersion",
    "TXN_VERSION_BASE",
    "build_appended_columns",
    "next_txn_version_id",
    "DataType",
    "coerce_python_value",
    "comparable",
    "date_to_days",
    "days_to_date",
    "infer_literal_type",
    "parse_date_literal",
    "parse_type_name",
    "promote",
    "LockSet",
    "RWLock",
    "ColumnStats",
    "StatsManager",
    "TableStats",
]
