"""Resting column encodings: dictionary, run-length, and subtract-min
bit-packing.

An :class:`Encoding` is an alternate, usually smaller, physical
representation of one immutable :class:`~repro.storage.column.Column`.
Encodings are *resting* formats: attaching one never changes the
column's logical values — ``column.data`` / ``column.mask`` decode
transparently (and cache), so every kernel and row-path fallback keeps
working unchanged — but the vectorized kernels get two shortcuts:

* :meth:`Encoding.factorize` hands :meth:`Column.factorize` its codes
  without re-encoding (the dictionary case is a plain ``astype``), so
  GROUP BY / DISTINCT / ORDER BY on an encoded column never pay the
  sort-based encode again, regardless of the factorize-memo threshold;
* two dictionary-encoded columns that share a dictionary join on their
  resting codes directly (see ``exec/kernels._shared_dict_codes``).

Every array slot may hold a zero-argument loader instead of the array
itself — format-v4 images install ``np.load(..., mmap_mode="r")``
thunks so a reopened database materializes columns lazily.

The factorize contract (value-ordered codes, NULL code last) is
preserved exactly; float columns containing NaN are never encoded, so
the ``nan_distinct`` subtleties stay confined to the plain path.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

import numpy as np

from ..errors import TypeError_
from .types import DataType
from .zonemap import ZONE_ROWS as _ZONE_ROWS

#: Encoded representation must be at most this fraction of the plain
#: bytes to be worth adopting (decode costs a copy; marginal wins lose).
_ADOPT_RATIO = 0.9


def _narrow_uint(max_code: int) -> "np.dtype | None":
    """Smallest unsigned dtype holding ``max_code``, or None past uint32."""
    if max_code < (1 << 8):
        return np.dtype(np.uint8)
    if max_code < (1 << 16):
        return np.dtype(np.uint16)
    if max_code < (1 << 32):
        return np.dtype(np.uint32)
    return None


class _FactorizeCounters:
    """Process-wide encode/hit counters behind :func:`factorize_stats`.

    Mirrors the ``KernelCounters`` pattern: a mutex-guarded tally that
    ``Database.storage_stats()`` snapshots.  ``encodes`` counts actual
    sort/unique encodes in ``Column._factorize_impl``; ``resting_hits``
    counts factorizes answered from a resting encoding; ``memo_hits``
    counts answers from the per-column memo.  The re-factorize-cliff
    regression test asserts ``encodes`` stays flat across repeated
    GROUP BYs on an encoded column.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.encodes = 0
        self.resting_hits = 0
        self.memo_hits = 0
        self.shared_dict_joins = 0

    def note(self, field: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + delta)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "encodes": self.encodes,
                "resting_hits": self.resting_hits,
                "memo_hits": self.memo_hits,
                "shared_dict_joins": self.shared_dict_joins,
            }


factorize_counters = _FactorizeCounters()


class Encoding:
    """Base resting encoding; subclasses fill the layout-specific parts.

    ``length`` is the logical row count — available without decoding, so
    ``len(column)`` never materializes a lazy column.
    """

    kind = "plain"
    __slots__ = ("length",)

    def __init__(self, length: int):
        self.length = length

    # -- layout-specific -------------------------------------------------
    def materialize(self) -> "tuple[np.ndarray, np.ndarray | None]":
        raise NotImplementedError

    def null_mask(self) -> "np.ndarray | None":
        """The decoded null mask alone (cheaper than full materialize)."""
        raise NotImplementedError

    def factorize(self, nan_distinct: bool):
        """``(codes, cardinality, uniques)`` per the Column.factorize
        contract, or None when this layout has no shortcut."""
        return None

    def materialize_range(self, start: int, stop: int):
        """Decode only rows ``[start, stop)`` — the morsel-streaming
        primitive behind :meth:`Column.slice_morsel`.  The base
        implementation decodes everything (correct, not lazy);
        subclasses override with genuinely bounded decodes."""
        data, mask = self.materialize()
        return data[start:stop], (mask[start:stop] if mask is not None else None)

    def nbytes(self) -> int:
        """Resting payload bytes (decoded arrays excluded)."""
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------
    @staticmethod
    def _resolve(ref):
        """Array slots may hold zero-arg loaders (mmap thunks)."""
        return ref() if callable(ref) else ref


class PlainEncoding(Encoding):
    """No compression — exists so format-v4 *plain* columns can still be
    lazy: ``data``/``mask`` hold mmap thunks until first touch."""

    kind = "plain"
    __slots__ = ("_data", "_mask")

    def __init__(self, length: int, data, mask=None):
        super().__init__(length)
        self._data = data
        self._mask = mask

    @property
    def data(self) -> np.ndarray:
        d = self._resolve(self._data)
        self._data = d
        return d

    def materialize(self):
        return self.data, self.null_mask()

    def null_mask(self):
        m = self._resolve(self._mask)
        self._mask = m
        if m is not None and not m.any():
            m = self._mask = None
        return m

    def materialize_range(self, start: int, stop: int):
        # slicing an mmapped array yields a view: only touched pages load
        m = self.null_mask()
        return self.data[start:stop], (m[start:stop] if m is not None else None)

    def nbytes(self) -> int:
        m = self.null_mask()
        return int(self.data.nbytes) + (int(m.nbytes) if m is not None else 0)


class DictEncoding(Encoding):
    """Dictionary codes + sorted dictionary; NULL coded last.

    ``codes`` is a narrow unsigned array where valid rows hold the rank
    of their value in the ascending ``uniques`` array and NULL rows (iff
    ``has_null``) hold ``len(uniques)`` — exactly the
    :meth:`Column.factorize` layout, so factorize is an ``astype``.
    """

    kind = "dict"
    __slots__ = ("_codes", "_uniques", "has_null", "dtype_")

    def __init__(self, length: int, codes, uniques, has_null: bool, dtype_):
        super().__init__(length)
        self._codes = codes
        self._uniques = uniques
        self.has_null = bool(has_null)
        self.dtype_ = np.dtype(dtype_)

    @property
    def codes(self) -> np.ndarray:
        c = self._resolve(self._codes)
        self._codes = c
        return c

    @property
    def uniques(self) -> np.ndarray:
        u = self._resolve(self._uniques)
        self._uniques = u
        return u

    def materialize(self):
        codes, uniques = self.codes, self.uniques
        k = len(uniques)
        mask = None
        if self.has_null:
            mask = codes == k
            # clamp NULL slots onto an arbitrary in-range code; the mask
            # is the sole source of truth for NULL-ness
            codes = np.where(mask, 0, codes) if k else codes
        if k:
            data = uniques[codes]
            if data.dtype != self.dtype_:
                data = data.astype(self.dtype_)
        elif self.dtype_ == np.dtype(object):
            data = np.empty(self.length, dtype=object)
        else:
            data = np.zeros(self.length, dtype=self.dtype_)
        if mask is not None and not mask.any():
            mask = None
        return data, mask

    def null_mask(self):
        if not self.has_null:
            return None
        return self.codes == len(self.uniques)

    def materialize_range(self, start: int, stop: int):
        codes = self.codes[start:stop]
        uniques = self.uniques
        k = len(uniques)
        mask = None
        if self.has_null:
            mask = codes == k
            codes = np.where(mask, 0, codes) if k else codes
        if k:
            data = uniques[codes]
            if data.dtype != self.dtype_:
                data = data.astype(self.dtype_)
        elif self.dtype_ == np.dtype(object):
            data = np.empty(len(codes), dtype=object)
        else:
            data = np.zeros(len(codes), dtype=self.dtype_)
        if mask is not None and not mask.any():
            mask = None
        return data, mask

    def factorize(self, nan_distinct: bool):
        # NaN-bearing float columns are never dict-encoded, so the
        # nan_distinct flag cannot change the coding.
        factorize_counters.note("resting_hits")
        cardinality = len(self.uniques) + (1 if self.has_null else 0)
        return (
            self.codes.astype(np.int64),
            max(cardinality, 1),
            self.uniques,
        )

    def nbytes(self) -> int:
        return int(self.codes.nbytes) + int(self.uniques.nbytes)


class RLEEncoding(Encoding):
    """Run-length encoding: ``(run_values, run_lengths[, run_mask])``.

    A run never spans a value change *or* a NULL-ness change, so
    ``np.repeat`` reconstructs both arrays exactly.  Factorize encodes
    the (small) runs column and repeats the run codes — the distinct
    set, value order, and NULL-last code are unchanged.
    """

    kind = "rle"
    __slots__ = ("_values", "_lengths", "_mask", "col_type", "_ends")

    def __init__(self, length: int, values, lengths, mask, col_type: DataType):
        super().__init__(length)
        self._values = values
        self._lengths = lengths
        self._mask = mask
        self.col_type = col_type
        self._ends = None  # cached cumulative run ends (range decode)

    @property
    def values(self) -> np.ndarray:
        v = self._resolve(self._values)
        self._values = v
        return v

    @property
    def lengths(self) -> np.ndarray:
        l = self._resolve(self._lengths)
        self._lengths = l
        return l

    @property
    def run_mask(self) -> "np.ndarray | None":
        m = self._resolve(self._mask)
        self._mask = m
        return m

    def materialize(self):
        data = np.repeat(self.values, self.lengths)
        mask = self.null_mask()
        return data, mask

    def null_mask(self):
        rm = self.run_mask
        if rm is None:
            return None
        mask = np.repeat(rm, self.lengths)
        return mask if mask.any() else None

    def materialize_range(self, start: int, stop: int):
        if stop <= start:
            return self.values[:0], None
        ends = self._ends
        if ends is None:
            ends = self._ends = np.cumsum(self.lengths, dtype=np.int64)
        i0 = int(np.searchsorted(ends, start, side="right"))
        i1 = int(np.searchsorted(ends, stop - 1, side="right"))
        lengths = self.lengths[i0 : i1 + 1].astype(np.int64, copy=True)
        prev_end = int(ends[i0 - 1]) if i0 > 0 else 0
        lengths[0] -= start - prev_end
        lengths[-1] -= int(ends[i1]) - stop
        data = np.repeat(self.values[i0 : i1 + 1], lengths)
        rm = self.run_mask
        mask = None
        if rm is not None:
            mask = np.repeat(rm[i0 : i1 + 1], lengths)
            if not mask.any():
                mask = None
        return data, mask

    def factorize(self, nan_distinct: bool):
        from .column import Column  # deferred: column.py imports this module

        runs = Column(self.col_type, self.values, self.run_mask)
        run_codes, cardinality, uniques = runs.factorize(
            nan_distinct=nan_distinct
        )
        factorize_counters.note("resting_hits")
        return np.repeat(run_codes, self.lengths), cardinality, uniques

    def nbytes(self) -> int:
        total = int(self.values.nbytes) + int(self.lengths.nbytes)
        if self.run_mask is not None:
            total += int(self.run_mask.nbytes)
        return total


class PackedEncoding(Encoding):
    """Subtract-min (frame-of-reference) bit-packing for narrow integer
    domains.

    ``packed`` stores ``value - lo`` in the smallest unsigned dtype that
    fits the observed span (placeholders in NULL slots included, so the
    physical array round-trips bit-exactly).  ``lo`` is either one
    column-wide minimum or — when the domain is locally clustered — a
    per-zone minima array (``zone_rows`` rows per frame), which packs
    into a narrower dtype whenever values drift but stay locally tight
    (timestamps, auto-increment keys after compaction, ...).

    With a scalar ``lo``, no NULLs, and a span narrow enough for the
    dense-code fast path, the packed bytes *are* the factorize codes;
    per-zone frames give that up (codes would be frame-relative) and
    factorize falls back to the plain path.
    """

    kind = "pack"
    __slots__ = ("_packed", "_mask", "_lo", "span", "dtype_", "zone_rows")

    def __init__(
        self, length: int, packed, mask, lo, span: int, dtype_, zone_rows: int = 0
    ):
        super().__init__(length)
        self._packed = packed
        self._mask = mask
        self._lo = lo if (callable(lo) or isinstance(lo, np.ndarray)) else int(lo)
        self.span = int(span)
        self.dtype_ = np.dtype(dtype_)
        self.zone_rows = int(zone_rows)

    @property
    def packed(self) -> np.ndarray:
        p = self._resolve(self._packed)
        self._packed = p
        return p

    @property
    def lo(self):
        l = self._resolve(self._lo)
        self._lo = l
        return l

    def _frame_base(self, start: int, stop: int) -> np.ndarray:
        """Per-row frame minimum for rows ``[start, stop)``."""
        zones = np.arange(start, stop, dtype=np.int64) // self.zone_rows
        return np.asarray(self.lo, dtype=np.int64)[zones]

    def materialize(self):
        packed = self.packed
        if self.zone_rows:
            lo = np.asarray(self.lo, dtype=np.int64)
            sizes = np.full(len(lo), self.zone_rows, dtype=np.int64)
            sizes[-1] = len(packed) - (len(lo) - 1) * self.zone_rows
            base = np.repeat(lo, sizes)
        else:
            base = self.lo
        data = (packed.astype(np.int64) + base).astype(self.dtype_)
        return data, self.null_mask()

    def materialize_range(self, start: int, stop: int):
        packed = self.packed[start:stop]
        if self.zone_rows:
            base = self._frame_base(start, start + len(packed))
        else:
            base = self.lo
        data = (packed.astype(np.int64) + base).astype(self.dtype_)
        m = self.null_mask()
        mask = m[start:stop] if m is not None else None
        if mask is not None and not mask.any():
            mask = None
        return data, mask

    def null_mask(self):
        m = self._resolve(self._mask)
        self._mask = m
        if m is not None and not m.any():
            m = self._mask = None
        return m

    def factorize(self, nan_distinct: bool):
        from .column import _dense_span_bound

        if self.zone_rows:
            return None  # frame-relative bytes are not global codes
        if self.null_mask() is not None:
            return None  # lo covers placeholder slots; codes would skew
        if self.span > _dense_span_bound(self.length):
            return None
        factorize_counters.note("resting_hits")
        codes = self.packed.astype(np.int64)
        return codes, max(self.span, 1), None

    def nbytes(self) -> int:
        m = self.null_mask()
        total = int(self.packed.nbytes) + (int(m.nbytes) if m is not None else 0)
        if self.zone_rows:
            total += int(np.asarray(self.lo).nbytes)
        return total


# ----------------------------------------------------------------------
# encoding selection
# ----------------------------------------------------------------------
def _object_payload_bytes(values: np.ndarray, sample: int = 1024) -> int:
    """Estimated payload bytes of an object array (pointer + chars)."""
    n = len(values)
    if n == 0:
        return 0
    picked = values[:sample]
    payload = 0
    for v in picked:
        try:
            payload += len(v) if v is not None else 0
        except TypeError:
            payload += 16
    return int(8 * n + payload * (n / len(picked)))


def _run_starts(data: np.ndarray, mask: "np.ndarray | None") -> np.ndarray:
    """Start offsets of value/NULL-ness runs (always includes 0)."""
    changes = np.asarray(data[1:] != data[:-1], dtype=np.bool_)
    if mask is not None:
        changes = changes | (mask[1:] != mask[:-1])
    return np.concatenate((np.zeros(1, dtype=np.int64), np.flatnonzero(changes) + 1))


def choose_encoding(column) -> "Encoding | None":
    """Pick the smallest resting encoding for ``column``, or None.

    Pure inspection — the returned encoding decodes to exactly the
    column's current ``data``/``mask``.  Float columns containing NaN
    and nested-table payloads are never encoded; an encoding is adopted
    only when its resting bytes beat the plain layout by
    :data:`_ADOPT_RATIO`.
    """
    n = len(column)
    if n == 0 or column.type == DataType.NESTED_TABLE:
        return None
    data, mask = column.data, column.mask
    dtype = data.dtype
    if dtype.kind == "f" and bool(np.isnan(data).any()):
        return None
    if dtype == np.dtype(object):
        raw = _object_payload_bytes(data)
    else:
        raw = int(data.nbytes)
    if mask is not None:
        raw += int(mask.nbytes)

    candidates: "list[tuple[int, str]]" = []

    # -- RLE -----------------------------------------------------------
    starts = _run_starts(data, mask)
    n_runs = len(starts)
    item = 8 if dtype == np.dtype(object) else dtype.itemsize
    rle_bytes = n_runs * (item + 8 + (1 if mask is not None else 0))
    if n_runs * 3 <= n:
        candidates.append((rle_bytes, "rle"))

    # -- dictionary ------------------------------------------------------
    dict_parts = None
    try:
        codes, cardinality, uniques = column.factorize()
    except (TypeError, TypeError_):
        codes = cardinality = uniques = None
    if uniques is not None and len(uniques) + (1 if mask is not None else 0) == cardinality:
        code_dtype = _narrow_uint(cardinality - 1 if cardinality else 0)
        if code_dtype is not None:
            if uniques.dtype == np.dtype(object):
                dict_bytes = n * code_dtype.itemsize + _object_payload_bytes(uniques)
            else:
                dict_bytes = n * code_dtype.itemsize + int(uniques.nbytes)
            dict_parts = (codes, uniques, code_dtype)
            candidates.append((dict_bytes, "dict"))

    # -- subtract-min packing -------------------------------------------
    pack_parts = None
    packz_parts = None
    if dtype.kind in "iu" and dtype.itemsize > 1:
        mask_bytes = int(mask.nbytes) if mask is not None else 0
        lo = int(data.min())
        hi = int(data.max())
        pack_dtype = _narrow_uint(hi - lo)
        if n > _ZONE_ROWS:
            # per-zone frame-of-reference: locally-clustered domains pack
            # narrower against each zone's own minimum than the column's
            zone_starts = np.arange(0, n, _ZONE_ROWS)
            zone_lo = np.minimum.reduceat(data, zone_starts).astype(np.int64)
            zone_hi = np.maximum.reduceat(data, zone_starts).astype(np.int64)
            zone_span = int((zone_hi - zone_lo).max())
            zone_dtype = _narrow_uint(zone_span)
            if (
                zone_dtype is not None
                and zone_dtype.itemsize < dtype.itemsize
                and (pack_dtype is None or zone_dtype.itemsize < pack_dtype.itemsize)
            ):
                packz_bytes = (
                    n * zone_dtype.itemsize + int(zone_lo.nbytes) + mask_bytes
                )
                packz_parts = (zone_lo, zone_span + 1, zone_dtype)
                candidates.append((packz_bytes, "packz"))
        if packz_parts is None and pack_dtype is not None and pack_dtype.itemsize < dtype.itemsize:
            pack_bytes = n * pack_dtype.itemsize + mask_bytes
            pack_parts = (lo, hi - lo + 1, pack_dtype)
            candidates.append((pack_bytes, "pack"))

    if not candidates:
        return None
    best_bytes, best = min(candidates, key=lambda c: c[0])
    if best_bytes > raw * _ADOPT_RATIO:
        return None

    if best == "rle":
        run_values = data[starts]
        run_lengths = np.diff(np.concatenate((starts, np.array([n], dtype=np.int64))))
        run_mask = mask[starts].copy() if mask is not None else None
        return RLEEncoding(n, run_values, run_lengths, run_mask, column.type)
    if best == "dict":
        codes, uniques, code_dtype = dict_parts
        return DictEncoding(
            n, codes.astype(code_dtype), uniques, mask is not None, dtype
        )
    if best == "packz":
        zone_lo, span, pack_dtype = packz_parts
        sizes = np.diff(np.append(np.arange(0, n, _ZONE_ROWS), n))
        base = np.repeat(zone_lo, sizes)
        packed = (data.astype(np.int64) - base).astype(pack_dtype)
        return PackedEncoding(
            n, packed, mask, zone_lo, span, dtype, zone_rows=_ZONE_ROWS
        )
    lo, span, pack_dtype = pack_parts
    packed = (data.astype(np.int64) - lo).astype(pack_dtype)
    return PackedEncoding(n, packed, mask, lo, span, dtype)


def encode_columns(version, *, force: bool = False) -> int:
    """Attach resting encodings to every eligible column of a
    :class:`TableVersion` (idempotent); returns how many were attached.

    Columns already carrying an encoding are left alone.  Safe on live
    versions: attaching is an observably-pure cache install, readers
    pinned to this (or any other) version sharing the column objects see
    identical values before and after.
    """
    attached = 0
    for col in version.columns:
        if col.encoding is not None and not force:
            continue
        enc = choose_encoding(col)
        if enc is not None:
            col.set_resting_encoding(enc)
            attached += 1
    return attached
