"""Bulk columnar ingest: building table columns without a per-row
Python loop.

The row INSERT path (``build_appended_columns``) funnels every value
through ``coerce_python_value`` inside a Python loop — fine for a
handful of rows, fatal for the LDBC ingest phase.  :func:`bulk_column`
accepts whole value vectors instead:

* numpy arrays of a numeric/bool dtype take a **vectorized** path —
  one dtype check + ``astype`` per morsel, optionally fanned across the
  shared :class:`~repro.exec.parallel.ExecPool` (the same duck-typed
  ``runner`` protocol ``Column.factorize`` uses), with null masks and
  integrality checks computed as array ops;
* lists and object arrays (strings, dates, values mixed with ``None``)
  take a **chunked** path that runs ``Column.from_values`` per morsel —
  the exact per-value coercion of the row path, so results stay
  bit-identical to row-at-a-time INSERT by construction.

Both paths yield plain immutable :class:`Column` objects, so everything
downstream (MVCC versioning, zone-map extension, resting encodings,
the graph overlay) is unaffected by *how* the batch was built.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from ..errors import TypeError_
from .column import Column
from .schema import Schema
from .types import DataType

#: int32 bounds for the INTEGER overflow check on the vectorized path
#: (the row path raises from ``np.fromiter`` instead of wrapping).
_INT32_MIN, _INT32_MAX = -(2**31), 2**31 - 1


def _spans(n: int, runner) -> "list[tuple[int, int]] | None":
    """Morsel spans when the batch is worth fanning out, else None."""
    if runner is not None and runner.active_for(n):
        return runner.spans(n)
    return None


def _map(runner, spans, fn) -> list:
    if spans is None:
        return []
    return runner.map("ingest", fn, spans)


def _vector_column(
    type_: DataType, values: np.ndarray, runner
) -> Column:
    """The no-Python-loop path for numeric/bool ndarray input."""
    kind = values.dtype.kind
    n = len(values)
    target = type_.numpy_dtype
    if type_ == DataType.BOOLEAN:
        if kind != "b":
            raise TypeError_(
                f"expected boolean values, got dtype {values.dtype}"
            )
        return Column(type_, values.astype(np.bool_), None)
    if type_ == DataType.DOUBLE:
        if kind not in "fiub":
            raise TypeError_(f"expected double values, got dtype {values.dtype}")
        out = np.empty(n, dtype=np.float64)
        spans = _spans(n, runner)

        def cast(span: "tuple[int, int]") -> None:
            start, stop = span
            out[start:stop] = values[start:stop]

        if spans is None:
            cast((0, n))
        else:
            _map(runner, spans, cast)
        return Column(type_, out, None)
    if type_ in (DataType.INTEGER, DataType.BIGINT, DataType.DATE):
        if kind == "f":
            # the row path accepts integral floats only; NaN/fractional
            # values must fail here exactly as coerce_python_value would
            spans = _spans(n, runner)

            def check(span: "tuple[int, int]") -> bool:
                start, stop = span
                chunk = values[start:stop]
                return bool(
                    np.isfinite(chunk).all() and (chunk == np.floor(chunk)).all()
                )

            ok = (
                all(_map(runner, spans, check))
                if spans is not None
                else check((0, n))
            )
            if not ok:
                raise TypeError_(
                    f"expected {type_}, got non-integral float values"
                )
        elif kind not in "iub":
            raise TypeError_(f"expected {type_}, got dtype {values.dtype}")
        if type_ == DataType.INTEGER and n:
            low = values.min()
            high = values.max()
            if low < _INT32_MIN or high > _INT32_MAX:
                raise TypeError_("integer value out of INTEGER range")
        out = np.empty(n, dtype=target)
        spans = _spans(n, runner)

        def cast(span: "tuple[int, int]") -> None:
            start, stop = span
            out[start:stop] = values[start:stop]

        if spans is None:
            cast((0, n))
        else:
            _map(runner, spans, cast)
        return Column(type_, out, None)
    raise TypeError_(f"no vectorized ingest for {type_}")


def _chunked_column(type_: DataType, values: Sequence[Any], runner) -> Column:
    """Per-morsel ``Column.from_values`` — row-path coercion semantics,
    chunked so big object batches still parallelize."""
    n = len(values)
    spans = _spans(n, runner)
    if spans is None:
        return Column.from_values(type_, values)

    def build(span: "tuple[int, int]") -> Column:
        start, stop = span
        return Column.from_values(type_, values[start:stop])

    parts = _map(runner, spans, build)
    data = np.concatenate([p.data for p in parts])
    if any(p.mask is not None for p in parts):
        mask = np.concatenate([p.null_mask() for p in parts])
    else:
        mask = None
    return Column(type_, data, mask)


def bulk_column(
    type_: DataType, values, runner=None
) -> Column:
    """Build one column from a value vector (ndarray, list, or an
    existing :class:`Column`, which passes through after a type check).

    ``runner`` is the morsel-parallel protocol (``active_for`` /
    ``spans`` / ``map``) — pass ``ExecPool.context()`` to fan large
    batches across the shared kernel pool.
    """
    if isinstance(values, Column):
        if values.type != type_:
            raise TypeError_(
                f"column of type {values.type} cannot ingest into {type_}"
            )
        return values
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise TypeError_("ingest vectors must be one-dimensional")
        if values.dtype.kind in "bifu":
            return _vector_column(type_, values, runner)
        # unicode/object arrays (strings, dates, mixed-with-None) fall
        # through to per-value coercion — np.str_ is a str subclass
    return _chunked_column(type_, list(values), runner)


def bulk_columns(
    schema: Schema,
    values: "Sequence[Any] | dict[str, Any]",
    runner=None,
    columns: "Optional[Sequence[str]]" = None,
) -> list[Column]:
    """Build a full batch for ``schema`` from per-column vectors.

    ``values`` is either a sequence aligned with ``columns`` (or the
    schema order when ``columns`` is None) or a mapping of column name
    to vector.  Unnamed columns are filled with NULLs, so partial-column
    ``COPY``/appends work like partial-column INSERT.
    """
    names = [c.name for c in schema]
    if isinstance(values, dict):
        vectors = {str(k).lower(): v for k, v in values.items()}
        unknown = set(vectors) - set(names)
        if unknown:
            raise TypeError_(f"unknown columns in ingest batch: {sorted(unknown)}")
    else:
        order = [str(c).lower() for c in columns] if columns is not None else names
        if len(values) != len(order):
            raise TypeError_(
                f"batch has {len(values)} vectors, expected {len(order)}"
            )
        unknown = set(order) - set(names)
        if unknown:
            raise TypeError_(f"unknown columns in ingest batch: {sorted(unknown)}")
        vectors = dict(zip(order, values))
    lengths = {len(v) for v in vectors.values()}
    if len(lengths) > 1:
        raise TypeError_("ingest vectors have differing lengths")
    n = lengths.pop() if lengths else 0
    built = []
    for col_def in schema:
        vector = vectors.get(col_def.name)
        if vector is None:
            built.append(Column.nulls(col_def.type, n))
        else:
            built.append(bulk_column(col_def.type, vector, runner))
    return built


# ---------------------------------------------------------------------------
# COPY ... FROM file readers
# ---------------------------------------------------------------------------
_TRUE_LITERALS = frozenset({"true", "t", "1", "yes"})
_FALSE_LITERALS = frozenset({"false", "f", "0", "no"})


def _parse_bool(text: str) -> bool:
    low = text.strip().lower()
    if low in _TRUE_LITERALS:
        return True
    if low in _FALSE_LITERALS:
        return False
    raise ValueError(f"invalid boolean literal {text!r}")


def _csv_converter(type_: DataType):
    if type_ == DataType.BOOLEAN:
        return _parse_bool
    if type_ in (DataType.INTEGER, DataType.BIGINT):
        return int
    if type_ == DataType.DOUBLE:
        return float
    # VARCHAR stays text; DATE strings go through coerce_python_value's
    # ISO parsing inside Column.from_values
    return str


def read_csv_vectors(
    path: str,
    types: Sequence[DataType],
    *,
    header: bool = True,
    delimiter: str = ",",
    pool=None,
) -> list[list]:
    """Read a CSV file into per-column value lists for :func:`bulk_columns`.

    Empty fields become NULL; everything else converts by target type
    (booleans accept true/false/t/f/1/0/yes/no) and the resulting Python
    values take the chunked-coercion path, so a COPY loads bit-identically
    to the equivalent row INSERTs.

    With a multi-worker ``pool`` (the database's shared
    :class:`~repro.exec.parallel.ExecPool`), files of at least
    ``REPRO_PARALLEL_CSV_BYTES`` (default 4 MiB) without quoted fields
    are split at newline boundaries and parsed one chunk per task;
    chunk results concatenate in file order and errors carry the same
    global line numbers, so output and failure behavior are identical
    to the serial read.
    """
    import csv

    converters = [_csv_converter(t) for t in types]
    if pool is not None and getattr(pool, "workers", 1) > 1:
        parsed = _read_csv_parallel(
            path, types, converters, header=header, delimiter=delimiter,
            pool=pool,
        )
        if parsed is not None:
            return parsed
    vectors: list[list] = [[] for _ in types]
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        if header:
            next(reader, None)
        for lineno, row in enumerate(reader, 1):
            if not row:
                continue
            if len(row) != len(types):
                raise TypeError_(
                    f"CSV row {lineno} has {len(row)} fields, "
                    f"expected {len(types)}"
                )
            for out, convert, text in zip(vectors, converters, row):
                if text == "":
                    out.append(None)
                else:
                    try:
                        out.append(convert(text))
                    except ValueError as exc:
                        raise TypeError_(f"CSV row {lineno}: {exc}") from None
    return vectors


def _parse_csv_chunk(text: str, types, converters, delimiter: str) -> tuple:
    """Parse one newline-aligned chunk: ``("ok", raw_rows, None,
    vectors)`` or the first failing row as ``("badfields"/"badvalue",
    local_lineno, detail, None)`` — the caller turns local line numbers
    into the global ones the serial reader reports."""
    import csv
    import io

    vectors: list[list] = [[] for _ in types]
    raw = 0
    for row in csv.reader(io.StringIO(text, newline=""), delimiter=delimiter):
        raw += 1
        if not row:
            continue
        if len(row) != len(types):
            return ("badfields", raw, len(row), None)
        for out, convert, field in zip(vectors, converters, row):
            if field == "":
                out.append(None)
            else:
                try:
                    out.append(convert(field))
                except ValueError as exc:
                    return ("badvalue", raw, str(exc), None)
    return ("ok", raw, None, vectors)


def _read_csv_parallel(
    path: str, types, converters, *, header: bool, delimiter: str, pool
) -> "list[list] | None":
    """The chunked COPY fast path, or None when the file should take
    the serial reader (small file, quoted fields, undecodable bytes)."""
    import locale
    import os

    from ..envutil import env_int
    from ..exec.parallel import map_tasks

    min_bytes = env_int("REPRO_PARALLEL_CSV_BYTES", 4 * 1024 * 1024)
    try:
        if min_bytes is None or os.path.getsize(path) < min_bytes:
            return None
    except OSError:
        return None
    with open(path, "rb") as handle:
        data = handle.read()
    if b'"' in data:
        return None  # quoted fields may span newlines: serial only
    if header:
        cut = data.find(b"\n")
        data = data[cut + 1:] if cut >= 0 else b""
    if not data:
        return [[] for _ in types]
    n_chunks = min(max(int(getattr(pool, "workers", 1)) * 2, 1), 64)
    approx = max(1, len(data) // n_chunks)
    starts = [0]
    while len(starts) < n_chunks:
        target = starts[-1] + approx
        if target >= len(data):
            break
        cut = data.find(b"\n", target)
        if cut < 0 or cut + 1 >= len(data):
            break
        starts.append(cut + 1)
    encoding = locale.getpreferredencoding(False)
    try:
        texts = [
            data[start:stop].decode(encoding)
            for start, stop in zip(starts, starts[1:] + [len(data)])
        ]
    except (UnicodeDecodeError, LookupError):
        return None
    results = map_tasks(
        pool,
        "copy_csv",
        lambda text: _parse_csv_chunk(text, types, converters, delimiter),
        texts,
    )
    merged: list[list] = [[] for _ in types]
    base = 0
    for status, local, detail, vectors in results:
        if status == "badfields":
            raise TypeError_(
                f"CSV row {base + local} has {detail} fields, "
                f"expected {len(types)}"
            )
        if status == "badvalue":
            raise TypeError_(f"CSV row {base + local}: {detail}")
        for out, part in zip(merged, vectors):
            out.extend(part)
        base += local
    return merged


def read_npz_vectors(path: str) -> dict[str, np.ndarray]:
    """Read an ``.npz`` archive into name → array vectors.

    Numeric/bool arrays take the vectorized ingest path wholesale;
    unicode arrays fall back to per-value coercion.  Pickled object
    arrays are rejected (``allow_pickle=False``)."""
    with np.load(path, allow_pickle=False) as payload:
        return {name: payload[name] for name in payload.files}


__all__ = [
    "bulk_column",
    "bulk_columns",
    "read_csv_vectors",
    "read_npz_vectors",
]
