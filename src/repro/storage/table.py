"""Base tables: a schema plus one physical column per attribute.

Tables are append-only (``insert_rows``) which is all the engine needs:
the paper's workload is analytical, and the future-work "graph indices"
(Section 6) only require a version counter to detect staleness, which
``Table.version`` provides.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..errors import CatalogError, TypeError_
from .column import Column
from .schema import Schema


class Table:
    """A named base table holding materialized columns."""

    def __init__(self, name: str, schema: Schema):
        self.name = name.lower()
        self.schema = schema
        self._columns: list[Column] = [Column.empty(c.type) for c in schema]
        #: Bumped on every mutation; used by the graph-index cache (A4).
        self.version = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._columns[0]) if self._columns else 0

    @property
    def num_rows(self) -> int:
        return len(self)

    def column(self, name: str) -> Column:
        return self._columns[self.schema.index_of(name)]

    def columns(self) -> list[Column]:
        return list(self._columns)

    # ------------------------------------------------------------------
    def insert_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append rows (sequences matching the schema order); returns count."""
        rows = list(rows)
        if not rows:
            return 0
        width = len(self.schema)
        for row in rows:
            if len(row) != width:
                raise TypeError_(
                    f"row has {len(row)} values, table {self.name!r} has {width} columns"
                )
        new_columns = []
        for i, col_def in enumerate(self.schema):
            fresh = Column.from_values(col_def.type, [row[i] for row in rows])
            new_columns.append(Column.concat([self._columns[i], fresh]))
        self._columns = new_columns
        self.version += 1
        return len(rows)

    def insert_columns(self, columns: Sequence[Column]) -> int:
        """Append pre-built columns (must match schema types and lengths)."""
        if len(columns) != len(self.schema):
            raise TypeError_("column count mismatch")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise TypeError_("appended columns have differing lengths")
        for col, col_def in zip(columns, self.schema):
            if col.type != col_def.type:
                raise TypeError_(
                    f"column type {col.type} does not match {col_def.name} {col_def.type}"
                )
        self._columns = [
            Column.concat([old, new]) for old, new in zip(self._columns, columns)
        ]
        self.version += 1
        return int(lengths.pop()) if lengths else 0

    def truncate(self) -> None:
        self._columns = [Column.empty(c.type) for c in self.schema]
        self.version += 1

    def replace_columns(self, columns: Sequence[Column]) -> None:
        """Swap in a full new set of columns (DELETE/UPDATE rebuilds)."""
        if len(columns) != len(self.schema):
            raise TypeError_("column count mismatch")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise TypeError_("replacement columns have differing lengths")
        for col, col_def in zip(columns, self.schema):
            if col.type != col_def.type:
                raise TypeError_(
                    f"column type {col.type} does not match {col_def.name} {col_def.type}"
                )
        self._columns = list(columns)
        self.version += 1

    def to_rows(self) -> list[tuple[Any, ...]]:
        """Materialize as Python tuples (mainly for tests and examples)."""
        cols = [c.to_pylist() for c in self._columns]
        return [tuple(col[i] for col in cols) for i in range(len(self))]


class Catalog:
    """The database catalog: a flat namespace of base tables."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, schema: Schema, *, replace: bool = False) -> Table:
        key = name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table already exists: {name!r}")
        table = Table(key, schema)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        try:
            del self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table: {name!r}") from None

    def has(self, name: str) -> bool:
        return name.lower() in self._tables

    def get(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table: {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)
