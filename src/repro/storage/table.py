"""Base tables: a schema plus one immutable column version per state.

Tables are MVCC-versioned: all physical state (the column list) lives in
an immutable :class:`TableVersion` that writers swap atomically under
the table's write lock.  Readers never lock — they grab ``current()``
(one atomic reference read under the GIL) and keep working against that
version no matter how many writers commit after them.  This is the
MonetDB-style snapshot design the paper's prototype inherits: columns
themselves were already immutable, so versioning the *table state* is
what makes whole statements (and session transactions) lock-free on the
read side.

Concurrency contract: every mutation builds a full new ``TableVersion``
(fresh column list, ``version_id`` bumped by one) and publishes it with
a single reference assignment *before* notifying write listeners, so a
racing reader that pairs a version id with a column snapshot can only
err on the stale side (it re-reads), never serve new data under an old
version.  Writers still serialize per table among themselves through the
write side of the table's :class:`~repro.storage.locks.RWLock`; the
statement layer takes it for the whole statement and mutators re-acquire
the (reentrant) write side defensively for callers that bypass SQL.

Transaction buffers hold ``TableVersion`` objects too, with synthetic
``version_id`` values drawn from :func:`next_txn_version_id` (all
``>= TXN_VERSION_BASE``) so an uncommitted version can never be mistaken
for a committed one by the version-keyed caches.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..errors import CatalogError, TypeError_
from .column import Column
from .locks import RWLock
from .schema import Schema

@dataclass(frozen=True)
class WriteInfo:
    """What a committed mutation did, delivered to write listeners.

    ``kind`` is one of ``"append"``, ``"delete"``, ``"update"``,
    ``"truncate"``, ``"replace"``.  For appends, ``appended`` is the
    tail row count of the new version.  For deletes, ``dropped_rows``
    holds the dropped positions in *pre-delete* row order.  For updates,
    ``columns`` names the assigned columns (row count and order
    unchanged).  Listeners that cannot interpret a payload treat it as
    ``"replace"`` (invalidate everything) — the conservative default a
    bare ``callback(table)`` used to imply.
    """

    kind: str
    appended: int = 0
    dropped_rows: Any = None  # np.ndarray | None
    columns: tuple = ()


#: Version ids at or above this value are transaction-private (buffered,
#: uncommitted table versions); committed table versions count up from 0
#: and stay far below.  The version-keyed caches use this to avoid
#: caching transaction-private state.
TXN_VERSION_BASE = 1 << 40

#: Globally unique ids for buffered (uncommitted) table versions.
#: ``itertools.count`` increments atomically under CPython's GIL.
_txn_version_ids = itertools.count(TXN_VERSION_BASE)


def next_txn_version_id() -> int:
    """A fresh transaction-private version id (``>= TXN_VERSION_BASE``)."""
    return next(_txn_version_ids)


@dataclass(frozen=True, eq=False)
class TableVersion:
    """One immutable state of a table: columns + row count + version id.

    Readers resolve scans entirely through a ``TableVersion`` (pinned in
    a :class:`~repro.storage.snapshot.Snapshot`), never through the live
    table, so no reader ever observes a half-applied write.
    """

    name: str
    schema: Schema
    columns: tuple[Column, ...]
    version_id: int

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def column(self, name: str) -> Column:
        return self.columns[self.schema.index_of(name)]

    def to_rows(self) -> list[tuple[Any, ...]]:
        cols = [c.to_pylist() for c in self.columns]
        return [tuple(col[i] for col in cols) for i in range(self.num_rows)]

    # -- storage introspection -----------------------------------------
    def resting_info(self) -> "dict[str, tuple[str, int]]":
        """``{column name: (encoding kind, resting bytes)}`` for this
        version (``\\storage`` / ``Database.storage_stats()``)."""
        return {
            col_def.name: col.resting_info()
            for col_def, col in zip(self.schema, self.columns)
        }

    def build_zone_maps(self) -> int:
        """Eagerly build per-morsel zone maps for every eligible column
        (ANALYZE calls this; scans otherwise build them lazily).  The
        maps cache on the immutable Column objects, so columns untouched
        by later DML keep their maps across versions.  Returns how many
        columns now carry a map."""
        from .zonemap import zone_map_for

        built = 0
        for col in self.columns:
            if zone_map_for(col) is not None:
                built += 1
        return built


# ---------------------------------------------------------------------------
# shared column-building helpers (used by Table mutators *and* the
# transaction write buffer, which computes new versions without touching
# the live table)
# ---------------------------------------------------------------------------
def concat_for_append(old: Column, new: Column) -> Column:
    """``Column.concat`` for the append path, with zone maps *extended*
    instead of discarded: any map cached on ``old`` is carried onto the
    combined column by rescanning only the appended tail, so selective
    scans keep zone-skipping after an append without a re-ANALYZE."""
    combined = Column.concat([old, new])
    if combined is old or combined is new:
        return combined  # single contributor: maps already attached
    zones = old._zones
    if zones:
        from .zonemap import extend_zone_map

        for granularity, zm in zones.items():
            if zm is None:
                continue
            extended = extend_zone_map(zm, combined, granularity)
            if extended is not None:
                if combined._zones is None:
                    combined._zones = {}
                combined._zones[granularity] = extended
    return combined


def build_appended_columns(
    schema: Schema, columns: Sequence[Column], rows: list[Sequence[Any]]
) -> list[Column]:
    """``columns`` with ``rows`` appended (validating width per row)."""
    width = len(schema)
    for row in rows:
        if len(row) != width:
            raise TypeError_(
                f"row has {len(row)} values, table has {width} columns"
            )
    new_columns = []
    for i, col_def in enumerate(schema):
        fresh = Column.from_values(col_def.type, [row[i] for row in rows])
        new_columns.append(concat_for_append(columns[i], fresh))
    return new_columns


def validate_columns(schema: Schema, columns: Sequence[Column]) -> int:
    """Check count/length/type agreement; returns the common length."""
    if len(columns) != len(schema):
        raise TypeError_("column count mismatch")
    lengths = {len(c) for c in columns}
    if len(lengths) > 1:
        raise TypeError_("columns have differing lengths")
    for col, col_def in zip(columns, schema):
        if col.type != col_def.type:
            raise TypeError_(
                f"column type {col.type} does not match {col_def.name} {col_def.type}"
            )
    return int(lengths.pop()) if lengths else 0


class Table:
    """A named base table holding an immutable, atomically-swapped
    :class:`TableVersion`."""

    def __init__(self, name: str, schema: Schema):
        self.name = name.lower()
        self.schema = schema
        self._current = TableVersion(
            self.name,
            schema,
            tuple(Column.empty(c.type) for c in schema),
            0,
        )
        #: Statement-scoped writer lock (see module docstring); the read
        #: side survives for callers that still want blocking reads.
        self.lock = RWLock()
        self._listeners: list[Callable[["Table", "WriteInfo"], None]] = []

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The current committed version id (bumped on every mutation;
        used by the graph-index cache and the plan cache to detect
        staleness)."""
        return self._current.version_id

    def current(self) -> TableVersion:
        """The current committed :class:`TableVersion` — one atomic
        reference read; the foundation of lock-free snapshot scans."""
        return self._current

    # ------------------------------------------------------------------
    def add_write_listener(
        self, callback: Callable[["Table", WriteInfo], None]
    ) -> None:
        """Register a callback fired after every committed mutation.

        The caches (plan cache, graph-index cache) subscribe here so DML
        invalidates (or incrementally maintains — see
        ``repro.graph.overlay``) their state explicitly instead of
        relying on lazy version checks alone.  Callbacks receive the
        table plus a :class:`WriteInfo` describing what the mutation
        did.
        """
        self._listeners.append(callback)

    def _publish(
        self, columns: Sequence[Column], info: "WriteInfo | None" = None
    ) -> None:
        """Swap in a new committed version (caller holds the write lock)
        and notify listeners with what the write did."""
        self._current = TableVersion(
            self.name, self.schema, tuple(columns), self._current.version_id + 1
        )
        if info is None:
            info = WriteInfo("replace")
        for callback in self._listeners:
            callback(self, info)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._current.num_rows

    @property
    def num_rows(self) -> int:
        return len(self)

    def column(self, name: str) -> Column:
        return self._current.column(name)

    def columns(self) -> list[Column]:
        return list(self._current.columns)

    # ------------------------------------------------------------------
    def insert_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append rows (sequences matching the schema order); returns count."""
        rows = list(rows)
        if not rows:
            return 0
        with self.lock.write_locked():
            self._publish(
                build_appended_columns(self.schema, self._current.columns, rows),
                WriteInfo("append", appended=len(rows)),
            )
        return len(rows)

    def insert_columns(self, columns: Sequence[Column]) -> int:
        """Append pre-built columns (must match schema types and lengths).

        This is the bulk-ingest commit point: zone maps on the existing
        columns are extended over the appended tail (not discarded), and
        listeners learn the append size so the graph overlay can fold
        the new edges in without a CSR rebuild.
        """
        count = validate_columns(self.schema, columns)
        with self.lock.write_locked():
            self._publish(
                [
                    concat_for_append(old, new)
                    for old, new in zip(self._current.columns, columns)
                ],
                WriteInfo("append", appended=count),
            )
        return count

    def truncate(self) -> None:
        with self.lock.write_locked():
            self._publish(
                [Column.empty(c.type) for c in self.schema],
                WriteInfo("truncate"),
            )

    def replace_columns(
        self, columns: Sequence[Column], info: "WriteInfo | None" = None
    ) -> None:
        """Swap in a full new set of columns (DELETE/UPDATE rebuilds and
        transaction COMMIT installs).  Callers that know what the
        replacement did pass a :class:`WriteInfo` so listeners can react
        incrementally; without one it counts as an opaque replace."""
        validate_columns(self.schema, columns)
        with self.lock.write_locked():
            self._publish(list(columns), info)

    def to_rows(self) -> list[tuple[Any, ...]]:
        """Materialize as Python tuples (mainly for tests and examples)."""
        return self._current.to_rows()


class Catalog:
    """The database catalog: a flat namespace of base tables.

    Thread-safe: the namespace dict is guarded by a mutex, and every
    write listener registered on the catalog is attached to each table it
    creates (so caches observe DML on tables made before or after they
    subscribed).
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._mutex = threading.RLock()
        self._write_listeners: list[Callable[[Table, WriteInfo], None]] = []

    def add_write_listener(
        self, callback: Callable[[Table, WriteInfo], None]
    ) -> None:
        """Subscribe ``callback`` to mutations of every (future) table."""
        with self._mutex:
            self._write_listeners.append(callback)
            for table in self._tables.values():
                table.add_write_listener(callback)

    def create_table(self, name: str, schema: Schema, *, replace: bool = False) -> Table:
        key = name.lower()
        with self._mutex:
            if key in self._tables and not replace:
                raise CatalogError(f"table already exists: {name!r}")
            table = Table(key, schema)
            for callback in self._write_listeners:
                table.add_write_listener(callback)
            self._tables[key] = table
            return table

    def publish_table(self, table: Table) -> Table:
        """Register a pre-built table (CTAS fills before publishing: a
        half-filled table must never be visible, and filling it after
        publication would mutate state that concurrent snapshots could
        pin half-built)."""
        with self._mutex:
            if table.name in self._tables:
                raise CatalogError(f"table already exists: {table.name!r}")
            for callback in self._write_listeners:
                table.add_write_listener(callback)
            self._tables[table.name] = table
            return table

    def drop_table(self, name: str) -> None:
        with self._mutex:
            try:
                del self._tables[name.lower()]
            except KeyError:
                raise CatalogError(f"unknown table: {name!r}") from None

    def has(self, name: str) -> bool:
        with self._mutex:
            return name.lower() in self._tables

    def get(self, name: str) -> Table:
        with self._mutex:
            try:
                return self._tables[name.lower()]
            except KeyError:
                raise CatalogError(f"unknown table: {name!r}") from None

    def table_names(self) -> list[str]:
        with self._mutex:
            return sorted(self._tables)
