"""Base tables: a schema plus one physical column per attribute.

Tables are append-only (``insert_rows``) which is all the engine needs:
the paper's workload is analytical, and the future-work "graph indices"
(Section 6) only require a version counter to detect staleness, which
``Table.version`` provides.

Concurrency contract: every mutation swaps the full column list *before*
bumping ``version`` and notifying write listeners, so a racing reader
that pairs a version with a column snapshot can only err on the stale
side (it re-reads), never serve new data under an old version.  Each
table carries an :class:`~repro.storage.locks.RWLock`; the statement
layer acquires it for the whole statement, and mutators re-acquire the
(reentrant) write side defensively for callers that bypass SQL.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Sequence

from ..errors import CatalogError, TypeError_
from .column import Column
from .locks import RWLock
from .schema import Schema


class Table:
    """A named base table holding materialized columns."""

    def __init__(self, name: str, schema: Schema):
        self.name = name.lower()
        self.schema = schema
        self._columns: list[Column] = [Column.empty(c.type) for c in schema]
        #: Bumped on every mutation; used by the graph-index cache (A4)
        #: and the plan cache to detect staleness.
        self.version = 0
        #: Statement-scoped reader/writer lock (see module docstring).
        self.lock = RWLock()
        self._listeners: list[Callable[["Table"], None]] = []

    # ------------------------------------------------------------------
    def add_write_listener(self, callback: Callable[["Table"], None]) -> None:
        """Register a callback fired after every committed mutation.

        The caches (plan cache, graph-index cache) subscribe here so DML
        invalidates them explicitly instead of relying on lazy version
        checks alone.
        """
        self._listeners.append(callback)

    def _bump_version(self) -> None:
        self.version += 1
        for callback in self._listeners:
            callback(self)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._columns[0]) if self._columns else 0

    @property
    def num_rows(self) -> int:
        return len(self)

    def column(self, name: str) -> Column:
        return self._columns[self.schema.index_of(name)]

    def columns(self) -> list[Column]:
        return list(self._columns)

    # ------------------------------------------------------------------
    def insert_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append rows (sequences matching the schema order); returns count."""
        rows = list(rows)
        if not rows:
            return 0
        width = len(self.schema)
        for row in rows:
            if len(row) != width:
                raise TypeError_(
                    f"row has {len(row)} values, table {self.name!r} has {width} columns"
                )
        with self.lock.write_locked():
            new_columns = []
            for i, col_def in enumerate(self.schema):
                fresh = Column.from_values(col_def.type, [row[i] for row in rows])
                new_columns.append(Column.concat([self._columns[i], fresh]))
            self._columns = new_columns
            self._bump_version()
        return len(rows)

    def insert_columns(self, columns: Sequence[Column]) -> int:
        """Append pre-built columns (must match schema types and lengths)."""
        if len(columns) != len(self.schema):
            raise TypeError_("column count mismatch")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise TypeError_("appended columns have differing lengths")
        for col, col_def in zip(columns, self.schema):
            if col.type != col_def.type:
                raise TypeError_(
                    f"column type {col.type} does not match {col_def.name} {col_def.type}"
                )
        with self.lock.write_locked():
            self._columns = [
                Column.concat([old, new]) for old, new in zip(self._columns, columns)
            ]
            self._bump_version()
        return int(lengths.pop()) if lengths else 0

    def truncate(self) -> None:
        with self.lock.write_locked():
            self._columns = [Column.empty(c.type) for c in self.schema]
            self._bump_version()

    def replace_columns(self, columns: Sequence[Column]) -> None:
        """Swap in a full new set of columns (DELETE/UPDATE rebuilds)."""
        if len(columns) != len(self.schema):
            raise TypeError_("column count mismatch")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise TypeError_("replacement columns have differing lengths")
        for col, col_def in zip(columns, self.schema):
            if col.type != col_def.type:
                raise TypeError_(
                    f"column type {col.type} does not match {col_def.name} {col_def.type}"
                )
        with self.lock.write_locked():
            self._columns = list(columns)
            self._bump_version()

    def to_rows(self) -> list[tuple[Any, ...]]:
        """Materialize as Python tuples (mainly for tests and examples)."""
        cols = [c.to_pylist() for c in self._columns]
        return [tuple(col[i] for col in cols) for i in range(len(self))]


class Catalog:
    """The database catalog: a flat namespace of base tables.

    Thread-safe: the namespace dict is guarded by a mutex, and every
    write listener registered on the catalog is attached to each table it
    creates (so caches observe DML on tables made before or after they
    subscribed).
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._mutex = threading.RLock()
        self._write_listeners: list[Callable[[Table], None]] = []

    def add_write_listener(self, callback: Callable[[Table], None]) -> None:
        """Subscribe ``callback`` to mutations of every (future) table."""
        with self._mutex:
            self._write_listeners.append(callback)
            for table in self._tables.values():
                table.add_write_listener(callback)

    def create_table(self, name: str, schema: Schema, *, replace: bool = False) -> Table:
        key = name.lower()
        with self._mutex:
            if key in self._tables and not replace:
                raise CatalogError(f"table already exists: {name!r}")
            table = Table(key, schema)
            for callback in self._write_listeners:
                table.add_write_listener(callback)
            self._tables[key] = table
            return table

    def publish_table(self, table: Table) -> Table:
        """Register a pre-built table (CTAS fills before publishing: a
        half-filled table must never be visible, and filling it after
        publication would take its write lock while holding the source
        read locks — a lock-order deadlock with concurrent statements)."""
        with self._mutex:
            if table.name in self._tables:
                raise CatalogError(f"table already exists: {table.name!r}")
            for callback in self._write_listeners:
                table.add_write_listener(callback)
            self._tables[table.name] = table
            return table

    def drop_table(self, name: str) -> None:
        with self._mutex:
            try:
                del self._tables[name.lower()]
            except KeyError:
                raise CatalogError(f"unknown table: {name!r}") from None

    def has(self, name: str) -> bool:
        with self._mutex:
            return name.lower() in self._tables

    def get(self, name: str) -> Table:
        with self._mutex:
            try:
                return self._tables[name.lower()]
            except KeyError:
                raise CatalogError(f"unknown table: {name!r}") from None

    def table_names(self) -> list[str]:
        with self._mutex:
            return sorted(self._tables)
