"""Physical columns: a typed numpy array plus an optional null mask.

A :class:`Column` is immutable once built (operators always produce new
columns), mirroring MonetDB's BAT-style materialized execution model.  The
null mask is a boolean numpy array where ``True`` marks NULL; columns with
no NULLs carry ``mask=None`` so the common case stays branch-free.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..envutil import env_int as _env_int
from ..errors import TypeError_
from .encoding import Encoding, factorize_counters
from .types import DataType, coerce_python_value, days_to_date

#: Sentinel distinguishing "mask not derived yet" from a legitimate
#: ``None`` (= no NULLs) on lazily-decoded columns.
_UNSET = object()


def _parse_string(value: Any, target: DataType) -> Any:
    """Parse a VARCHAR value for CAST into ``target`` (None passes)."""
    if value is None:
        return None
    text = value.strip()
    try:
        if target.is_integral:
            return int(text)
        if target == DataType.DOUBLE:
            return float(text)
        if target == DataType.BOOLEAN:
            if text.lower() in ("true", "t", "1"):
                return True
            if text.lower() in ("false", "f", "0"):
                return False
            raise ValueError(text)
    except ValueError:
        raise TypeError_(f"cannot cast {value!r} to {target}") from None
    return text  # DATE handled by coerce_python_value


def _dense_span_bound(n_values: int) -> int:
    """Largest ``value - min`` code span worth a scatter table instead
    of a sort-based dictionary (shared by the serial and morsel
    factorize paths, which must take the same branch to stay
    bit-identical)."""
    return max(4 * n_values, 1024)


def _dense_span(values: np.ndarray) -> "tuple[int, int] | None":
    """``(min, span)`` when integer ``values`` cover a range narrow
    enough that ``value - min`` beats a sort-based ``np.unique`` as the
    dictionary code (span bounded by :func:`_dense_span_bound`), else
    None."""
    if values.dtype.kind not in "iub" or len(values) == 0:
        return None
    lo = int(values.min())
    hi = int(values.max())
    span = hi - lo + 1
    if span > _dense_span_bound(len(values)):
        return None
    return lo, span


def _factorize_objects(values: np.ndarray) -> tuple[np.ndarray, int, "np.ndarray | None"]:
    """Dense codes for an object array (NULLs already excluded).

    Sortable payloads (strings) get value-ordered codes via ``np.unique``;
    unorderable but hashable payloads get insertion-ordered codes from a
    dictionary (``uniques`` None).  Unhashable payloads raise TypeError.
    """
    try:
        uniques, inverse = np.unique(values, return_inverse=True)
        return inverse.reshape(-1).astype(np.int64, copy=False), len(uniques), uniques
    except TypeError:
        pass
    mapping: dict = {}
    codes = np.empty(len(values), dtype=np.int64)
    for i, value in enumerate(values):
        code = mapping.get(value)
        if code is None:
            code = mapping[value] = len(mapping)
        codes[i] = code
    return codes, len(mapping), None


#: Columns longer than this skip the *plain-path* factorize memo: the
#: memo pins a full-size int64 codes array (plus the dictionary) for
#: the column version's lifetime, and above this bound (512MB of codes
#: by default) the resident-memory cost outweighs the repeat-statement
#: win.  The threshold no longer creates a re-*encode* cliff: columns
#: carrying a resting :class:`~repro.storage.encoding.DictEncoding`
#: (attached by ANALYZE / ``save()``) answer factorize from their
#: stored codes with one ``astype`` regardless of size, so only
#: never-analyzed plain columns above the bound pay a per-statement
#: sort-based encode.  Env knob ``REPRO_FACTORIZE_MEMO_ROWS``; DML
#: releases memos naturally because writers build new columns.
FACTORIZE_MEMO_MAX_ROWS = _env_int("REPRO_FACTORIZE_MEMO_ROWS", 67_108_864)


def unique_inverse_morsels(
    values: np.ndarray, runner, op: str = "factorize"
) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(values, return_inverse=True)`` via per-partition
    dictionary merge — *the* single implementation of the merge (the
    exec layer's ``parallel_unique_inverse`` delegates here), because
    the bit-identity guarantee depends on every caller encoding the
    same way: each morsel builds its own sorted dictionary, the local
    dictionaries merge into the global sorted unique set, and each
    morsel remaps with ``searchsorted`` (exactly ``np.unique``'s
    inverse)."""
    spans = runner.spans(len(values))
    locals_ = runner.map(op, lambda s: np.unique(values[s[0] : s[1]]), spans)
    uniques = np.unique(np.concatenate(locals_)) if locals_ else values[:0]
    inverse = np.empty(len(values), dtype=np.int64)

    def remap(s: "tuple[int, int]") -> None:
        inverse[s[0] : s[1]] = np.searchsorted(uniques, values[s[0] : s[1]])

    runner.map(op, remap, spans)
    return uniques, inverse


def _factorize_morsels(
    values: np.ndarray, runner
) -> tuple[np.ndarray, int, "np.ndarray | None"]:
    """Morsel-parallel dictionary codes for a primitive-dtype value array
    (NULLs and NaNs already excluded), bit-identical to the serial path.

    The dense-span fast path distributes the min/max scan and the
    ``value - min`` subtraction; the dictionary path builds one sorted
    dictionary *per morsel*, merges them into the global code space
    (``np.unique`` over the concatenated dictionaries — the same sorted
    unique set one big ``np.unique`` would produce), and remaps every
    morsel into it with ``searchsorted`` (exactly ``np.unique``'s
    inverse).
    """
    spans = runner.spans(len(values))
    if values.dtype.kind in "iub":
        bounds = runner.map(
            "factorize",
            lambda s: (int(values[s[0] : s[1]].min()), int(values[s[0] : s[1]].max())),
            spans,
        )
        lo = min(b[0] for b in bounds)
        hi = max(b[1] for b in bounds)
        span = hi - lo + 1
        if span <= _dense_span_bound(len(values)):
            codes = np.empty(len(values), dtype=np.int64)

            def subtract(s: "tuple[int, int]") -> None:
                chunk = values[s[0] : s[1]].astype(np.int64, copy=False)
                np.subtract(chunk, lo, out=codes[s[0] : s[1]])

            runner.map("factorize", subtract, spans)
            return codes, span, None
    uniques, codes = unique_inverse_morsels(values, runner)
    return codes, len(uniques), uniques


class Column:
    """An immutable typed vector of values.

    Parameters
    ----------
    type_:
        The logical :class:`DataType` of the values.
    data:
        A numpy array with the physical representation.  NULL slots hold an
        arbitrary placeholder (0 / empty string / None) and are identified
        solely through ``mask``.
    mask:
        Optional boolean array; ``True`` marks a NULL.  ``None`` means the
        column contains no NULLs.
    """

    __slots__ = ("type", "_data", "_mask", "_fact_memo", "_encoding", "_zones")

    def __init__(self, type_: DataType, data: np.ndarray, mask: np.ndarray | None = None):
        if mask is not None and len(mask) != len(data):
            raise TypeError_("null mask length does not match data length")
        if mask is not None and not mask.any():
            mask = None
        self.type = type_
        self._data = data
        self._mask = mask
        #: nan_distinct -> (codes, cardinality, uniques); see factorize().
        self._fact_memo: dict | None = None
        #: resting Encoding (see storage/encoding.py) or None for plain.
        self._encoding: Encoding | None = None
        #: granularity -> ColumnZoneMap | None; see storage/zonemap.py.
        self._zones: dict | None = None

    # ------------------------------------------------------------------
    # physical representation (decoded lazily when resting-encoded)
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The physical value array, decoding the resting encoding on
        first touch (cached).  Treat as read-only — loaded columns may
        be read-only memory maps."""
        d = self._data
        if d is None:
            d, mask = self._encoding.materialize()
            if self._mask is _UNSET:
                self._mask = mask
            self._data = d
        return d

    @property
    def mask(self) -> "np.ndarray | None":
        """The null mask (None = no NULLs), decoded lazily like data."""
        m = self._mask
        if m is _UNSET:
            m = self._mask = self._encoding.null_mask()
        return m

    @property
    def encoding(self) -> "Encoding | None":
        """The resting encoding, or None for a plain column."""
        return self._encoding

    @classmethod
    def from_encoding(cls, type_: DataType, encoding: Encoding) -> "Column":
        """A column resting entirely in ``encoding`` — ``data``/``mask``
        decode (and cache) on first access, so loaded images
        materialize lazily per column."""
        column = cls.__new__(cls)
        column.type = type_
        column._data = None
        column._mask = _UNSET
        column._fact_memo = None
        column._encoding = encoding
        column._zones = None
        return column

    def set_resting_encoding(self, encoding: Encoding) -> None:
        """Attach a resting encoding produced *from this column* (an
        observably-pure cache install: the encoding decodes to exactly
        the current values, so snapshots sharing this column object are
        unaffected)."""
        self._encoding = encoding

    def resting_info(self) -> "tuple[str, int]":
        """``(encoding kind, resting bytes)`` for introspection — the
        ``\\storage`` shell command and storage_stats() report these."""
        enc = self._encoding
        if enc is not None:
            return enc.kind, enc.nbytes()
        d = self._data
        nbytes = int(d.nbytes) if d is not None else 0
        if self._mask is not None and self._mask is not _UNSET:
            nbytes += int(self._mask.nbytes)
        return "plain", nbytes

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_values(type_: DataType, values: Iterable[Any]) -> "Column":
        """Build a column from Python values, coercing each to ``type_``."""
        values = list(values)
        coerced = [coerce_python_value(v, type_) for v in values]
        mask = np.fromiter((v is None for v in coerced), dtype=np.bool_, count=len(coerced))
        if type_.numpy_dtype == np.dtype(object):
            data = np.empty(len(coerced), dtype=object)
            for i, v in enumerate(coerced):
                data[i] = v
        else:
            filler = 0
            data = np.fromiter(
                (filler if v is None else v for v in coerced),
                dtype=type_.numpy_dtype,
                count=len(coerced),
            )
        return Column(type_, data, mask if mask.any() else None)

    @staticmethod
    def constant(type_: DataType, value: Any, length: int) -> "Column":
        """A column holding ``length`` copies of one (coerced) value."""
        value = coerce_python_value(value, type_)
        if value is None:
            return Column.nulls(type_, length)
        if type_.numpy_dtype == np.dtype(object):
            data = np.empty(length, dtype=object)
            data[:] = value
        else:
            data = np.full(length, value, dtype=type_.numpy_dtype)
        return Column(type_, data)

    @staticmethod
    def nulls(type_: DataType, length: int) -> "Column":
        """A column of ``length`` NULLs."""
        if type_.numpy_dtype == np.dtype(object):
            data = np.empty(length, dtype=object)
        else:
            data = np.zeros(length, dtype=type_.numpy_dtype)
        return Column(type_, data, np.ones(length, dtype=np.bool_))

    @staticmethod
    def empty(type_: DataType) -> "Column":
        return Column(type_, np.empty(0, dtype=type_.numpy_dtype))

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        # materialization-free: lazy columns know their length from the
        # encoding, so catalogs/row counts never force a decode
        d = self._data
        if d is None:
            return self._encoding.length
        return len(d)

    @property
    def has_nulls(self) -> bool:
        return self.mask is not None

    def null_mask(self) -> np.ndarray:
        """The null mask as a real array (all-False when mask is None)."""
        if self.mask is None:
            return np.zeros(len(self), dtype=np.bool_)
        return self.mask

    def value(self, index: int) -> Any:
        """The Python value at ``index`` (``None`` for NULL)."""
        if self.mask is not None and self.mask[index]:
            return None
        item = self.data[index]
        if isinstance(item, np.generic):
            item = item.item()
        return item

    def to_pylist(self, *, decode_dates: bool = False) -> list[Any]:
        """Materialize the column as a list of Python values."""
        if self.data.dtype != np.dtype(object):
            out = self.data.tolist()  # bulk conversion (C speed)
            if self.mask is not None:
                mask_list = self.mask.tolist()
                out = [None if null else v for v, null in zip(out, mask_list)]
        else:
            out = list(self.data)
            if self.mask is not None:
                mask_list = self.mask.tolist()
                out = [None if null else v for v, null in zip(out, mask_list)]
        if decode_dates and self.type == DataType.DATE:
            out = [None if v is None else days_to_date(v) for v in out]
        return out

    def __iter__(self) -> Iterator[Any]:
        for i in range(len(self)):
            yield self.value(i)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(v) for v in self.to_pylist()[:8])
        suffix = ", ..." if len(self) > 8 else ""
        return f"Column<{self.type}>[{preview}{suffix}]"

    # ------------------------------------------------------------------
    # positional operations (the building blocks of every operator)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position (late materialization / join payload)."""
        data = self.data[indices]
        mask = self.mask[indices] if self.mask is not None else None
        return Column(self.type, data, mask)

    def filter(self, keep: np.ndarray) -> "Column":
        """Keep rows where the boolean array ``keep`` is True."""
        data = self.data[keep]
        mask = self.mask[keep] if self.mask is not None else None
        return Column(self.type, data, mask)

    def slice(self, start: int, stop: int) -> "Column":
        data = self.data[start:stop]
        mask = self.mask[start:stop] if self.mask is not None else None
        return Column(self.type, data, mask)

    def slice_morsel(self, start: int, stop: int) -> "Column":
        """Rows ``[start, stop)`` decoded alone.

        Unlike :meth:`slice`, a resting-encoded or mmapped column never
        materializes outside the requested range (each encoding decodes
        just the touched zone; plain mmaps page in only the sliced
        rows), which is what lets budgeted execution stream a
        larger-than-memory column morsel-at-a-time.  Values are
        bit-identical to ``slice(start, stop)``.
        """
        if self._data is not None:
            return self.slice(start, stop)
        data, mask = self._encoding.materialize_range(start, stop)
        return Column(self.type, data, mask)

    @staticmethod
    def concat(columns: Sequence["Column"]) -> "Column":
        """Stack columns of an identical type end to end."""
        if not columns:
            raise TypeError_("cannot concatenate zero columns")
        type_ = columns[0].type
        if any(c.type != type_ for c in columns):
            raise TypeError_("concat requires identical column types")
        non_empty = [c for c in columns if len(c)]
        if len(non_empty) == 1:
            # single contributor: share it (columns are immutable), which
            # keeps resting encodings / lazy mmaps intact — e.g. the
            # empty-table insert that persist.load_database performs
            return non_empty[0]
        data = np.concatenate([c.data for c in columns])
        if any(c.mask is not None for c in columns):
            mask = np.concatenate([c.null_mask() for c in columns])
        else:
            mask = None
        return Column(type_, data, mask)

    # ------------------------------------------------------------------
    # factorization (the primitive behind the vectorized exec kernels)
    # ------------------------------------------------------------------
    def factorize(
        self, *, nan_distinct: bool = True, runner=None
    ) -> tuple[np.ndarray, int, "np.ndarray | None"]:
        """Dictionary-encode the column into dense ``int64`` codes.

        Returns ``(codes, cardinality, uniques)`` where ``codes`` assigns
        every row an integer in ``[0, cardinality)`` such that two rows
        share a code iff they are the same *key*:

        * non-NULL, non-NaN values get ranks ``0..K-1`` in ascending value
          order (``uniques[code]`` recovers the value), so the codes are
          directly usable as null-aware sort keys;
        * float NaN slots come next — one fresh code per slot when
          ``nan_distinct`` (matching the Python-tuple identity semantics
          of the row-at-a-time operators, where every materialized NaN is
          its own key), or one shared code when ordering is all that
          matters;
        * the NULL code is always last, which makes ascending code order
          exactly SQL's NULLS LAST.

        ``uniques`` is ``None`` in two cases: the integer fast path
        (codes are ``value - min`` — still value-ordered, no dictionary
        materialized) and object payloads that are not orderable, which
        fall back to insertion-ordered codes from a hash dictionary —
        still valid grouping/join keys, but unusable for ordering
        kernels (non-object codes are value-ordered regardless of
        ``uniques``).  Raises ``TypeError`` for payloads that are
        neither orderable nor hashable (nested tables); callers treat
        that as "no kernel".

        The method is pure and re-entrant: concurrent calls (kernels on
        the shared worker pool) are safe.  Results are memoized on the
        column (up to :data:`FACTORIZE_MEMO_MAX_ROWS` rows — the memo
        pins a codes array as large as the column) — immutable, so the
        memo is write-once per key; a benign double-compute race just
        stores the identical result twice.  Callers must treat the
        returned arrays as read-only.

        ``runner``, when given, is a duck-typed morsel scheduler (the
        :class:`repro.exec.parallel.ParallelContext` protocol:
        ``active_for`` / ``spans`` / ``map``).  Large primitive-dtype
        columns are then factorized morsel-parallel with **per-partition
        dictionary merge**: every morsel builds its own sorted
        dictionary, the local dictionaries merge into one global code
        space, and each morsel remaps into it — bit-identical to the
        serial encoding for any worker count or morsel size.
        """
        memo = self._fact_memo
        key = bool(nan_distinct)
        if memo is not None:
            cached = memo.get(key)
            if cached is not None:
                factorize_counters.note("memo_hits")
                return cached
        encoding = self._encoding
        if encoding is not None:
            # resting codes: a lookup/astype, never a re-encode — this is
            # what retires the re-factorize cliff for analyzed columns
            result = encoding.factorize(key)
            if result is not None:
                return result
        result = self._factorize_impl(nan_distinct, runner)
        if len(self) <= FACTORIZE_MEMO_MAX_ROWS:
            if memo is None:
                memo = self._fact_memo = {}
            memo[key] = result
        return result

    def _factorize_impl(
        self, nan_distinct: bool, runner
    ) -> tuple[np.ndarray, int, "np.ndarray | None"]:
        factorize_counters.note("encodes")
        data, n = self.data, len(self.data)
        valid = np.ones(n, dtype=np.bool_) if self.mask is None else ~self.mask
        nan = None
        if data.dtype.kind == "f":
            nan = np.isnan(data) & valid
            valid = valid & ~nan
        if data.dtype == np.dtype(object):
            codes_valid, cardinality, uniques = _factorize_objects(data[valid])
        else:
            values = data[valid]
            if runner is not None and runner.active_for(len(values)):
                codes_valid, cardinality, uniques = _factorize_morsels(
                    values, runner
                )
            else:
                span = _dense_span(values)
                if span is not None:
                    # integer fast path: value - min is already a monotonic
                    # dense-enough code — no sort needed.  ``uniques`` stays
                    # None (non-object codes are value-ordered regardless).
                    lo, cardinality = span
                    codes_valid = values.astype(np.int64, copy=False) - lo
                    uniques = None
                else:
                    uniques, inverse = np.unique(values, return_inverse=True)
                    codes_valid = inverse.reshape(-1).astype(np.int64, copy=False)
                    cardinality = len(uniques)
        codes = np.zeros(n, dtype=np.int64)
        codes[valid] = codes_valid
        if nan is not None and nan.any():
            positions = np.flatnonzero(nan)
            if nan_distinct:
                codes[positions] = cardinality + np.arange(
                    len(positions), dtype=np.int64
                )
                cardinality += len(positions)
            else:
                codes[positions] = cardinality
                cardinality += 1
        if self.mask is not None:
            codes[self.mask] = cardinality
            cardinality += 1
        return codes, max(cardinality, 1), uniques

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def cast(self, target: DataType) -> "Column":
        """Cast to another logical type, NULLs passing through.

        Follows SQL CAST semantics for the supported type lattice; invalid
        string-to-number conversions raise :class:`TypeError_`.
        """
        if target == self.type:
            return self
        source, mask = self.type, self.mask
        if source.is_numeric and target.is_numeric:
            if target == DataType.BOOLEAN:
                data = self.data.astype(np.bool_)
            else:
                if target.is_integral and source == DataType.DOUBLE:
                    data = np.trunc(self.data).astype(target.numpy_dtype)
                else:
                    data = self.data.astype(target.numpy_dtype)
            return Column(target, data, mask)
        if target == DataType.VARCHAR:
            data = np.empty(len(self), dtype=object)
            for i in range(len(self)):
                v = self.value(i)
                if v is None:
                    data[i] = ""
                elif source == DataType.DATE:
                    data[i] = days_to_date(v).isoformat()
                elif source == DataType.BOOLEAN:
                    data[i] = "true" if v else "false"
                else:
                    data[i] = str(v)
            return Column(target, data, mask)
        if source == DataType.VARCHAR:
            return Column.from_values(target, [_parse_string(v, target) for v in self.to_pylist()])
        if source == DataType.DATE and target.is_integral:
            return Column(target, self.data.astype(target.numpy_dtype), mask)
        if source.is_integral and target == DataType.DATE:
            return Column(target, self.data.astype(np.int64), mask)
        raise TypeError_(f"cannot cast {source} to {target}")
