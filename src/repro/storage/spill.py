"""Spill-to-disk runs for memory-budgeted execution.

When a :class:`~repro.api.Database` is given a ``memory_budget`` (bytes;
``REPRO_MEMORY_BUDGET``), operators whose estimated working set exceeds
the budget partition their inputs into temp *spill files* and process
one partition at a time (see ``exec/operators.py``).  This module owns
the disk side of that story:

* :class:`SpillManager` — one per Database, owns the spill directory
  (``<dbdir>/spill`` for a database opened on a directory, else a
  process-private temp dir), hands out files, and sweeps everything on
  ``close()``.  Recovery calls :meth:`SpillManager.sweep` so a crash
  mid-query never leaks partition files into the next run.
* :class:`SpillFile` — an append-only run of CRC32-framed numpy blob
  records, byte-framed exactly like the WAL
  (``[u32 len][u32 crc32][payload]`` with ``np.save`` blobs), so torn
  or corrupted spill data is detected, not silently re-read.
* :class:`SpillPartitions` — routes morsel slices into ``P`` partition
  runs with bounded in-memory buffering; reading a partition back
  yields its rows in original row order, which is what keeps
  partitioned aggregation/join bit-identical to the in-memory kernels.
* :class:`MemoryAccountant` — the per-query decision maker: morsel and
  column sizes are known from dtypes, so it can estimate an operator's
  materialized working set without decoding anything, decide
  stream/spill, and record the decision for EXPLAIN/profile footers.
* :class:`SpillCounters` — Database-lifetime counters behind
  ``Database.memory_stats()`` and the ``\\memory`` shell command
  (mirrors the ``StorageCounters`` pattern).

The budget is advisory, not an allocator: key-code arrays (8 bytes per
row) and final result batches still materialize in memory.  What the
budget bounds is the *payload* working set — decoded column values,
aggregation inputs, join sides, sort keys — which is what dominates
larger-than-memory workloads.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import zlib
from typing import Optional, Sequence

import numpy as np

from ..errors import ReproError
from .column import Column
from .wal import (
    _RECORD_HEADER,
    _column_from_parts,
    _column_parts,
    _pack_record,
    _unpack_payload,
)

#: Rows buffered per partition before flushing one spill record.
SPILL_CHUNK_ROWS = 65_536

#: Partition-count clamp for radix spilling (power of two).
MIN_PARTITIONS = 2
MAX_PARTITIONS = 256


class SpillCounters:
    """Process-lifetime spill/stream tallies (mutex + snapshot, like
    ``StorageCounters``)."""

    _FIELDS = (
        "spills",            # operator-level spill decisions taken
        "partitions",        # partition runs processed
        "files",             # spill files created
        "bytes_written",
        "bytes_read",
        "streams",           # streamed (fused) pipelines executed
        "stream_morsels",    # morsels fed through streamed pipelines
        "sort_runs",         # external-sort runs written
        "merges",            # external-sort run merges
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for field in self._FIELDS:
            setattr(self, field, 0)

    def note(self, field: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + delta)

    def snapshot(self) -> dict:
        with self._lock:
            return {field: getattr(self, field) for field in self._FIELDS}


class MemoryAccountant:
    """Per-query stream/spill decisions against a byte budget.

    Estimates are computed from row counts and dtypes (no decoding), so
    asking "would this operator's materialized working set exceed the
    budget?" is free.  Every decision is recorded; ``Database.profile``
    and the EXPLAIN footer surface them.
    """

    def __init__(self, budget: "int | None", counters: "SpillCounters | None"):
        self.budget = budget
        self.counters = counters
        self.decisions: "list[dict]" = []

    @property
    def active(self) -> bool:
        return self.budget is not None

    def over_budget(self, nbytes: int) -> bool:
        return self.budget is not None and nbytes > self.budget

    def decide(self, op: str, est_bytes: int) -> bool:
        """True when ``op`` should spill given its estimated bytes."""
        spill = self.over_budget(est_bytes)
        self.decisions.append(
            {"op": op, "est_bytes": int(est_bytes), "spill": spill}
        )
        if spill and self.counters is not None:
            self.counters.note("spills")
        return spill

    def note_stream(self, morsels: int) -> None:
        self.decisions.append({"op": "stream", "morsels": int(morsels), "spill": False})
        if self.counters is not None:
            self.counters.note("streams")
            self.counters.note("stream_morsels", morsels)

    def partition_count(self, est_bytes: int) -> int:
        """Power-of-two partition count sized so one partition's payload
        fits comfortably (~half the budget) inside the budget."""
        if not self.budget:
            return MIN_PARTITIONS
        want = max(1, -(-int(est_bytes) // max(self.budget // 2, 1)))
        parts = MIN_PARTITIONS
        while parts < want and parts < MAX_PARTITIONS:
            parts *= 2
        return parts

    def snapshot(self) -> dict:
        return {"budget": self.budget, "decisions": list(self.decisions)}


def estimate_column_bytes(column: Column) -> int:
    """Estimated *materialized* bytes of one column without decoding it
    (object payloads use a flat per-value estimate)."""
    n = len(column)
    dtype = column.type.numpy_dtype
    per = 56 if dtype == np.dtype(object) else dtype.itemsize
    total = n * per
    if column.encoding is not None or column._mask is not None:
        total += n  # mask byte per row, pessimistic
    return int(total)


def estimate_batch_bytes(columns: Sequence[Column]) -> int:
    return sum(estimate_column_bytes(c) for c in columns)


class SpillFile:
    """Append-only CRC-framed run of column-set records."""

    def __init__(self, path: str, counters: "SpillCounters | None"):
        self.path = path
        self.rows = 0
        self._counters = counters
        self._handle = open(path, "wb")

    # -- writing ---------------------------------------------------------
    def append_columns(self, columns: Sequence[Column]) -> None:
        """Append one record holding ``columns`` (equal lengths)."""
        descs, blobs = [], []
        for column in columns:
            desc, parts = _column_parts(column)
            descs.append(desc)
            blobs.extend(parts)
        record = _pack_record({"cols": descs}, blobs)
        self._handle.write(record)
        self.rows += len(columns[0]) if columns else 0
        if self._counters is not None:
            self._counters.note("bytes_written", len(record))

    def finish(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading ---------------------------------------------------------
    def read_column_sets(self):
        """Yield each record's column list, verifying CRCs."""
        self.finish()
        with open(self.path, "rb") as handle:
            while True:
                head = handle.read(_RECORD_HEADER.size)
                if not head:
                    return
                if len(head) < _RECORD_HEADER.size:
                    raise ReproError(f"torn spill record in {self.path}")
                length, crc = _RECORD_HEADER.unpack(head)
                payload = handle.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    raise ReproError(f"corrupted spill record in {self.path}")
                if self._counters is not None:
                    self._counters.note("bytes_read", len(head) + length)
                header, blobs = _unpack_payload(payload)
                columns, at = [], 0
                for desc in header["cols"]:
                    column, at = _column_from_parts(desc, blobs, at)
                    columns.append(column)
                yield columns

    def read_columns(self) -> "list[Column] | None":
        """All records concatenated per position (None when empty)."""
        sets = list(self.read_column_sets())
        if not sets:
            return None
        return [Column.concat([s[i] for s in sets]) for i in range(len(sets[0]))]

    def remove(self) -> None:
        self.finish()
        try:
            os.unlink(self.path)
        except OSError:
            pass


class SpillPartitions:
    """Route morsel slices of one logical input into ``n_parts`` runs.

    ``add(part_ids, columns)`` appends the morsel's rows to their
    partitions, preserving row order within each partition (radix
    routing is order-stable, which the bit-identity argument for
    partitioned aggregation/join rests on).  Buffers at most
    ``SPILL_CHUNK_ROWS`` rows per partition before flushing to disk.
    """

    def __init__(self, manager: "SpillManager", n_parts: int, label: str):
        self.n_parts = n_parts
        self._files: "list[SpillFile | None]" = [None] * n_parts
        self._buffers: "list[list[list[Column]]]" = [[] for _ in range(n_parts)]
        self._buffered_rows = [0] * n_parts
        self._manager = manager
        self._label = label

    def add(self, part_ids: np.ndarray, columns: Sequence[Column]) -> None:
        for part in np.unique(part_ids):
            part = int(part)
            sel = part_ids == part
            self._buffers[part].append([c.filter(sel) for c in columns])
            self._buffered_rows[part] += int(sel.sum())
            if self._buffered_rows[part] >= SPILL_CHUNK_ROWS:
                self._flush(part)

    def _flush(self, part: int) -> None:
        chunks = self._buffers[part]
        if not chunks:
            return
        merged = [
            Column.concat([chunk[i] for chunk in chunks])
            for i in range(len(chunks[0]))
        ]
        if self._files[part] is None:
            self._files[part] = self._manager.create_file(
                f"{self._label}-p{part:03d}"
            )
        self._files[part].append_columns(merged)
        self._buffers[part] = []
        self._buffered_rows[part] = 0

    def read_partition(self, part: int) -> "list[Column] | None":
        """The partition's rows (original order), or None when empty."""
        self._flush(part)
        handle = self._files[part]
        if handle is None:
            return None
        columns = handle.read_columns()
        handle.remove()
        self._files[part] = None
        if self._manager.counters is not None:
            self._manager.counters.note("partitions")
        return columns

    def close(self) -> None:
        for part, handle in enumerate(self._files):
            if handle is not None:
                handle.remove()
                self._files[part] = None
        self._buffers = [[] for _ in range(self.n_parts)]


class SpillManager:
    """Owns the spill directory for one Database.

    ``directory`` is ``<dbdir>/spill`` for a database opened on a
    directory (recovery sweeps leftovers there), else a lazily-created
    private temp dir.  ``close()`` removes everything.
    """

    DIR_NAME = "spill"

    def __init__(
        self,
        directory: "str | None" = None,
        counters: "SpillCounters | None" = None,
    ):
        self._configured_dir = directory
        self._dir: "str | None" = None
        self._is_temp = directory is None
        self._lock = threading.Lock()
        self._seq = 0
        self.counters = counters

    def _ensure_dir(self) -> str:
        with self._lock:
            if self._dir is None:
                if self._configured_dir is not None:
                    os.makedirs(self._configured_dir, exist_ok=True)
                    self._dir = self._configured_dir
                else:
                    self._dir = tempfile.mkdtemp(prefix="repro-spill-")
            return self._dir

    def create_file(self, label: str) -> SpillFile:
        directory = self._ensure_dir()
        # a checkpoint save swaps the database directory out from under
        # a directory-rooted spill dir; recreate it per file, so a
        # query spilling across a concurrent save still lands its runs
        os.makedirs(directory, exist_ok=True)
        with self._lock:
            self._seq += 1
            seq = self._seq
        path = os.path.join(directory, f"run-{seq:06d}-{label}.spill")
        if self.counters is not None:
            self.counters.note("files")
        return SpillFile(path, self.counters)

    def partitions(self, n_parts: int, label: str) -> SpillPartitions:
        return SpillPartitions(self, n_parts, label)

    def close(self) -> None:
        with self._lock:
            directory, self._dir = self._dir, None
        if directory is not None and os.path.isdir(directory):
            shutil.rmtree(directory, ignore_errors=True)

    @staticmethod
    def sweep(database_dir: str) -> int:
        """Remove spill debris under a database directory (recovery);
        returns the number of files swept."""
        directory = os.path.join(database_dir, SpillManager.DIR_NAME)
        if not os.path.isdir(directory):
            return 0
        swept = 0
        for entry in os.listdir(directory):
            try:
                os.unlink(os.path.join(directory, entry))
                swept += 1
            except OSError:
                pass
        try:
            os.rmdir(directory)
        except OSError:
            pass
        return swept
