"""Relation schemas: ordered, case-insensitively named, typed columns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import CatalogError
from .types import DataType


@dataclass(frozen=True)
class ColumnDef:
    """Name and logical type of one column of a relation."""

    name: str
    type: DataType


class Schema:
    """An ordered list of column definitions.

    SQL identifiers are case-insensitive; names are normalized to lower
    case on construction and all lookups fold case.
    """

    __slots__ = ("columns", "_index")

    def __init__(self, columns: list[ColumnDef] | list[tuple[str, DataType]]):
        defs: list[ColumnDef] = []
        for item in columns:
            if isinstance(item, ColumnDef):
                defs.append(ColumnDef(item.name.lower(), item.type))
            else:
                name, type_ = item
                defs.append(ColumnDef(name.lower(), type_))
        self.columns = defs
        self._index: dict[str, int] = {}
        for i, col in enumerate(defs):
            if col.name in self._index:
                raise CatalogError(f"duplicate column name: {col.name!r}")
            self._index[col.name] = i

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[ColumnDef]:
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def fingerprint(self) -> tuple:
        """A hashable identity of the column layout.

        Plan-cache entries record it per referenced table: a dropped and
        recreated table can reuse version numbers, so version equality
        alone cannot prove a cached plan's column ids are still valid.
        """
        return tuple((c.name, c.type) for c in self.columns)

    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def types(self) -> list[DataType]:
        return [c.type for c in self.columns]

    def has(self, name: str) -> bool:
        return name.lower() in self._index

    def index_of(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown column: {name!r}") from None

    def type_of(self, name: str) -> DataType:
        return self.columns[self.index_of(name)].type

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{c.name} {c.type}" for c in self.columns)
        return f"Schema({body})"
