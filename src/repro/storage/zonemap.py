"""Per-morsel zone maps: min/max/null-count small indexes that let the
scan operator skip whole morsels for pushed-down filters.

A :class:`ColumnZoneMap` summarizes one immutable column in chunks of
:data:`ZONE_ROWS` rows (aligned to the executor's ``MORSEL_ROWS`` by
default — both read ``REPRO_MORSEL_ROWS``).  Because columns are
immutable, the map is cached *on the column object*: DML builds new
columns for the data it changes, so untouched columns keep their maps
across table versions for free, and there is no invalidation protocol.

Skipping is strictly conservative:

* NaN values are excluded from min/max at build time — sound, because a
  NaN satisfies no SQL comparison, so it can never be the row a
  comparison filter keeps;
* a morsel with no valid (non-NULL, non-NaN) values is skippable by any
  comparison filter (NULL rows never pass);
* any predicate the map cannot decide (unresolvable operand, NULL
  operand, non-numeric column) simply keeps every morsel.

The residual :class:`PFilter` above the scan always re-evaluates the
predicate on the surviving rows, so zone maps can only remove rows the
filter would drop anyway — results stay bit-identical with
``Database(compression=False)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..envutil import env_int as _env_int
from ..errors import TypeError_
from .types import DataType, coerce_python_value

#: Zone granularity in rows; tracks the executor's morsel size so one
#: zone-map entry decides one morsel.
ZONE_ROWS = _env_int("REPRO_ZONE_ROWS", _env_int("REPRO_MORSEL_ROWS", 65_536)) or 65_536

#: Column types zone maps cover (ordered physical domains).
_ZONE_TYPES = (
    DataType.BOOLEAN,
    DataType.INTEGER,
    DataType.BIGINT,
    DataType.DOUBLE,
    DataType.DATE,
)


@dataclass
class ColumnZoneMap:
    """Min/max/null-count per ``granularity``-row zone of one column."""

    granularity: int
    n_rows: int
    mins: np.ndarray  # column dtype; arbitrary where has_values is False
    maxs: np.ndarray
    null_counts: np.ndarray  # int64
    has_values: np.ndarray  # bool: zone holds >=1 non-NULL, non-NaN value

    @property
    def n_zones(self) -> int:
        return len(self.mins)

    def zone_rows(self, zone: int) -> int:
        return min(self.granularity, self.n_rows - zone * self.granularity)

    # ------------------------------------------------------------------
    def keep_mask(self, op: str, values: "list[Any]") -> np.ndarray:
        """True per zone when the zone *may* contain a passing row."""
        rows = np.minimum(
            self.granularity,
            self.n_rows - np.arange(self.n_zones, dtype=np.int64) * self.granularity,
        )
        if op == "isnull":
            return self.null_counts > 0
        if op == "notnull":
            return self.null_counts < rows
        mins, maxs, has = self.mins, self.maxs, self.has_values
        keep = np.zeros(self.n_zones, dtype=np.bool_)
        for value in values:
            if op == "=" or op == "in":
                hit = (mins <= value) & (value <= maxs)
            elif op == "<":
                hit = mins < value
            elif op == "<=":
                hit = mins <= value
            elif op == ">":
                hit = maxs > value
            elif op == ">=":
                hit = maxs >= value
            else:  # unknown op: keep everything
                return np.ones(self.n_zones, dtype=np.bool_)
            keep |= hit
        return keep & has


def build_column_zone_map(column, granularity: int = ZONE_ROWS) -> "ColumnZoneMap | None":
    """Build the zone map for ``column`` (None for non-orderable types)."""
    if column.type not in _ZONE_TYPES:
        return None
    n = len(column)
    data = column.data
    mask = column.mask
    is_float = data.dtype.kind == "f"
    n_zones = max(1, -(-n // granularity))
    mins = np.zeros(n_zones, dtype=data.dtype)
    maxs = np.zeros(n_zones, dtype=data.dtype)
    null_counts = np.zeros(n_zones, dtype=np.int64)
    has_values = np.zeros(n_zones, dtype=np.bool_)
    for zone in range(n_zones):
        start = zone * granularity
        stop = min(start + granularity, n)
        chunk = data[start:stop]
        if mask is not None:
            null_chunk = mask[start:stop]
            null_counts[zone] = int(np.count_nonzero(null_chunk))
            chunk = chunk[~null_chunk]
        if is_float and len(chunk):
            chunk = chunk[~np.isnan(chunk)]
        if len(chunk):
            mins[zone] = chunk.min()
            maxs[zone] = chunk.max()
            has_values[zone] = True
    return ColumnZoneMap(granularity, n, mins, maxs, null_counts, has_values)


def extend_zone_map(
    old_map: "ColumnZoneMap | None", column, granularity: int = ZONE_ROWS
) -> "ColumnZoneMap | None":
    """Zone map for ``column`` reusing ``old_map``, which was built over
    the first ``old_map.n_rows`` rows of the same data.

    Only the old partial last zone (if any) and the appended tail are
    scanned — an append of ``k`` rows costs ``O(k + granularity)``
    instead of ``O(n)``, which is what keeps bulk ingest from discarding
    and rebuilding maps on every batch.  Falls back to a full build when
    the shapes do not line up.
    """
    if column.type not in _ZONE_TYPES:
        return None
    n = len(column)
    if (
        old_map is None
        or old_map.granularity != granularity
        or old_map.n_rows > n
    ):
        return build_column_zone_map(column, granularity)
    old_n = old_map.n_rows
    #: zones wholly inside the old data are reused verbatim
    intact = old_n // granularity
    data = column.data
    mask = column.mask
    is_float = data.dtype.kind == "f"
    n_zones = max(1, -(-n // granularity))
    mins = np.zeros(n_zones, dtype=data.dtype)
    maxs = np.zeros(n_zones, dtype=data.dtype)
    null_counts = np.zeros(n_zones, dtype=np.int64)
    has_values = np.zeros(n_zones, dtype=np.bool_)
    mins[:intact] = old_map.mins[:intact]
    maxs[:intact] = old_map.maxs[:intact]
    null_counts[:intact] = old_map.null_counts[:intact]
    has_values[:intact] = old_map.has_values[:intact]
    for zone in range(intact, n_zones):
        start = zone * granularity
        stop = min(start + granularity, n)
        chunk = data[start:stop]
        if mask is not None:
            null_chunk = mask[start:stop]
            null_counts[zone] = int(np.count_nonzero(null_chunk))
            chunk = chunk[~null_chunk]
        if is_float and len(chunk):
            chunk = chunk[~np.isnan(chunk)]
        if len(chunk):
            mins[zone] = chunk.min()
            maxs[zone] = chunk.max()
            has_values[zone] = True
    return ColumnZoneMap(granularity, n, mins, maxs, null_counts, has_values)


def zone_map_for(column, granularity: int = ZONE_ROWS) -> "ColumnZoneMap | None":
    """The (lazily built, column-cached) zone map for ``column``.

    The cache is write-once per granularity; a benign double-compute
    race stores an identical map twice (columns are immutable).
    """
    zones = column._zones
    if zones is None:
        zones = column._zones = {}
    if granularity not in zones:
        zones[granularity] = build_column_zone_map(column, granularity)
    return zones[granularity]


# ----------------------------------------------------------------------
# zone predicates (attached to PScan by the optimizer)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ZonePredicate:
    """One zone-testable conjunct of a pushed-down filter.

    ``operands`` holds ``("lit", value)`` / ``("param", index)`` pairs —
    the plan cache normalizes literals into parameters, so values must
    resolve against the statement's parameter vector at execution time.
    ``op`` is one of ``= < <= > >= in isnull notnull insub``; ``insub``
    (non-negated ``IN (subquery)``) carries a ``("sub", physical_plan)``
    operand and is resolved by the executor-supplied callback of
    :func:`select_zone_spans`, which runs the subquery and reports the
    probe values' range.
    """

    column: str
    op: str
    operands: "tuple[tuple[str, Any], ...]" = ()

    def resolve(self, params, col_type: DataType) -> "list[Any] | None":
        """Operand values coerced to the column's domain, or None when
        the predicate cannot be decided (missing/NULL operand, type
        mismatch) — callers then keep every morsel."""
        values = []
        for kind, payload in self.operands:
            if kind == "param":
                try:
                    value = params[payload]
                except (IndexError, TypeError):
                    return None
            else:
                value = payload
            if value is None:
                return None
            try:
                value = coerce_python_value(value, col_type)
            except (TypeError_, TypeError, ValueError):
                return None
            if value is None or isinstance(value, str):
                return None
            if isinstance(value, float) and value != value:
                return None  # NaN operand: no row can match anyway
            values.append(value)
        return values

    def describe(self) -> str:
        if self.op == "insub":
            return f"{self.column} IN (subquery)"
        if self.op in ("isnull", "notnull"):
            return f"{self.column} IS {'NOT ' if self.op == 'notnull' else ''}NULL"
        rendered = []
        for kind, payload in self.operands:
            rendered.append(f"${payload}" if kind == "param" else repr(payload))
        if self.op == "in":
            return f"{self.column} IN ({', '.join(rendered)})"
        return f"{self.column} {self.op} {rendered[0] if rendered else '?'}"


def select_zone_spans(
    version, zone_filters, params, granularity: int = ZONE_ROWS, resolver=None
) -> "tuple[list[tuple[int, int]] | None, int, int]":
    """Row spans of morsels that survive ``zone_filters``.

    Returns ``(spans, skipped, total)`` where ``spans`` is None when no
    morsel can be skipped (callers then scan zero-copy), ``skipped`` /
    ``total`` count morsels for the storage counters.

    ``resolver(zf, col_type)`` decides ``insub`` predicates: it returns
    ``None`` (undecidable — keep every zone), ``()`` (the probe list has
    no matchable value, so *no* zone can pass), or a ``(lo, hi)`` bound
    pair; zones whose min/max range misses ``[lo, hi]`` entirely cannot
    contain a matching row and are skipped — a conservative superset of
    the true probe set.
    """
    if not version.columns:
        return None, 0, 0
    n = len(version.columns[0])
    total = max(1, -(-n // granularity))
    if n <= granularity:
        return None, 0, total
    keep = None
    for zf in zone_filters:
        try:
            idx = version.schema.index_of(zf.column)
        except Exception:
            continue
        column = version.columns[idx]
        zm = zone_map_for(column, granularity)
        if zm is None or zm.n_rows != n:
            continue
        if zf.op == "insub":
            if resolver is None:
                continue
            bounds = resolver(zf, column.type)
            if bounds is None:
                continue
            if bounds:
                lo, hi = bounds
                mask = zm.has_values & (zm.maxs >= lo) & (zm.mins <= hi)
            else:
                # empty probe set: IN () is never true, every zone skips
                mask = np.zeros(zm.n_zones, dtype=np.bool_)
        elif zf.op in ("isnull", "notnull"):
            mask = zm.keep_mask(zf.op, [])
        else:
            values = zf.resolve(params, column.type)
            if not values:
                continue
            mask = zm.keep_mask(zf.op, values)
        keep = mask if keep is None else keep & mask
    if keep is None or bool(keep.all()):
        return None, 0, total
    skipped = total - int(np.count_nonzero(keep))
    spans: "list[tuple[int, int]]" = []
    for zone in np.flatnonzero(keep):
        start = int(zone) * granularity
        stop = min(start + granularity, n)
        if spans and spans[-1][1] == start:
            spans[-1] = (spans[-1][0], stop)
        else:
            spans.append((start, stop))
    return spans, skipped, total


class StorageCounters:
    """Cumulative zone-map skip counters, one instance per Database.

    The same shape as ``KernelCounters``/``ParallelStats``: a
    mutex-guarded tally with a ``snapshot()`` for
    ``Database.storage_stats()``, the profiler footer, and ``\\storage``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.scans = 0
        self.morsels_total = 0
        self.morsels_skipped = 0
        self.by_table: "dict[str, dict[str, int]]" = {}
        #: runtime-derived zone predicates applied (hash-join build
        #: ranges, IN-subquery probe ranges), keyed by source
        self.dynamic: "dict[str, int]" = {}

    def note_scan(self, table: str, total: int, skipped: int) -> None:
        with self._lock:
            self.scans += 1
            self.morsels_total += total
            self.morsels_skipped += skipped
            entry = self.by_table.setdefault(table, {"morsels": 0, "skipped": 0})
            entry["morsels"] += total
            entry["skipped"] += skipped

    def note_dynamic(self, source: str) -> None:
        with self._lock:
            self.dynamic[source] = self.dynamic.get(source, 0) + 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "zone_scans": self.scans,
                "morsels_total": self.morsels_total,
                "morsels_skipped": self.morsels_skipped,
                "by_table": {t: dict(v) for t, v in self.by_table.items()},
                "dynamic_zone_filters": dict(self.dynamic),
            }
