"""LDBC-SNB-like synthetic data generator and the paper's workload slice
(Q13 and the weighted Q14 variant of Section 4)."""

from .datagen import (
    DEFAULT_SCALE,
    SCALE_FACTORS,
    TABLE1_SIZES,
    SocialNetwork,
    generate,
    table1_row,
    target_sizes,
)
from .workload import (
    Q13_BATCH_SQL,
    Q13_SQL,
    Q14_VARIANT_FLOAT_SQL,
    Q14_VARIANT_SQL,
    ensure_pairs_table,
    load_into,
    make_database,
    random_pairs,
    run_q13,
    run_q13_batch,
    run_q14_variant,
)

__all__ = [
    "DEFAULT_SCALE",
    "SCALE_FACTORS",
    "TABLE1_SIZES",
    "SocialNetwork",
    "generate",
    "table1_row",
    "target_sizes",
    "Q13_BATCH_SQL",
    "Q13_SQL",
    "Q14_VARIANT_FLOAT_SQL",
    "Q14_VARIANT_SQL",
    "ensure_pairs_table",
    "load_into",
    "make_database",
    "random_pairs",
    "run_q13",
    "run_q13_batch",
    "run_q14_variant",
]
