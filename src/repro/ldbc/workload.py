"""The LDBC SNB Interactive workload slice used by the paper (Section 4).

Two queries over the friendship graph:

* **Q13** — "determines the cost of the unweighted shortest paths between
  two given persons": ``CHEAPEST SUM(1)`` over the knows edge table;
* **Q14 (variant)** — the paper cannot run full Q14 (all shortest paths),
  so it returns *one* weighted shortest path using the precomputed
  affinity weights; here ``CHEAPEST SUM(k: CAST(weight * 10 AS bigint))``
  keeps costs integral so the runtime uses the radix-queue Dijkstra,
  exactly like the prototype.  (``q14_variant_float`` exercises the
  float/binary-heap path instead.)

Besides the per-pair form, :func:`q13_batch_sql` evaluates a whole batch
of pairs in one statement — the Figure 1b experiment — by REACHES-ing
over a parameter table so the underlying CSR is built once per query.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..api import Database
from .datagen import SocialNetwork

Q13_SQL = (
    "SELECT CHEAPEST SUM(1) "
    "WHERE ? REACHES ? OVER knows EDGE (person1, person2)"
)

Q14_VARIANT_SQL = (
    "SELECT CHEAPEST SUM(k: CAST(weight * 10 AS bigint)) AS (cost, path) "
    "WHERE ? REACHES ? OVER knows k EDGE (person1, person2)"
)

Q14_VARIANT_FLOAT_SQL = (
    "SELECT CHEAPEST SUM(k: weight) AS (cost, path) "
    "WHERE ? REACHES ? OVER knows k EDGE (person1, person2)"
)

Q13_BATCH_SQL = (
    "SELECT p.src, p.dst, CHEAPEST SUM(1) AS hops "
    "FROM pairs p "
    "WHERE p.src REACHES p.dst OVER knows EDGE (person1, person2)"
)


def load_into(db: Database, network: SocialNetwork, *, bulk: bool = True) -> None:
    """Create and populate the persons / knows tables.

    ``bulk=True`` (default) ingests each table as one columnar batch
    through :meth:`Database.appender` — the fast path.  ``bulk=False``
    funnels every tuple through row INSERTs instead, the A/B baseline
    for ``benchmarks/test_ingest.py``; both load bit-identical tables.
    """
    db.executescript(
        """
        CREATE TABLE persons (
            id BIGINT, firstName VARCHAR, lastName VARCHAR, gender VARCHAR
        );
        CREATE TABLE knows (
            person1 BIGINT, person2 BIGINT, creationDate DATE, weight DOUBLE
        );
        """
    )
    src, dst, days, weights = network.directed_edges()
    if bulk:
        db.appender("persons").append(
            [
                network.person_ids.astype(np.int64),
                list(network.first_names),
                list(network.last_names),
                list(network.genders),
            ]
        )
        db.appender("knows").append(
            [
                src.astype(np.int64),
                dst.astype(np.int64),
                days.astype(np.int64),
                weights.astype(np.float64),
            ]
        )
        return
    with db.connect() as session:
        session.executemany(
            "INSERT INTO persons VALUES (?, ?, ?, ?)",
            [
                (int(pid), first, last, gender)
                for pid, first, last, gender in zip(
                    network.person_ids,
                    network.first_names,
                    network.last_names,
                    network.genders,
                )
            ],
        )
        session.executemany(
            "INSERT INTO knows VALUES (?, ?, ?, ?)",
            [
                (int(a), int(b), int(day), float(w))
                for a, b, day, w in zip(src, dst, days, weights)
            ],
        )


def make_database(network: SocialNetwork, *, bulk: bool = True) -> Database:
    db = Database()
    load_into(db, network, bulk=bulk)
    return db


def random_pairs(
    network: SocialNetwork, count: int, *, seed: int = 7
) -> list[tuple[int, int]]:
    """Uniformly random <source, destination> person-id pairs (the paper:
    "randomly generated out of the set of the generated persons and
    according to a uniform distribution")."""
    rng = np.random.default_rng(seed)
    ids = network.person_ids
    src = rng.choice(ids, size=count)
    dst = rng.choice(ids, size=count)
    return [(int(a), int(b)) for a, b in zip(src, dst)]


def run_q13(db: Database, source: int, dest: int):
    """Cost of the unweighted shortest path (None when unreachable)."""
    rows = db.execute(Q13_SQL, (source, dest)).rows()
    return rows[0][0] if rows else None


def run_q14_variant(db: Database, source: int, dest: int, *, float_weights: bool = False):
    """(cost, path) of one weighted shortest path, or None."""
    sql = Q14_VARIANT_FLOAT_SQL if float_weights else Q14_VARIANT_SQL
    rows = db.execute(sql, (source, dest)).rows()
    return rows[0] if rows else None


def ensure_pairs_table(db: Database) -> None:
    if not db.catalog.has("pairs"):
        db.execute("CREATE TABLE pairs (src BIGINT, dst BIGINT)")


def run_q13_batch(db: Database, pairs: Sequence[tuple[int, int]]):
    """Evaluate Q13 for a whole batch of pairs in one statement.

    This is the Figure 1b experiment: "grouping together multiple pairs
    <source, destination> at varying batch sizes" amortizes the graph
    construction over the batch.
    """
    ensure_pairs_table(db)
    table = db.table("pairs")
    table.truncate()
    table.insert_rows([(int(a), int(b)) for a, b in pairs])
    return db.execute(Q13_BATCH_SQL).rows()
