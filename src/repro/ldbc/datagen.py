"""Synthetic LDBC-SNB-like social network generator.

The paper's evaluation (Section 4) uses the LDBC DATAGEN friendship
graph: "the vertices are the users of the social network while the edges
are their friendship relationships", generated at scale factors 1-300,
with directed edge counts twice the undirected friendship counts
(Table 1).  DATAGEN itself is a large Hadoop-based generator we cannot
run offline, so this module synthesizes graphs with the same *shape*:

* per-scale-factor vertex/edge counts proportional to Table 1 (a global
  ``scale`` knob shrinks them to laptop size while preserving the ratios
  between scale factors and the average degree per scale factor);
* a right-skewed degree distribution (LDBC persons have power-law-ish
  friend counts) obtained by sampling endpoints with Zipf-like
  probabilities;
* undirected friendships emitted as two directed edges with equal
  properties, exactly like the paper's load;
* per-friendship ``creationDate`` (2010-2012) and a strictly positive
  ``weight`` — the Q14 "affinity" between the two friends, which LDBC
  derives from forum interactions and we draw from a matching skewed
  distribution quantized to 0.1 steps (so ``weight * 10`` is an exact
  integer, letting the radix-queue Dijkstra run on integer costs).

Everything is deterministic given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Table 1 of the paper: scale factor -> (vertices, directed edges).
TABLE1_SIZES: dict[int, tuple[int, int]] = {
    1: (9_892, 362_000),
    3: (24_000, 1_132_000),
    10: (65_000, 3_894_000),
    30: (165_000, 12_115_000),
    100: (448_000, 39_998_000),
    300: (1_128_000, 119_225_000),
}

SCALE_FACTORS: tuple[int, ...] = tuple(sorted(TABLE1_SIZES))

#: Default shrink factor: SF 300 becomes ~11k vertices / ~1.2M directed
#: edges, which a pure-Python engine handles in benchmark time budgets.
DEFAULT_SCALE = 0.01

_FIRST_NAMES = (
    "Mahinda Carmen Chen Otto Jan Eva Wei Ali Fritz Ken Hans Jun Anna "
    "Bryn Ivan Lei Abdul Yang Mirza Priya Jack Lin Rahul Sara Amin Mia"
).split()

_LAST_NAMES = (
    "Perera Lepland Wang Richter Zoltan Bauer Li Khan Engel Akiyama "
    "Kovacs Sato Novak Jones Petrov Chen Aziz Liu Hadzic Sharma Reddy"
).split()


@dataclass
class SocialNetwork:
    """One generated dataset (directed edges, both directions present)."""

    scale_factor: float
    person_ids: np.ndarray  # int64, sorted unique
    first_names: list[str]
    last_names: list[str]
    genders: list[str]
    #: undirected friendship endpoints (one row per friendship)
    friend_src: np.ndarray
    friend_dst: np.ndarray
    creation_days: np.ndarray  # days since epoch
    weights: np.ndarray  # affinity, multiples of 0.1, > 0

    @property
    def num_persons(self) -> int:
        return len(self.person_ids)

    @property
    def num_friendships(self) -> int:
        return len(self.friend_src)

    @property
    def num_directed_edges(self) -> int:
        return 2 * self.num_friendships

    def directed_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(src, dst, creation_days, weights) with both directions."""
        src = np.concatenate([self.friend_src, self.friend_dst])
        dst = np.concatenate([self.friend_dst, self.friend_src])
        days = np.concatenate([self.creation_days, self.creation_days])
        weights = np.concatenate([self.weights, self.weights])
        return src, dst, days, weights


def target_sizes(scale_factor: float, scale: float = DEFAULT_SCALE) -> tuple[int, int]:
    """(vertices, undirected friendships) for a scale factor.

    Known scale factors use Table 1 (scaled by ``scale``); intermediate
    values interpolate on the log-log line through Table 1.
    """
    if scale_factor in TABLE1_SIZES:
        vertices, directed = TABLE1_SIZES[int(scale_factor)]
    else:
        xs = np.log(np.array(SCALE_FACTORS, dtype=np.float64))
        vs = np.log(np.array([TABLE1_SIZES[s][0] for s in SCALE_FACTORS], float))
        es = np.log(np.array([TABLE1_SIZES[s][1] for s in SCALE_FACTORS], float))
        x = np.log(float(scale_factor))
        vertices = float(np.exp(np.interp(x, xs, vs)))
        directed = float(np.exp(np.interp(x, xs, es)))
    n_vertices = max(8, int(round(vertices * scale)))
    n_friendships = max(8, int(round(directed * scale / 2)))
    return n_vertices, n_friendships


def generate(
    scale_factor: float,
    *,
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
    skew: float = 0.6,
) -> SocialNetwork:
    """Generate one social network.

    ``skew`` controls the Zipf exponent of endpoint popularity (0 =
    uniform; LDBC-like graphs are noticeably skewed).
    """
    n_vertices, n_friendships = target_sizes(scale_factor, scale)
    rng = np.random.default_rng(seed + int(scale_factor * 1000))

    # LDBC person ids are sparse; emulate with strided ids + jitter so the
    # engine's dictionary encoding is actually exercised.
    ids = np.cumsum(rng.integers(1, 20, size=n_vertices).astype(np.int64)) + 100
    person_ids = ids

    # skewed endpoint popularity (Zipf-ish over a random permutation)
    ranks = rng.permutation(n_vertices).astype(np.float64) + 1.0
    popularity = ranks ** (-skew)
    popularity /= popularity.sum()

    # sample friendships, dropping self-loops and duplicates, until the
    # target count is met (a small oversample keeps this to ~2 rounds)
    chosen: set[tuple[int, int]] = set()
    src_list: list[np.ndarray] = []
    dst_list: list[np.ndarray] = []
    needed = n_friendships
    while needed > 0:
        take = max(64, int(needed * 1.3))
        a = rng.choice(n_vertices, size=take, p=popularity)
        b = rng.choice(n_vertices, size=take, p=popularity)
        keep_src = []
        keep_dst = []
        for x, y in zip(a.tolist(), b.tolist()):
            if x == y:
                continue
            key = (x, y) if x < y else (y, x)
            if key in chosen:
                continue
            chosen.add(key)
            keep_src.append(key[0])
            keep_dst.append(key[1])
            if len(keep_src) == needed:
                break
        if keep_src:
            src_list.append(np.asarray(keep_src, dtype=np.int64))
            dst_list.append(np.asarray(keep_dst, dtype=np.int64))
            needed -= len(keep_src)
        # guard against pathological tiny graphs where the pair space is
        # exhausted before reaching the target
        max_pairs = n_vertices * (n_vertices - 1) // 2
        if len(chosen) >= max_pairs:
            break
    friend_src = person_ids[np.concatenate(src_list)] if src_list else np.empty(0, np.int64)
    friend_dst = person_ids[np.concatenate(dst_list)] if dst_list else np.empty(0, np.int64)
    count = len(friend_src)

    # friendship creation dates: 2010-01-01 .. 2012-12-31
    day0 = 14_610  # 2010-01-01 in days since epoch
    creation_days = rng.integers(day0, day0 + 1095, size=count).astype(np.int64)

    # Q14 affinity: LDBC derives it from common forum interactions; we
    # draw from a geometric-like skew (most friendships weak, few strong),
    # quantized to 0.1 and strictly positive.
    raw = rng.exponential(scale=1.2, size=count) + 0.1
    weights = np.round(np.clip(raw, 0.1, 10.0) * 10.0) / 10.0

    first_names = [_FIRST_NAMES[i % len(_FIRST_NAMES)] for i in range(n_vertices)]
    last_names = [_LAST_NAMES[(i * 7) % len(_LAST_NAMES)] for i in range(n_vertices)]
    genders = ["male" if i % 2 == 0 else "female" for i in range(n_vertices)]

    return SocialNetwork(
        scale_factor=scale_factor,
        person_ids=person_ids,
        first_names=first_names,
        last_names=last_names,
        genders=genders,
        friend_src=friend_src,
        friend_dst=friend_dst,
        creation_days=creation_days,
        weights=weights,
    )


def table1_row(network: SocialNetwork) -> dict:
    """Vertices/edges of a generated network, Table-1 style."""
    return {
        "scale_factor": network.scale_factor,
        "vertices": network.num_persons,
        "edges": network.num_directed_edges,
    }
