"""Interactive SQL shell — and the ``--serve`` server launcher.

Run with ``python -m repro [database-dir]`` for the shell, or
``python -m repro --serve HOST:PORT [database-dir]`` to run the TCP
database server (see :mod:`repro.server`; ``--queue-depth``,
``--statement-timeout`` and ``--exec-workers`` tune admission control
and the worker pool).  Statements end with ``;`` and may span lines.
Meta commands:

* ``\\dt`` — list tables (and graph indices)
* ``\\d <table>`` — describe a table
* ``\\timing`` — toggle per-statement timing
* ``\\cache`` — plan-cache / graph-index-cache counters
* ``\\kernels`` — vectorized-kernel hit/fallback counters
* ``\\stats [table]`` — optimizer statistics recorded by ``ANALYZE``
* ``\\storage [table]`` — per-column resting encodings and bytes, plus
  zone-map morsel-skip and factorize counters
* ``\\memory`` — memory budget and spill/stream counters (budgeted
  execution: streaming scans, partitioned spills, external sorts)
* ``\\graph [index]`` — graph-overlay state per index (base/overlay edge
  counts, tombstones, compaction config) and overlay hit/merge counters
* ``\\workers [path|exec] [n|auto]`` — show / set the shortest-path and
  morsel-execution worker budgets, plus parallel-kernel counters
  (a bare number keeps the historical meaning: path workers)
* ``\\save <dir>`` / ``\\open <dir>`` — persist / load the database
* ``\\q`` — quit

The shell runs one :class:`~repro.session.Session`, so ``BEGIN`` /
``COMMIT`` / ``ROLLBACK`` work as in any client: inside a transaction
the prompt changes from ``sql>`` to ``sql*>`` (psql-style) and every
statement reads the transaction's pinned snapshot until COMMIT
publishes the buffered writes or ROLLBACK discards them.

Paths (nested tables) are rendered inline as ``<path: n edges>``; use
UNNEST to flatten them into rows.
"""

from __future__ import annotations

import sys
import time
from typing import Iterable, Optional, TextIO

from .api import Database, Result
from .errors import ReproError
from .nested import NestedTableValue

PROMPT = "sql> "
TXN_PROMPT = "sql*> "  # an explicit transaction is open
CONTINUATION = "...> "


def render_value(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, NestedTableValue):
        return f"<path: {len(value)} edges>"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_result(result: Result, *, max_rows: int = 200) -> str:
    """Render a Result as an aligned text table."""
    if not result.is_query:
        return f"OK, {result.rowcount} row(s) affected"
    names = result.column_names
    rows = result.rows()
    shown = rows[:max_rows]
    cells = [[render_value(v) for v in row] for row in shown]
    widths = [
        max(len(names[i]), *(len(row[i]) for row in cells)) if cells else len(names[i])
        for i in range(len(names))
    ]
    lines = [
        " | ".join(name.ljust(widths[i]) for i, name in enumerate(names)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(names))))
    suffix = f"({len(rows)} row(s))"
    if len(rows) > max_rows:
        suffix = f"({len(rows)} row(s), showing first {max_rows})"
    lines.append(suffix)
    return "\n".join(lines)


class Shell:
    """Stateful REPL; separated from I/O so tests can drive it.

    Statements run through a :class:`~repro.session.Session`, so repeat
    executions of the same text are plan-cache hits (visible with
    ``\\timing`` and ``\\cache``).
    """

    def __init__(self, db: Optional[Database] = None, out: TextIO = sys.stdout):
        self.db = db or Database()
        self.session = self.db.connect()
        self.out = out
        self.timing = False
        self.buffer: list[str] = []
        self.done = False

    def write(self, text: str) -> None:
        self.out.write(text + "\n")

    # ------------------------------------------------------------------
    def feed_line(self, line: str) -> None:
        """Process one input line (meta command or statement fragment)."""
        stripped = line.strip()
        if not self.buffer and stripped.startswith("\\"):
            self._meta(stripped)
            return
        if not stripped and not self.buffer:
            return
        self.buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self.buffer)
            self.buffer = []
            self._run(statement)

    @property
    def prompt(self) -> str:
        if self.buffer:
            return CONTINUATION
        return TXN_PROMPT if self.session.in_transaction else PROMPT

    # ------------------------------------------------------------------
    def _run(self, sql: str) -> None:
        start = time.perf_counter()
        try:
            result = self.session.execute(sql)
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        elapsed = time.perf_counter() - start
        self.write(render_result(result))
        if self.timing:
            self.write(f"time: {elapsed * 1000:.2f} ms")

    def _meta(self, command: str) -> None:
        parts = command.split()
        name, args = parts[0], parts[1:]
        if name in ("\\q", "\\quit"):
            self.done = True
        elif name == "\\dt":
            for table_name in self.db.catalog.table_names():
                table = self.db.table(table_name)
                self.write(f"{table_name}  ({table.num_rows} rows)")
            for index_name in self.db.graph_indices.names():
                self.write(f"{index_name}  (graph index)")
            if not self.db.catalog.table_names():
                self.write("no tables")
        elif name == "\\d" and args:
            try:
                table = self.db.table(args[0])
            except ReproError as exc:
                self.write(f"error: {exc}")
                return
            for column in table.schema:
                self.write(f"{column.name}  {column.type}")
        elif name == "\\timing":
            self.timing = not self.timing
            self.write(f"timing {'on' if self.timing else 'off'}")
        elif name == "\\cache":
            for cache_name, stats in self.db.cache_stats().items():
                body = " ".join(f"{k}={v}" for k, v in stats.items())
                self.write(f"{cache_name}: {body}")
        elif name == "\\kernels":
            stats = self.db.kernel_stats()
            mode = "on" if self.db.vectorized else "off"
            self.write(
                f"vectorized: {mode}  hits={stats['hit_total']} "
                f"fallbacks={stats['fallback_total']}"
            )
            for op in sorted(set(stats["hits"]) | set(stats["fallbacks"])):
                self.write(
                    f"  {op}: hits={stats['hits'].get(op, 0)} "
                    f"fallbacks={stats['fallbacks'].get(op, 0)}"
                )
        elif name == "\\stats":
            recorded = self.db.table_stats()
            if args:
                recorded = {k: v for k, v in recorded.items() if k == args[0].lower()}
            if not recorded:
                self.write("no statistics recorded (run ANALYZE)")
                return
            for table_name in sorted(recorded):
                stats = recorded[table_name]
                suffix = " (stale)" if stats.stale else ""
                self.write(f"{table_name}: rows={stats.row_count}{suffix}")
                for col_name, col in stats.columns.items():
                    parts = [f"nulls={col.null_count}", f"distinct={col.distinct}"]
                    if col.has_range:
                        parts.append(f"min={col.min_value}")
                        parts.append(f"max={col.max_value}")
                    self.write(f"  {col_name}: {' '.join(parts)}")
        elif name == "\\storage":
            stats = self.db.storage_stats()
            self.write(
                f"compression: {'on' if stats['compression'] else 'off'}"
            )
            table_names = self.db.catalog.table_names()
            if args:
                table_names = [n for n in table_names if n == args[0].lower()]
            for table_name in sorted(table_names):
                version = self.db.table(table_name).current()
                self.write(f"{table_name}: rows={version.num_rows}")
                for col_name, (kind, nbytes) in version.resting_info().items():
                    self.write(f"  {col_name}: encoding={kind} bytes={nbytes}")
            self.write(
                f"zone maps: scans={stats['zone_scans']} "
                f"morsels_skipped={stats['morsels_skipped']}/"
                f"{stats['morsels_total']}"
            )
            fact = stats["factorize"]
            self.write(
                f"factorize: encodes={fact['encodes']} "
                f"resting_hits={fact['resting_hits']} "
                f"memo_hits={fact['memo_hits']} "
                f"shared_dict_joins={fact['shared_dict_joins']}"
            )
            wal = self.db.wal_stats()
            if wal.get("enabled"):
                self.write(
                    f"wal: durability={wal['durability']} "
                    f"lsn={wal['last_lsn']} synced={wal['synced_lsn']} "
                    f"appends={wal['appends']} syncs={wal['syncs']}/"
                    f"{wal['sync_requests']} "
                    f"bytes={wal['bytes_written']} "
                    f"checkpoints={wal['checkpoints']}"
                )
            else:
                self.write("wal: durability=off")
        elif name == "\\memory":
            stats = self.db.memory_stats()
            budget = stats["memory_budget"]
            self.write(
                "memory budget: "
                + ("unlimited" if budget is None else f"{budget} bytes")
            )
            self.write(
                f"spills: decisions={stats['spills']} "
                f"partitions={stats['partitions']} "
                f"files={stats['files']} "
                f"bytes_written={stats['bytes_written']} "
                f"bytes_read={stats['bytes_read']}"
            )
            self.write(
                f"streaming: pipelines={stats['streams']} "
                f"morsels={stats['stream_morsels']} "
                f"sort_runs={stats['sort_runs']} merges={stats['merges']}"
            )
        elif name == "\\graph":
            info = self.db.graph_overlay_info()
            self.write(
                f"overlay: {'on' if info['enabled'] else 'off'} "
                f"(compact threshold {info['compact_threshold']}, "
                f"mode {info['compact_mode']})"
            )
            self.write(
                f"counters: overlay_hits={info['overlay_hits']} "
                f"applied={info['overlay_applied']} "
                f"merges={info['overlay_merges']}"
            )
            names = self.db.graph_indices.names()
            if args:
                names = [n for n in names if n == args[0].lower()]
            for index_name in sorted(names):
                state = info["indices"].get(index_name)
                if state is None:
                    self.write(f"{index_name}: no overlay state (not built)")
                    continue
                self.write(
                    f"{index_name}: base_edges={state['base_edges']} "
                    f"overlay_edges={state['overlay_edges']} "
                    f"tombstones={state['tombstones']} "
                    f"extra_vertices={state['extra_vertices']} "
                    f"versions={state['base_version']}->"
                    f"{state['applied_version']} "
                    f"merged_cached={'yes' if state['merged_cached'] else 'no'}"
                )
            if not names:
                self.write("no graph indices")
        elif name == "\\workers":
            if args:
                kind, values = "path", args
                if args[0] in ("path", "exec"):
                    kind, values = args[0], args[1:]
                if values:
                    value = values[0]
                    if value != "auto":
                        try:
                            value = int(value)
                        except ValueError:
                            self.write(
                                f"error: expected a number or 'auto', got {value!r}"
                            )
                            return
                    if kind == "path":
                        self.db.path_workers = value
                    else:
                        self.db.set_exec_workers(value)
            from .graph import resolve_workers

            self.write(
                f"path workers: {self.db.path_workers} "
                f"(effective {resolve_workers(self.db.path_workers)})"
            )
            stats = self.db.parallel_stats()
            self.write(
                f"exec workers: {stats['workers']} "
                f"(morsel rows {stats['morsel_rows']}, "
                f"serial below {stats['parallel_min_rows']} rows)"
            )
            morsels = stats["morsel_total"]
            self.write(
                f"parallel kernels: parallel_ops={stats['parallel_op_total']} "
                f"serial_ops={stats['serial_op_total']} morsels={morsels}"
            )
            for op in sorted(stats["morsels"]):
                total_ms = stats["morsel_seconds"].get(op, 0.0) * 1000
                self.write(
                    f"  {op}: morsels={stats['morsels'][op]} "
                    f"total={total_ms:.2f}ms "
                    f"max={stats['morsel_max_ms'].get(op, 0.0):.2f}ms"
                )
        elif name == "\\save" and args:
            try:
                self.db.save(args[0])
                self.write(f"saved to {args[0]}")
            except ReproError as exc:
                self.write(f"error: {exc}")
        elif name == "\\open" and args:
            try:
                db = Database.load(args[0])
            except ReproError as exc:
                self.write(f"error: {exc}")
                return
            self.session.close()  # rolls back any open transaction
            self.db = db
            self.session = self.db.connect()
            self.write(f"loaded {args[0]}")
        else:
            self.write(f"unknown meta command: {command}")


def serve_main(argv: list[str]) -> int:
    """``python -m repro --serve HOST:PORT [database-dir]`` — run the
    TCP database server (:mod:`repro.server`) until SIGTERM/SIGINT,
    then drain in-flight statements and shut down gracefully.

    Options: ``--queue-depth N`` (admission high-water mark),
    ``--statement-timeout S`` (per-statement ceiling, seconds),
    ``--exec-workers N`` (kernel + statement worker threads),
    ``--durability off|commit|batch`` (write-ahead logging policy; with
    a database directory the server recovers it — checkpoint image plus
    WAL replay — *before* accepting connections).
    """
    from .server import serve

    address: Optional[str] = None
    directory: Optional[str] = None
    durability: Optional[str] = None
    options: dict = {}
    try:
        index = 0
        while index < len(argv):
            arg = argv[index]
            if arg == "--serve":
                index += 1
                address = argv[index]
            elif arg == "--queue-depth":
                index += 1
                options["max_queue"] = int(argv[index])
            elif arg == "--statement-timeout":
                index += 1
                options["statement_timeout"] = float(argv[index])
            elif arg == "--exec-workers":
                index += 1
                options["exec_workers"] = int(argv[index])
            elif arg == "--durability":
                index += 1
                durability = argv[index]
                if durability not in ("off", "commit", "batch"):
                    print(
                        f"error: --durability expects off|commit|batch, "
                        f"got {durability!r}",
                        file=sys.stderr,
                    )
                    return 2
            elif arg.startswith("--"):
                print(f"error: unknown option {arg}", file=sys.stderr)
                return 2
            elif directory is None:
                directory = arg
            else:
                print(f"error: unexpected argument {arg!r}", file=sys.stderr)
                return 2
            index += 1
    except (IndexError, ValueError):
        print(
            "usage: python -m repro --serve HOST:PORT [database-dir] "
            "[--queue-depth N] [--statement-timeout S] [--exec-workers N] "
            "[--durability off|commit|batch]",
            file=sys.stderr,
        )
        return 2
    host, _, port_text = (address or "").rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(
            f"error: --serve expects HOST:PORT, got {address!r}", file=sys.stderr
        )
        return 2
    exec_workers = options.pop("exec_workers", None)
    try:
        if directory is not None and durability is not None:
            # recovery runs here, before the listening socket opens: no
            # client ever observes a partially replayed database
            db = Database.open(directory, durability=durability)
            if exec_workers is not None:
                db.set_exec_workers(exec_workers)
            info = db.recovery_info or {}
            torn = (
                f", torn tail truncated ({info.get('truncate_reason')}, "
                f"{info.get('truncated_bytes')} bytes)"
                if info.get("truncate_reason")
                else ""
            )
            print(
                f"recovered {directory}: checkpoint lsn "
                f"{info.get('checkpoint_lsn', 0)}, "
                f"{info.get('replayed', 0)} wal record(s) replayed{torn}; "
                f"durability={durability}"
            )
        elif directory is not None:
            db = Database.load(directory)
            if exec_workers is not None:
                db.set_exec_workers(exec_workers)
        elif durability is not None:
            print(
                "error: --durability requires a database directory",
                file=sys.stderr,
            )
            return 2
        elif exec_workers is not None:
            db = Database(exec_workers=exec_workers)
        else:
            db = Database()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    serve(db, host or "127.0.0.1", port, **options)
    return 0


def main(argv: Optional[Iterable[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--serve" in argv:
        return serve_main(argv)
    shell = Shell()
    if argv:
        shell.db = Database.load(argv[0])
        shell.session = shell.db.connect()
    interactive = sys.stdin.isatty()
    if interactive:
        shell.write("repro SQL shell — REACHES / CHEAPEST SUM / UNNEST available")
        shell.write("end statements with ';', \\q quits, \\dt lists tables")
    while not shell.done:
        try:
            if interactive:
                line = input(shell.prompt)
            else:
                line = sys.stdin.readline()
                if not line:
                    break
                line = line.rstrip("\n")
        except (EOFError, KeyboardInterrupt):
            break
        shell.feed_line(line)
    return 0
