"""Blocking client for the database server (:mod:`repro.server`).

A tiny, dependency-free socket client speaking the length-prefixed JSON
protocol of :mod:`repro.server.protocol`.  Mirrors the in-process API
shapes — ``execute`` returns a :class:`ClientResult` with ``rows()`` /
``scalar()`` / ``to_dicts()``, ``prepare`` returns a re-executable
handle — and raises the *same typed exceptions* the engine would raise
in process: the server ships ``{code, message}`` pairs and
:func:`repro.errors.error_from_code` rebuilds them here, so
``except TransactionConflictError`` works identically over the wire.

::

    from repro.client import Client

    with Client("127.0.0.1", 4242) as client:
        client.execute("CREATE TABLE t (x INT)")
        client.execute("INSERT INTO t VALUES (?)", (1,))
        stmt = client.prepare("SELECT sum(x) FROM t WHERE x >= ?")
        print(stmt.execute((0,)).scalar())
        client.execute("BEGIN")       # the connection is one session:
        client.execute("ROLLBACK")    # transactions work unchanged

One :class:`Client` is one server-side session (one socket, one
transaction scope); it is *not* thread-safe — open one per thread, the
server multiplexes them onto the shared engine.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Iterator, Optional, Sequence

from .errors import (
    BackpressureError,
    ExecutionError,
    ProtocolError,
    error_from_code,
)
from .server.protocol import (
    HEADER,
    decode_rows,
    encode_frame,
    encode_value,
    frame_length,
)


class ClientResult:
    """One statement's outcome, shaped like :class:`repro.api.Result`."""

    def __init__(self, payload: dict):
        self._columns: list[str] = payload.get("columns") or []
        self._rows: Optional[list[tuple]] = (
            decode_rows(payload["rows"]) if payload.get("kind") == "rows" else None
        )
        self.rowcount: int = payload.get("rowcount", -1)

    @property
    def is_query(self) -> bool:
        return self._rows is not None

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def rows(self) -> list[tuple]:
        return list(self._rows) if self._rows is not None else []

    fetchall = rows

    def __len__(self) -> int:
        return len(self._rows) if self._rows is not None else 0

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows())

    def scalar(self) -> Any:
        rows = self.rows()
        if not rows:
            return None
        if len(rows) > 1 or len(rows[0]) != 1:
            raise ExecutionError("scalar() requires a single-row, single-column result")
        return rows[0][0]

    def to_dicts(self) -> list[dict]:
        return [dict(zip(self._columns, row)) for row in self.rows()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._rows is None:
            return f"<ClientResult rowcount={self.rowcount}>"
        return f"<ClientResult {len(self._rows)} rows: {', '.join(self._columns)}>"


class ClientPreparedStatement:
    """A server-side prepared statement, re-executable by handle."""

    __slots__ = ("sql", "handle", "_client")

    def __init__(self, client: "Client", sql: str, handle: int):
        self._client = client
        self.sql = sql
        self.handle = handle

    def execute(self, params: Sequence[Any] = ()) -> ClientResult:
        return ClientResult(
            self._client._request(
                {
                    "op": "execute_prepared",
                    "handle": self.handle,
                    "params": [encode_value(p) for p in params],
                }
            )
        )

    def close(self) -> None:
        self._client._request({"op": "close_prepared", "handle": self.handle})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClientPreparedStatement #{self.handle} {self.sql!r}>"


#: Statement prefixes safe to transparently re-send after an
#: *ambiguous* disconnect (the request may or may not have executed):
#: re-running a read observes the same or newer state, never a double
#: effect.  Everything else — DML, DDL, COPY, transaction control — is
#: surfaced to the caller instead of risking a duplicate apply.
_IDEMPOTENT_PREFIXES = ("SELECT", "WITH", "VALUES", "EXPLAIN")


def _first_keyword(sql: str) -> str:
    for token in sql.replace("(", " ").split():
        return token.upper()
    return ""


class Client:
    """A blocking connection to a :class:`repro.server.ReproServer`.

    ``timeout`` bounds every socket operation (connect and response
    wait), complementing the server-side statement timeout.

    ``retries`` enables bounded retry with exponential backoff and
    jitter for the two transient failure shapes a well-behaved client
    should absorb:

    * :class:`~repro.errors.BackpressureError` — the server shed the
      request before running it, so *any* statement is safe to re-send;
    * connection failure — on the initial connect, on reconnect, or a
      connection *lost before a response arrived*.  A lost connection
      is ambiguous (the statement may have committed server-side), so
      only idempotent read statements are re-sent, and never inside an
      open transaction (the server rolled the session's transaction
      back with the connection).

    ``backoff`` is the base delay in seconds; attempt *n* sleeps
    ``min(backoff_cap, backoff * 2**(n-1))`` scaled by 0.5–1.0 jitter
    so a thundering herd of retrying clients decorrelates.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._sock: Optional[socket.socket] = None
        self._user_closed = False
        self._in_transaction = False
        attempt = 0
        while True:
            try:
                self._connect()
                break
            except OSError:
                # surfaced as the raw OSError (ConnectionRefusedError
                # etc.) once the retry budget is spent
                attempt += 1
                if attempt > self.retries:
                    raise
                self._sleep(attempt)

    def _connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        # a fresh connection is a fresh server session: any transaction
        # the old session had open was rolled back with it
        self._in_transaction = False

    def _sleep(self, attempt: int) -> None:
        delay = min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))
        time.sleep(delay * (0.5 + random.random() / 2))

    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        *,
        timeout: Optional[float] = None,
    ) -> ClientResult:
        """Execute one statement; ``timeout`` (seconds) asks the server
        for a per-statement limit below its configured ceiling.  With
        ``retries`` configured, transient failures are retried per the
        class docstring."""
        request: dict = {
            "op": "execute",
            "sql": sql,
            "params": [encode_value(p) for p in params],
        }
        if timeout is not None:
            request["timeout"] = timeout
        attempt = 0
        while True:
            reconnect_failed = False
            try:
                if self._sock is None:
                    if self._user_closed:
                        raise ProtocolError("client is closed")
                    try:
                        self._connect()
                    except OSError as exc:
                        # the request was never sent: unambiguous, any
                        # statement may be retried
                        reconnect_failed = True
                        raise ProtocolError(
                            f"could not connect to server: {exc}"
                        ) from None
                payload = self._request(request)
            except BackpressureError:
                # shed before execution: unambiguous, always retryable
                attempt += 1
                if attempt > self.retries:
                    raise
                self._sleep(attempt)
                continue
            except ProtocolError:
                if self._user_closed:
                    raise
                retryable = reconnect_failed or (
                    _first_keyword(sql) in _IDEMPOTENT_PREFIXES
                    and not self._in_transaction
                )
                attempt += 1
                if not retryable or attempt > self.retries:
                    raise
                self._sleep(attempt)
                continue
            keyword = _first_keyword(sql)
            if keyword == "BEGIN":
                self._in_transaction = True
            elif keyword in ("COMMIT", "ROLLBACK"):
                self._in_transaction = False
            return ClientResult(payload)

    def prepare(self, sql: str) -> ClientPreparedStatement:
        payload = self._request({"op": "prepare", "sql": sql})
        return ClientPreparedStatement(self, sql, payload["handle"])

    def ping(self) -> dict:
        """Liveness probe; returns the server's stats snapshot."""
        return self._request({"op": "ping"}).get("stats", {})

    # ------------------------------------------------------------------
    def _request(self, request: dict) -> dict:
        sock = self._sock
        if sock is None:
            raise ProtocolError(
                "client is closed"
                if self._user_closed
                else "connection to server lost"
            )
        try:
            sock.sendall(encode_frame(request))
            header = self._read_exactly(sock, HEADER.size)
            payload_bytes = self._read_exactly(sock, frame_length(header))
        except (ConnectionError, socket.timeout, OSError) as exc:
            self._drop()
            raise ProtocolError(f"connection to server lost: {exc}") from None
        from .server.protocol import decode_payload

        payload = decode_payload(payload_bytes)
        if payload.get("ok"):
            return payload
        error = payload.get("error") or {}
        raise error_from_code(
            error.get("code", "SERVER_ERROR"), error.get("message", "unknown error")
        )

    @staticmethod
    def _read_exactly(sock: socket.socket, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise ConnectionResetError("server closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # ------------------------------------------------------------------
    def _drop(self) -> None:
        """Tear down the socket after a connection failure, *without*
        marking the client user-closed — ``execute`` may reconnect."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def close(self) -> None:
        self._user_closed = True
        self._drop()

    @property
    def closed(self) -> bool:
        return self._sock is None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<Client {state} {self.host}:{self.port}>"


__all__ = ["Client", "ClientPreparedStatement", "ClientResult"]
