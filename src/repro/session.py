"""Concurrent sessions and the prepared-statement plan cache.

A :class:`~repro.api.Database` is a shared, thread-safe engine instance;
a :class:`Session` is a lightweight cursor bound to it — the DB-API
shape (``db.connect()`` → session, ``session.execute(...)``).  Any
number of sessions, on any number of threads, may execute statements
against one database: the statement layer acquires per-table
reader/writer locks (see :mod:`repro.storage.locks`) so readers share
and writers exclude.

The :class:`PlanCache` is the engine's prepared-statement cache: a
thread-safe LRU keyed on SQL text holding fully *optimized physical*
plans.  On a hit, parse → bind → optimize → physical-plan is skipped
entirely.  Every entry records

* per referenced base table, the table's version counter and schema
  fingerprint at plan time, and
* per referenced base table, its statistics *marker* (per-table ANALYZE
  counter) at plan time — ANALYZE on a table transparently re-optimizes
  exactly the cached plans that read it.

A second index holds *normalized* entries: statement texts with their
constant literals replaced by parameters
(:mod:`repro.sql.normalize`), so textually different statements share
one plan.  An exact-text miss falls through to the normalized index;
hits there are counted separately (``normalized_hits``, surfaced by
``\\cache`` and :meth:`repro.api.Database.cache_stats`).

``Session.prepare`` returns a :class:`PreparedStatement` whose repeat
executions are plan-cache hits by construction.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Any, Callable, Iterable, Optional, Sequence

from .errors import ExecutionError, TransactionError
from .plan import exprs as bx
from .plan import logical as lp
from .plan import physical as pp
from .storage import TXN_VERSION_BASE, TableVersion, next_txn_version_id


# ---------------------------------------------------------------------------
# plan dependency analysis
# ---------------------------------------------------------------------------
def referenced_tables(plan) -> set[str]:
    """All base tables a (logical or physical) plan reads, including
    subquery plans inside expressions (needed both for cache
    invalidation and for computing a statement's read-lock set)."""
    tables: set[str] = set()
    _collect_tables(plan, tables)
    return tables


def _collect_tables(node: Any, out: set[str]) -> None:
    if isinstance(node, (lp.LScan, pp.PScan)):
        out.add(node.table)
    if isinstance(node, (lp.LogicalNode, pp.PhysicalNode)):
        for child in node.children:
            _collect_tables(child, out)
        # expressions hang off node-specific fields; walk them generically
        for field in dataclasses.fields(node):
            _collect_exprs(getattr(node, field.name), out)


def expr_tables(expr: bx.BoundExpr) -> set[str]:
    """Base tables referenced by subquery plans inside one expression
    (DELETE/UPDATE predicates are bound as bare expressions, not plans)."""
    tables: set[str] = set()
    _collect_exprs(expr, tables)
    return tables


def _collect_exprs(value: Any, out: set[str]) -> None:
    if isinstance(value, bx.BoundExpr):
        for sub in bx.walk(value):
            if isinstance(sub, (bx.BScalarSubquery, bx.BInSubquery, bx.BExists)):
                _collect_tables(sub.plan, out)
    elif isinstance(value, tuple):
        for item in value:
            _collect_exprs(item, out)
    elif dataclasses.is_dataclass(value) and not isinstance(
        value, (lp.LogicalNode, pp.PhysicalNode)
    ):
        for field in dataclasses.fields(value):
            _collect_exprs(getattr(value, field.name), out)


# ---------------------------------------------------------------------------
# the plan cache
# ---------------------------------------------------------------------------
class CachedPlan:
    """One cache entry: a prepared statement plus its table snapshot.

    ``kind`` is ``"query"`` (``plan`` is the optimized physical plan) or
    ``"insert"`` (``bound`` is the BoundInsert; ``plan`` holds the
    optimized physical source plan).  Each dep records
    ``(version | None, schema fingerprint, stats marker)``: a ``None``
    version marks a schema-only dependency — an INSERT's own target
    stays valid across writes to it (otherwise every execution would
    self-invalidate), but still dies with the table or a schema change.
    The stats marker pins the table's ANALYZE counter at plan time, so
    fresh statistics re-optimize exactly the plans that read the table.
    """

    __slots__ = ("sql", "plan", "deps", "kind", "bound")

    def __init__(
        self,
        sql: str,
        plan,
        deps: dict[str, tuple],
        kind: str = "query",
        bound: Any = None,
    ):
        self.sql = sql
        self.plan = plan
        self.deps = deps
        self.kind = kind
        self.bound = bound

    def tables(self) -> set[str]:
        return set(self.deps)


class PlanCache:
    """Thread-safe LRU of prepared (parsed + bound + optimized) plans."""

    def __init__(
        self,
        catalog,
        capacity: int = 128,
        stats_marker: Optional[Callable[[str], int]] = None,
    ):
        self._catalog = catalog
        self._stats_marker = stats_marker or (lambda name: 0)
        self.capacity = max(1, int(capacity))
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        #: normalized-text index: literals parameterized away
        self._normalized: "OrderedDict[str, CachedPlan]" = OrderedDict()
        #: normalized key -> first exact text seen for it; a normalized
        #: plan is only built once a *second*, different text shares the
        #: key (one-off statements never pay the extra planning pass)
        self._norm_candidates: "OrderedDict[str, str]" = OrderedDict()
        self._mutex = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.normalized_hits = 0

    # ------------------------------------------------------------------
    def get(self, sql: str, snapshot=None) -> Optional[CachedPlan]:
        """The valid entry for ``sql``, or None (counted as hit/miss).

        ``snapshot`` is the executing statement's (or transaction's)
        pinned snapshot: validation compares the entry's recorded deps
        against the *snapshot-visible* versions, not the live tables, so
        a transaction keeps hitting plans consistent with its own view.
        An entry invalid for one snapshot but still valid against the
        live catalog is left in place for other sessions.

        A statement that cannot be cached (DDL/DML) counts as a miss on
        every execution — the counters answer "how often did we skip the
        SQL front-end", which is what EXPLAIN surfaces.
        """
        with self._mutex:
            entry = self._entries.get(sql)
            if entry is not None and self._valid(entry, snapshot):
                self._entries.move_to_end(sql)
                self.hits += 1
                return entry
            if entry is not None and (
                snapshot is None or not self._valid(entry, None)
            ):  # stale for everyone, not just this snapshot
                del self._entries[sql]
                self.invalidations += 1
            self.misses += 1
            return None

    def note_normalized_candidate(self, key: str, sql: str) -> bool:
        """Record that ``sql`` maps onto normalized ``key``.  Returns
        True when a *different* text already mapped there — the signal
        that building a shared normalized plan will pay off."""
        with self._mutex:
            first = self._norm_candidates.get(key)
            if first is None:
                self._norm_candidates[key] = sql
                self._norm_candidates.move_to_end(key)
                while len(self._norm_candidates) > self.capacity:
                    self._norm_candidates.popitem(last=False)
                return False
            return first != sql

    def get_normalized(self, key: str, snapshot=None) -> Optional[CachedPlan]:
        """A valid normalized entry, or None.  Hits are counted in
        ``normalized_hits`` only (the regular counters already recorded
        the exact-text miss)."""
        with self._mutex:
            entry = self._normalized.get(key)
            if entry is not None and self._valid(entry, snapshot):
                self._normalized.move_to_end(key)
                self.normalized_hits += 1
                return entry
            if entry is not None and (
                snapshot is None or not self._valid(entry, None)
            ):
                del self._normalized[key]
                self.invalidations += 1
            return None

    def _valid(self, entry: CachedPlan, snapshot=None) -> bool:
        """Whether every dep still matches the visible table state —
        snapshot-visible when a snapshot is given, live otherwise."""
        for name, (version, fingerprint, marker) in entry.deps.items():
            if snapshot is not None:
                if not snapshot.has(name):
                    return False
                seen_version = snapshot.version_id(name)
                seen_fingerprint = snapshot.fingerprint(name)
                seen_marker = snapshot.stats_marker(name)
            else:
                if not self._catalog.has(name):
                    return False
                table = self._catalog.get(name)
                seen_version = table.version
                seen_fingerprint = table.schema.fingerprint()
                seen_marker = self._stats_marker(name)
            if version is not None and seen_version != version:
                return False
            if seen_fingerprint != fingerprint:
                return False
            if seen_marker != marker:
                return False  # ANALYZE since plan time: re-optimize
        return True

    def _deps_for(self, plan, snapshot=None) -> dict[str, tuple]:
        deps = {}
        for name in referenced_tables(plan):
            deps[name] = self._dep_for(name, snapshot)
        return deps

    def _dep_for(self, name: str, snapshot=None) -> tuple:
        if snapshot is not None:
            return (
                snapshot.version_id(name),
                snapshot.fingerprint(name),
                snapshot.stats_marker(name),
            )
        table = self._catalog.get(name)
        return (
            table.version,
            table.schema.fingerprint(),
            self._stats_marker(name),
        )

    def put(self, sql: str, plan, *, normalized: bool = False, snapshot=None) -> CachedPlan:
        entry = CachedPlan(sql, plan, self._deps_for(plan, snapshot))
        return self._store(entry, normalized=normalized)

    def put_insert(
        self, sql: str, bound, plan, *, normalized: bool = False, snapshot=None
    ) -> CachedPlan:
        """Cache a bound INSERT with its optimized source plan: the
        target is a schema-only dependency (the statement's own writes
        must not evict it), source tables are full version dependencies."""
        deps = self._deps_for(plan, snapshot)
        target = bound.table.lower()
        deps[target] = (
            None,
            snapshot.fingerprint(target)
            if snapshot is not None
            else self._catalog.get(target).schema.fingerprint(),
            snapshot.stats_marker(target)
            if snapshot is not None
            else self._stats_marker(target),
        )
        entry = CachedPlan(sql, plan, deps, kind="insert", bound=bound)
        return self._store(entry, normalized=normalized)

    def _store(self, entry: CachedPlan, *, normalized: bool = False) -> CachedPlan:
        if any(
            version is not None and version >= TXN_VERSION_BASE
            for version, _, _ in entry.deps.values()
        ):
            # the plan depends on a transaction-private (uncommitted)
            # table version: usable by the calling statement but never
            # shared — storing it would evict entries that are valid
            # for every other session
            return entry
        store = self._normalized if normalized else self._entries
        with self._mutex:
            store[entry.sql] = entry
            store.move_to_end(entry.sql)
            while len(store) > self.capacity:
                store.popitem(last=False)
                self.evictions += 1
        return entry

    # ------------------------------------------------------------------
    def invalidate_table(self, name: str) -> None:
        """Drop every entry referencing ``name``, version-sensitive or
        not (the DDL hook: the table itself went away or changed)."""
        key = name.lower()
        with self._mutex:
            for store in (self._entries, self._normalized):
                stale = [s for s, e in store.items() if key in e.deps]
                for sql in stale:
                    del store[sql]
                self.invalidations += len(stale)

    def invalidate_writes(self, name: str) -> None:
        """Drop entries whose *version-sensitive* deps include ``name``
        (the DML hook: schema-only deps survive plain writes)."""
        key = name.lower()
        with self._mutex:
            for store in (self._entries, self._normalized):
                stale = [
                    s
                    for s, e in store.items()
                    if key in e.deps and e.deps[key][0] is not None
                ]
                for sql in stale:
                    del store[sql]
                self.invalidations += len(stale)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()
            self._normalized.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def contains(self, sql: str) -> bool:
        """Presence probe that does not touch the hit/miss counters."""
        with self._mutex:
            return sql in self._entries

    def contains_normalized(self, key: str) -> bool:
        with self._mutex:
            return key in self._normalized

    def stats(self) -> dict[str, int]:
        with self._mutex:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "capacity": self.capacity,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "normalized_hits": self.normalized_hits,
                "normalized_entries": len(self._normalized),
            }


# ---------------------------------------------------------------------------
# transactions
# ---------------------------------------------------------------------------
class Transaction:
    """One session-level transaction: a pinned snapshot plus buffered
    table versions.

    Every statement of the transaction reads through :attr:`snapshot`
    (the whole-catalog view pinned at BEGIN), overlaid with
    :attr:`writes` — the table versions this transaction has produced
    but not yet published.  ROLLBACK simply discards the buffer; COMMIT
    (see ``Database.commit_transaction``) takes the written tables'
    write locks, verifies no other transaction committed to them since
    :attr:`base` was recorded (first-committer-wins write-write conflict
    detection) and installs the buffered versions atomically.
    """

    __slots__ = ("_database", "writes", "base", "snapshot", "active")

    def __init__(self, database):
        self._database = database
        #: table name -> buffered (uncommitted) TableVersion
        self.writes: dict[str, TableVersion] = {}
        #: table name -> committed version id the first write was based on
        self.base: dict[str, int] = {}
        #: whole-catalog snapshot pinned at BEGIN; ``writes`` is its overlay
        self.snapshot = database.pin_snapshot(overlay=self.writes)
        self.active = True

    def record_write(self, name: str, columns) -> TableVersion:
        """Buffer a new version of ``name`` built from ``columns``.

        The base version for conflict detection is recorded on the
        *first* write (later writes stack on our own buffered state).
        """
        key = name.lower()
        current = self.snapshot.table_version(key)
        if key not in self.base:
            self.base[key] = current.version_id
        version = TableVersion(
            key, current.schema, tuple(columns), next_txn_version_id()
        )
        self.writes[key] = version
        return version

    def finish(self) -> None:
        self.active = False


# ---------------------------------------------------------------------------
# sessions and prepared statements
# ---------------------------------------------------------------------------
class PreparedStatement:
    """A statement prepared once and executable many times.

    Preparation parses, binds, optimizes and caches the physical plan
    immediately (for queries), so every subsequent :meth:`execute` is a
    plan-cache hit until DDL/DML on a referenced table (or an ANALYZE)
    invalidates it — after which the next execution transparently
    re-prepares.
    """

    __slots__ = ("sql", "_database", "_session")

    def __init__(self, database, sql: str, session: Optional["Session"] = None):
        self.sql = sql
        self._database = database
        self._session = session
        database.prepare_plan(sql)

    def execute(self, params: Sequence[Any] = ()):
        return self._database.execute(self.sql, params, session=self._session)

    def explain(self) -> str:
        return self._database.explain(self.sql)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PreparedStatement {self.sql!r}>"


class Session:
    """A cursor over a shared :class:`~repro.api.Database`.

    Sessions are cheap; create one per thread (each is itself safe to
    use from one thread at a time, the database underneath is safe from
    any number of threads).  Usable as a context manager.

    A session is also the scope of explicit transactions: ``BEGIN`` (or
    :meth:`begin`) pins a snapshot for all subsequent statements and
    buffers their writes until :meth:`commit` publishes them or
    :meth:`rollback` discards them.  Outside an explicit transaction,
    every statement autocommits against its own snapshot.  Closing a
    session rolls back any open transaction.
    """

    def __init__(self, database):
        self._database = database
        self._txn: Optional[Transaction] = None
        self.closed = False

    @property
    def database(self):
        return self._database

    # ------------------------------------------------------------------
    # transaction scope
    # ------------------------------------------------------------------
    @property
    def transaction(self) -> Optional[Transaction]:
        """The active :class:`Transaction`, or None (autocommit)."""
        return self._txn

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def begin(self) -> None:
        """Open a transaction (``BEGIN``): pin a snapshot, buffer writes."""
        self._check_open()
        if self._txn is not None:
            raise TransactionError("a transaction is already in progress")
        self._txn = Transaction(self._database)

    def commit(self) -> None:
        """Publish the transaction's buffered writes (``COMMIT``).

        Raises :class:`~repro.errors.TransactionConflictError` when
        another transaction committed to one of the written tables
        first; the transaction is rolled back either way.
        """
        self._check_open()
        txn = self._require_transaction()
        try:
            self._database.commit_transaction(txn)
        finally:
            self._txn = None

    def rollback(self) -> None:
        """Discard the transaction's buffered writes (``ROLLBACK``),
        leaving every table exactly as it was before BEGIN."""
        self._check_open()
        txn = self._require_transaction()
        txn.finish()
        self._txn = None

    def _require_transaction(self) -> Transaction:
        if self._txn is None:
            raise TransactionError("no transaction is in progress")
        return self._txn

    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()):
        self._check_open()
        return self._database.execute(sql, params, session=self)

    def executemany(self, sql: str, param_seq: Iterable[Sequence[Any]]) -> int:
        """Execute one statement for each parameter tuple; returns the
        summed rowcount.  SELECT and INSERT plans are prepared once and
        served from the plan cache on every tuple (the classic DB-API
        bulk-insert shape); UPDATE/DELETE re-bind per execution."""
        self._check_open()
        prepared = self.prepare(sql)
        total = 0
        for params in param_seq:
            result = prepared.execute(params)
            if result.rowcount > 0:
                total += result.rowcount
        return total

    def executescript(self, sql: str) -> list:
        self._check_open()
        return self._database.executescript(sql, session=self)

    def prepare(self, sql: str) -> PreparedStatement:
        self._check_open()
        return PreparedStatement(self._database, sql, session=self)

    def appender(self, table: str):
        """A bulk-append channel bound to this session: batches buffer
        into the session's open transaction (or autocommit without
        one).  See :class:`repro.api.Appender`."""
        self._check_open()
        return self._database.appender(table, session=self)

    def explain(self, sql: str) -> str:
        self._check_open()
        return self._database.explain(sql)

    def profile(self, sql: str, params: Sequence[Any] = ()):
        self._check_open()
        return self._database.profile(sql, params, session=self)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._txn is not None:  # implicit rollback, as DB-API expects
            self._txn.finish()
            self._txn = None
        self.closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise ExecutionError("session is closed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        if self._txn is not None:
            state += " in-transaction"
        return f"<Session {state} @ {self._database!r}>"


__all__ = [
    "CachedPlan",
    "PlanCache",
    "PreparedStatement",
    "Session",
    "Transaction",
    "expr_tables",
    "referenced_tables",
]
