"""Fault injection: named crashpoints on the durability paths.

The WAL append/fsync paths (:mod:`repro.storage.wal`) and the
checkpoint/rename paths (:mod:`repro.persist`) call
``injector.fire("<point>")`` at the instants where a crash is
interesting.  With no injector attached those calls don't exist
(``Database.faults`` is ``None`` unless configured), so production
code pays nothing.

An injector is configured per database — ``Database(faults=...)`` /
``Database.open(..., faults=...)`` — or process-wide through the
``REPRO_CRASHPOINT`` environment variable, which is how the
crash-torture suite arms its subprocess workloads.  The spec grammar::

    <point>[:<action>[:<count>]][,<more specs>]

    wal.append.after                  # hard-exit on the 1st hit
    wal.append.write:torn             # write half the record, then exit
    wal.sync.before:exit:5            # hard-exit on the 5th hit
    save.swap.mid:error               # raise FaultInjectedError instead

Actions:

* ``exit`` (default) — ``os._exit(FAULT_EXIT_CODE)``: a hard kill, no
  atexit handlers, no flushes — the closest a test can get to
  ``kill -9`` from inside the process.
* ``torn`` — at points that pass the bytes being written, write a
  prefix of them (a torn/short write) and then hard-exit; at other
  points it degrades to a plain exit.
* ``error`` — raise :class:`~repro.errors.FaultInjectedError`, for
  in-process tests that want the failure path without losing the
  process.

``count`` arms the point on its Nth hit (default 1) and the rule fires
exactly once, so a recovered run re-armed with the same spec can crash
*again* at a later occurrence of the same point.

Crashpoints currently wired in (grep for ``_fire(`` / ``.fire(``):

==========================  ================================================
``wal.append.before``       before the record bytes are written
``wal.append.write``        the record write itself (supports ``torn``)
``wal.append.after``        record written+flushed, version not yet installed
``wal.sync.before``         before the commit fsync
``wal.sync.after``          after the fsync, before the commit is acked
``save.image.before``       checkpoint image about to be written to staging
``save.swap.before``        image staged, atomic swap not yet started
``save.swap.mid``           old image renamed aside, new one not yet in place
``save.swap.after``         new image in place, old one not yet removed
==========================  ================================================
"""

from __future__ import annotations

import os
import threading
from typing import Optional

from .errors import FaultInjectedError, WalError

#: Subprocess exit status used by ``exit``/``torn`` actions, so the
#: torture harness can tell "killed at the armed crashpoint" from a
#: workload bug (any other non-zero status fails the trial).
FAULT_EXIT_CODE = 86

_ACTIONS = ("exit", "torn", "error")

#: Environment variable holding a spec; inherited by subprocesses,
#: which is how the crash-torture suite arms its workload children.
ENV_VAR = "REPRO_CRASHPOINT"


class FaultInjector:
    """Parsed crashpoint rules plus per-point hit counters.

    Thread-safe: committers on different threads may hit the same
    point concurrently; the counter and the one-shot trigger are
    updated under a lock (the action itself — exiting or raising —
    runs outside it).
    """

    def __init__(self, spec: "str | dict | None" = None):
        self._mutex = threading.Lock()
        self._rules: dict[str, dict] = {}
        self.hits: dict[str, int] = {}
        if isinstance(spec, dict):
            for point, action in spec.items():
                self._add_rule(f"{point}:{action}" if action else point)
        elif spec:
            for part in str(spec).split(","):
                part = part.strip()
                if part:
                    self._add_rule(part)

    def _add_rule(self, text: str) -> None:
        fields = text.split(":")
        if not 1 <= len(fields) <= 3 or not fields[0]:
            raise WalError(f"bad crashpoint spec: {text!r}")
        point = fields[0]
        action = fields[1] if len(fields) > 1 and fields[1] else "exit"
        if action not in _ACTIONS:
            raise WalError(
                f"bad crashpoint action {action!r} in {text!r} "
                f"(expected one of {', '.join(_ACTIONS)})"
            )
        try:
            count = int(fields[2]) if len(fields) > 2 else 1
        except ValueError:
            raise WalError(f"bad crashpoint count in {text!r}") from None
        if count < 1:
            raise WalError(f"bad crashpoint count in {text!r}")
        self._rules[point] = {"action": action, "count": count, "fired": False}

    @classmethod
    def coerce(cls, value) -> "Optional[FaultInjector]":
        """``Database(faults=...)`` accepts a spec string, a
        ``{point: action}`` dict, an injector, or None — in which case
        the ``REPRO_CRASHPOINT`` environment variable is consulted so
        subprocess workloads inherit their kill schedule."""
        if value is None:
            env = os.environ.get(ENV_VAR)
            return cls(env) if env else None
        if isinstance(value, FaultInjector):
            return value
        return cls(value)

    def fire(self, point: str, data: "bytes | None" = None, handle=None) -> None:
        """Hit ``point``; trigger its rule's action if this is the
        armed occurrence.  ``data``/``handle`` let write-path points
        support the ``torn`` action (a prefix of ``data`` is written
        to ``handle`` before the hard exit)."""
        rule = self._rules.get(point)
        if rule is None:
            return
        with self._mutex:
            self.hits[point] = self.hits.get(point, 0) + 1
            if rule["fired"] or self.hits[point] != rule["count"]:
                return
            rule["fired"] = True
            action = rule["action"]
        if action == "error":
            raise FaultInjectedError(f"injected fault at crashpoint {point!r}")
        if action == "torn" and data is not None and handle is not None:
            handle.write(data[: max(1, len(data) // 2)])
            handle.flush()
        os._exit(FAULT_EXIT_CODE)


__all__ = ["ENV_VAR", "FAULT_EXIT_CODE", "FaultInjector"]
