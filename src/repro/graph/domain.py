"""Vertex domain encoding.

The paper's code-generation stage translates "all the values from X, Y, S
and D ... into integers from the domain H = {0, ..., |V|-1}" (Section
3.1).  :class:`VertexDomain` performs exactly that dictionary encoding:
it derives the vertex set ``V = S ∪ D`` from the edge endpoints and maps
arbitrary key values (integers or strings) onto dense ids.

Values that are *not* vertices encode to :data:`NOT_A_VERTEX`; the caller
uses this for the "initial filtering on the values that are not vertices"
the paper describes (joining X and Y with V).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

NOT_A_VERTEX = -1


class VertexDomain:
    """Dense dictionary encoding of vertex keys.

    Parameters
    ----------
    src, dst:
        The raw source/destination key arrays of the edge table (numpy
        arrays of identical dtype; integers or objects/strings).
    """

    __slots__ = ("values", "_lookup", "_is_integer", "_sorted_ok")

    def __init__(self, src: np.ndarray, dst: np.ndarray):
        keys = np.concatenate([src, dst]) if len(src) or len(dst) else src
        # np.unique both dedups and sorts, giving a canonical, reproducible
        # id assignment (id = rank of the key).
        self.values = np.unique(keys)
        self._is_integer = self.values.dtype.kind in "iu"
        if self._is_integer:
            self._lookup = None  # use np.searchsorted on the sorted array
        else:
            self._lookup = {key: i for i, key in enumerate(self.values)}
        self._sorted_ok = True

    @classmethod
    def from_values(cls, values: np.ndarray) -> "VertexDomain":
        """Rebuild a domain from its (sorted, unique) ``values`` array —
        the persistence path: a saved graph index stores the dictionary
        instead of re-deriving it from the edge endpoints on load."""
        domain = cls.__new__(cls)
        domain.values = values
        domain._is_integer = values.dtype.kind in "iu"
        domain._lookup = (
            None
            if domain._is_integer
            else {key: i for i, key in enumerate(values)}
        )
        domain._sorted_ok = True
        return domain

    def __len__(self) -> int:
        return len(self.values)

    @property
    def num_vertices(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------------
    def encode(self, keys: np.ndarray) -> np.ndarray:
        """Map raw keys to dense ids; unknown keys map to NOT_A_VERTEX."""
        if len(self.values) == 0:
            return np.full(len(keys), NOT_A_VERTEX, dtype=np.int64)
        if self._is_integer:
            keys = np.asarray(keys)
            positions = np.searchsorted(self.values, keys)
            positions = np.clip(positions, 0, len(self.values) - 1)
            ids = positions.astype(np.int64)
            misses = self.values[positions] != keys
            ids[misses] = NOT_A_VERTEX
            return ids
        lookup = self._lookup
        out = np.fromiter(
            (lookup.get(k, NOT_A_VERTEX) for k in keys),
            dtype=np.int64,
            count=len(keys),
        )
        return out

    def encode_edges(self, src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Encode both endpoint arrays (every key is a vertex by construction)."""
        return self.encode(src), self.encode(dst)

    def decode(self, ids: Sequence[int]) -> list[Any]:
        """Map dense ids back to the original key values."""
        return [self.values[i] for i in ids]
