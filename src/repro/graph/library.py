"""The graph runtime library — the Python analogue of the paper's external
C++ library (Section 3.2).

The invocation contract follows the paper:

1. inputs are the columns ``S`` and ``D`` denoting the edges;
2. the source ``X`` and destination ``Y`` vertices to filter;
3. optionally, additional weight columns for the shortest-path functions.

The library dictionary-encodes every key into the dense domain
``H = {0..|V|-1}`` (:class:`~repro.graph.domain.VertexDomain`), always
builds a CSR representation (:func:`~repro.graph.csr.build_csr`), and
returns "the sequence of row ids t such that t[S] is connected to t[D]
and the requested shortest paths" — here a boolean connectivity mask per
input pair, a cost array, and per-pair paths as arrays of original
edge-table row ids.

Pairs are grouped by source so that all pairs sharing a source reuse one
traversal; each traversal terminates early once its targets are settled.
Reachability-only queries still run the BFS and discard the paths,
exactly like the prototype ("the library still performs a BFS ...
discarding the computed shortest paths").

Batches large enough to matter are partitioned across a thread pool:
source groups are dealt round-robin onto ``workers`` shards, and each
shard traverses independently (the CSR is immutable and every shard
writes disjoint slots of the output arrays).  Small batches — below
:data:`PARALLEL_MIN_PAIRS` pairs or with fewer groups than workers —
always run serially, so per-pair latency never pays thread overhead.
Worker count resolution: an explicit argument wins, then the
``REPRO_PATH_WORKERS`` environment variable, then the CPU count.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..errors import GraphRuntimeError
from .bfs import bfs, reconstruct_path
from .csr import CSRGraph, build_csr
from .dijkstra import dijkstra
from .domain import NOT_A_VERTEX, VertexDomain

from ..envutil import env_int as _env_int

#: Below this many valid pairs a batch is always solved serially.
PARALLEL_MIN_PAIRS = _env_int("REPRO_PARALLEL_MIN_PAIRS", 32)


def resolve_workers(workers: int | str | None) -> int:
    """Effective worker count: explicit > ``REPRO_PATH_WORKERS`` > CPUs."""
    if workers is None or workers == "auto":
        env = _env_int("REPRO_PATH_WORKERS", None)
        if env is not None:
            return max(1, env)
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux fallback
            return os.cpu_count() or 1
    try:
        return max(1, int(workers))
    except ValueError:
        raise GraphRuntimeError(
            f"workers must be a positive integer or 'auto', got {workers!r}"
        ) from None


@dataclass
class ShortestPathResult:
    """Outcome of one many-to-many shortest-path invocation.

    ``connected`` has one entry per input pair.  ``costs`` is aligned with
    the *connected* pairs only when compacted via ``costs[connected]`` —
    unreached pairs hold -1.  ``paths`` (optional) holds, per pair, an
    int64 array of edge-table row ids, or None when not connected.
    """

    connected: np.ndarray
    costs: np.ndarray | None
    paths: list[np.ndarray | None] | None


class GraphLibrary:
    """One prepared graph: domain encoding + CSR, ready for many queries.

    This object is what the paper's future-work "graph index" would
    persist (Section 6); `repro.exec` caches instances keyed on the edge
    table fingerprint to implement exactly that.
    """

    def __init__(
        self,
        src_keys: np.ndarray,
        dst_keys: np.ndarray,
        weights: np.ndarray | None = None,
    ):
        self.domain = VertexDomain(src_keys, dst_keys)
        src_ids, dst_ids = self.domain.encode_edges(src_keys, dst_keys)
        self.csr: CSRGraph = build_csr(
            src_ids, dst_ids, self.domain.num_vertices, weights
        )
        self.weighted = weights is not None
        self._reverse_csr: CSRGraph | None = None

    @classmethod
    def from_parts(
        cls,
        domain_values: np.ndarray,
        indptr: np.ndarray,
        dst: np.ndarray,
        src: np.ndarray,
        edge_rows: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> "GraphLibrary":
        """Reassemble a prepared library from its persisted arrays —
        the ``save()``/``load()`` path that skips both the domain
        ``np.unique`` and the CSR build sort entirely."""
        library = cls.__new__(cls)
        library.domain = VertexDomain.from_values(domain_values)
        library.csr = CSRGraph(
            num_vertices=len(domain_values),
            indptr=np.asarray(indptr, dtype=np.int64),
            dst=np.asarray(dst, dtype=np.int64),
            src=np.asarray(src, dtype=np.int64),
            weights=weights,
            edge_rows=np.asarray(edge_rows, dtype=np.int64),
        )
        library.weighted = weights is not None
        library._reverse_csr = None
        return library

    @property
    def reverse(self) -> CSRGraph:
        """The transposed CSR, built lazily and cached (for bidirectional
        search; a prepared graph index pays this cost once)."""
        if self._reverse_csr is None:
            from .bidirectional import reverse_csr

            self._reverse_csr = reverse_csr(self.csr)
        return self._reverse_csr

    # ------------------------------------------------------------------
    def encode_endpoints(
        self, sources: np.ndarray, dests: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode raw X/Y values; the validity mask marks pairs whose both
        endpoints are vertices (the paper's join-with-V filtering)."""
        src_ids = self.domain.encode(sources)
        dst_ids = self.domain.encode(dests)
        valid = (src_ids != NOT_A_VERTEX) & (dst_ids != NOT_A_VERTEX)
        return src_ids, dst_ids, valid

    def solve(
        self,
        sources: np.ndarray,
        dests: np.ndarray,
        *,
        want_cost: bool = False,
        want_path: bool = False,
        queue: str = "auto",
        workers: int | str | None = 1,
    ) -> ShortestPathResult:
        """Evaluate reachability / shortest paths for aligned raw pairs."""
        if len(sources) != len(dests):
            raise GraphRuntimeError("source and destination vectors differ in length")
        src_ids, dst_ids, _ = self.encode_endpoints(sources, dests)
        return self.solve_encoded(
            src_ids,
            dst_ids,
            want_cost=want_cost,
            want_path=want_path,
            queue=queue,
            workers=workers,
        )

    def solve_encoded(
        self,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        *,
        want_cost: bool = False,
        want_path: bool = False,
        queue: str = "auto",
        algorithm: str = "auto",
        workers: int | str | None = 1,
    ) -> ShortestPathResult:
        """Like :meth:`solve` but over pre-encoded dense vertex ids.

        Entries equal to :data:`~repro.graph.domain.NOT_A_VERTEX` are
        treated as unconnected (the join-with-V filtering already failed).

        ``algorithm='bidirectional'`` uses two-frontier BFS per pair for
        unweighted queries (the paper's future-work BFS improvement); it
        needs the reverse CSR, so it pays off with a prepared/indexed
        graph queried one pair at a time.

        ``workers`` partitions the source groups of a large batch across
        a thread pool (``"auto"``/None resolves via
        :func:`resolve_workers`); results are identical to the serial
        path regardless of worker count.
        """
        if len(src_ids) != len(dst_ids):
            raise GraphRuntimeError("source and destination vectors differ in length")
        if algorithm not in ("auto", "bfs", "bidirectional"):
            raise GraphRuntimeError(f"unknown algorithm {algorithm!r}")
        if algorithm == "bidirectional":
            if self.weighted:
                raise GraphRuntimeError(
                    "bidirectional search supports unweighted queries only"
                )
            return self._solve_bidirectional(src_ids, dst_ids, want_cost, want_path)
        n_pairs = len(src_ids)
        valid = (src_ids != NOT_A_VERTEX) & (dst_ids != NOT_A_VERTEX)
        connected = np.zeros(n_pairs, dtype=np.bool_)
        cost_dtype = (
            np.float64
            if (self.weighted and not self.csr.integral_weights)
            else np.int64
        )
        costs = np.full(n_pairs, -1, dtype=cost_dtype) if (want_cost or want_path) else None
        paths: list[np.ndarray | None] | None = [None] * n_pairs if want_path else None
        # group pairs by encoded source: one traversal per distinct source
        valid_positions = np.flatnonzero(valid)
        if len(valid_positions) == 0:
            return ShortestPathResult(connected, costs, paths)
        order = valid_positions[np.argsort(src_ids[valid_positions], kind="stable")]
        boundaries = (
            [0]
            + list(np.flatnonzero(np.diff(src_ids[order]) != 0) + 1)
            + [len(order)]
        )
        groups = [
            order[start:end] for start, end in zip(boundaries[:-1], boundaries[1:])
        ]
        n_workers = min(resolve_workers(workers), len(groups))
        if n_workers <= 1 or len(valid_positions) < PARALLEL_MIN_PAIRS:
            self._solve_groups(groups, src_ids, dst_ids, queue, connected, costs, paths)
        else:
            # deal groups round-robin so one hub source cannot load a
            # single shard with all the heavy traversals
            shards = [groups[i::n_workers] for i in range(n_workers)]
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                futures = [
                    pool.submit(
                        self._solve_groups,
                        shard,
                        src_ids,
                        dst_ids,
                        queue,
                        connected,
                        costs,
                        paths,
                    )
                    for shard in shards
                ]
                for future in futures:
                    future.result()  # re-raise worker exceptions
        return ShortestPathResult(connected, costs, paths)

    # ------------------------------------------------------------------
    def _solve_groups(
        self,
        groups: list[np.ndarray],
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        queue: str,
        connected: np.ndarray,
        costs: np.ndarray | None,
        paths: list[np.ndarray | None] | None,
    ) -> None:
        """Traverse each source group and scatter into the (shared)
        output arrays.  Groups never overlap, so concurrent shards write
        disjoint slots."""
        for members in groups:
            targets = dst_ids[members]
            result = self._traverse(int(src_ids[members[0]]), targets, queue)
            for position in members:
                target = int(dst_ids[position])
                value = result.cost(target)
                if value is None:
                    continue
                connected[position] = True
                if costs is not None:
                    costs[position] = value
                if paths is not None:
                    paths[position] = reconstruct_path(self.csr, result, target)

    # ------------------------------------------------------------------
    def _traverse(self, source: int, targets: np.ndarray, queue: str):
        if self.weighted:
            return dijkstra(self.csr, source, targets, queue=queue)
        return bfs(self.csr, source, targets)

    def _solve_bidirectional(
        self,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        want_cost: bool,
        want_path: bool,
    ) -> ShortestPathResult:
        from .bidirectional import bidirectional_distance

        n_pairs = len(src_ids)
        connected = np.zeros(n_pairs, dtype=np.bool_)
        costs = np.full(n_pairs, -1, dtype=np.int64) if (want_cost or want_path) else None
        paths: list[np.ndarray | None] | None = [None] * n_pairs if want_path else None
        backward = self.reverse
        for position in range(n_pairs):
            source, dest = int(src_ids[position]), int(dst_ids[position])
            if source == NOT_A_VERTEX or dest == NOT_A_VERTEX:
                continue
            distance, path = bidirectional_distance(self.csr, backward, source, dest)
            if distance is None:
                continue
            connected[position] = True
            if costs is not None:
                costs[position] = distance
            if paths is not None:
                paths[position] = path
        return ShortestPathResult(connected, costs, paths)
