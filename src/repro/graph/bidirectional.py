"""Bidirectional BFS for single-pair unweighted queries.

The paper's evaluation notes its BFS "is still largely unoptimized" and
that the authors "expect in the future to significantly improve the BFS
implementation" (Section 4).  This module is that improvement for the
single-pair case: two level-synchronous frontiers, one from the source
over the forward CSR and one from the destination over a lazily built
reverse CSR, expanding the smaller frontier first.  On small-world
graphs (LDBC friendships) this explores O(b^(d/2)) instead of O(b^d)
vertices.

The search returns the hop distance plus the meeting vertex and both
predecessor-edge arrays, from which the full path (as original edge-table
row ids, like :func:`repro.graph.bfs.reconstruct_path`) is rebuilt.
"""

from __future__ import annotations

import numpy as np

from .bfs import UNREACHED
from .csr import CSRGraph, build_csr, expand_frontier


def reverse_csr(graph: CSRGraph) -> CSRGraph:
    """The transposed graph; ``edge_rows`` still index the original edges."""
    reversed_graph = build_csr(graph.dst, graph.src, graph.num_vertices)
    # build_csr's edge_rows point into the (dst, src) arrays we passed,
    # which are CSR-slot ordered; map back to original edge-table rows
    remapped = graph.edge_rows[reversed_graph.edge_rows]
    return CSRGraph(
        num_vertices=reversed_graph.num_vertices,
        indptr=reversed_graph.indptr,
        dst=reversed_graph.dst,
        src=reversed_graph.src,
        weights=None,
        edge_rows=remapped,
    )


def bidirectional_distance(
    forward: CSRGraph, backward: CSRGraph, source: int, target: int
) -> tuple[int | None, np.ndarray | None]:
    """(hop distance, path as original edge row ids) or (None, None).

    ``backward`` must be :func:`reverse_csr` of ``forward``.
    """
    if source == target:
        return 0, np.empty(0, dtype=np.int64)
    n = forward.num_vertices
    dist_f = np.full(n, UNREACHED, dtype=np.int64)
    dist_b = np.full(n, UNREACHED, dtype=np.int64)
    pred_f = np.full(n, UNREACHED, dtype=np.int64)  # forward CSR slots
    pred_b = np.full(n, UNREACHED, dtype=np.int64)  # backward CSR slots
    dist_f[source] = 0
    dist_b[target] = 0
    frontier_f = np.array([source], dtype=np.int64)
    frontier_b = np.array([target], dtype=np.int64)
    depth_f = depth_b = 0  # deepest fully settled BFS level per side
    best = None  # (total distance, meeting vertex)

    while len(frontier_f) and len(frontier_b):
        # any undiscovered s-t path is longer than depth_f + depth_b + 1;
        # once the best meeting beats that bound it is provably minimal
        if best is not None and best[0] <= depth_f + depth_b + 1:
            break
        # expand the smaller frontier first (classic balancing heuristic)
        if len(frontier_f) <= len(frontier_b):
            frontier_f, meet = _step(forward, frontier_f, dist_f, pred_f, dist_b)
            depth_f += 1
        else:
            frontier_b, meet = _step(backward, frontier_b, dist_b, pred_b, dist_f)
            depth_b += 1
        if meet is not None:
            total = int(dist_f[meet] + dist_b[meet])
            if best is None or total < best[0]:
                best = (total, meet)
    if best is None:
        return None, None
    return _stitch(forward, backward, pred_f, pred_b, dist_f, dist_b, best[1])


def _step(graph, frontier, dist, pred, other_dist):
    """One level expansion; returns (new frontier, best meeting vertex)."""
    level = int(dist[frontier[0]]) + 1
    slots = expand_frontier(graph.indptr, frontier)
    if len(slots) == 0:
        return np.empty(0, dtype=np.int64), None
    neighbors = graph.dst[slots]
    fresh = dist[neighbors] == UNREACHED
    neighbors = neighbors[fresh]
    slots = slots[fresh]
    if len(neighbors) == 0:
        return np.empty(0, dtype=np.int64), None
    unique_neighbors, first_pos = np.unique(neighbors, return_index=True)
    dist[unique_neighbors] = level
    pred[unique_neighbors] = slots[first_pos]
    touched = unique_neighbors[other_dist[unique_neighbors] != UNREACHED]
    if len(touched):
        # pick the meeting vertex minimizing the total distance
        totals = dist[touched] + other_dist[touched]
        best = touched[np.argmin(totals)]
        return unique_neighbors, int(best)
    return unique_neighbors, None


def _stitch(forward, backward, pred_f, pred_b, dist_f, dist_b, meet):
    """Join the two half-paths at the meeting vertex."""
    rows_front: list[int] = []
    vertex = meet
    while pred_f[vertex] != UNREACHED:
        slot = pred_f[vertex]
        rows_front.append(int(forward.edge_rows[slot]))
        vertex = int(forward.src[slot])
    rows_front.reverse()
    rows_back: list[int] = []
    vertex = meet
    while pred_b[vertex] != UNREACHED:
        slot = pred_b[vertex]
        rows_back.append(int(backward.edge_rows[slot]))
        vertex = int(backward.src[slot])
    distance = int(dist_f[meet] + dist_b[meet])
    path = np.asarray(rows_front + rows_back, dtype=np.int64)
    return distance, path
