"""Incremental graph-index maintenance: CSR delta overlays.

Before this module, any committed DML on an edge table dropped the
cached :class:`~repro.graph.library.GraphLibrary` and the next path
query rebuilt domain + CSR from scratch (``np.unique`` over every
endpoint plus a full stable sort).  For a live, continuously-updated
graph that is fatal: a single appended edge costs a full rebuild.

:class:`GraphOverlayState` instead tracks the *delta* between the base
CSR's build version and the table's current committed version, keyed to
the ``TableVersion`` chain through the table write listeners:

* **appends** land in an append-side adjacency overlay — encoded edge
  arrays whose endpoints extend the base vertex domain on demand
  (:class:`OverlayDomain`);
* **deletes** become tombstones on base CSR slots plus a row remap, so
  the ``edge_rows`` contract (each CSR slot names the edge's position in
  the *current* filtered edge batch — what weighted queries and nested
  path reconstruction rely on) stays intact across row compaction;
* **updates** that do not touch the endpoint columns are free — the
  topology is unchanged and weights re-attach per statement anyway.

Queries are served a **merged** library: base CSR minus tombstones plus
the overlay, stitched in ``O(E + k log k)`` (``k`` = overlay edges)
without re-sorting the base — surviving base edges keep their relative
order and overlay edges append per vertex, which is exactly the order a
full rebuild's stable sort would produce.  The merged CSR is a plain
:class:`~repro.graph.csr.CSRGraph`, so BFS, Dijkstra and bidirectional
search run on it unchanged.

Once the delta crosses a size threshold a **compaction** folds it into a
fresh canonically-built library (sorted domain, zero tombstones) —
eagerly on lookup, or in a background thread owned by the ``Database``.
``Database(graph_overlay=False)`` preserves the historical
invalidate-and-rebuild path wholesale as the correctness oracle.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Sequence

import numpy as np

from .csr import CSRGraph
from .domain import NOT_A_VERTEX
from .library import GraphLibrary


class OverlayDomain:
    """A base :class:`~repro.graph.domain.VertexDomain` extended with
    append-side vertices and delete-side liveness.

    Extra vertices (keys first seen in appended edges) take dense ids
    past ``base.num_vertices`` in first-seen order.  ``alive`` marks ids
    that still participate in at least one live edge: a fresh rebuild
    derives its domain from the current edge set, so a vertex whose
    every edge was deleted must encode to :data:`NOT_A_VERTEX` here too
    (otherwise ``X REACHES X`` would claim a cost-0 path through a
    vertex the oracle no longer knows).

    Instances snapshot their inputs — later writes to the overlay state
    never mutate a domain already handed to a query.
    """

    __slots__ = ("base", "extra_values", "_extra_lookup", "_alive")

    def __init__(
        self,
        base_domain,
        extra_values: Sequence[Any],
        ref_counts: np.ndarray,
    ):
        self.base = base_domain
        self.extra_values = list(extra_values)
        offset = base_domain.num_vertices
        self._extra_lookup = {
            key: offset + i for i, key in enumerate(self.extra_values)
        }
        self._alive = ref_counts > 0  # fresh bool array: a snapshot copy

    def __len__(self) -> int:
        return self.num_vertices

    @property
    def num_vertices(self) -> int:
        return self.base.num_vertices + len(self.extra_values)

    @property
    def values(self) -> np.ndarray:
        extras = np.empty(len(self.extra_values), dtype=object)
        for i, key in enumerate(self.extra_values):
            extras[i] = key
        return np.concatenate([self.base.values.astype(object), extras])

    def encode(self, keys: np.ndarray) -> np.ndarray:
        ids = self.base.encode(keys)
        if self._extra_lookup:
            misses = np.flatnonzero(ids == NOT_A_VERTEX)
            if len(misses):
                lookup = self._extra_lookup
                for i in misses:
                    ids[i] = lookup.get(keys[i], NOT_A_VERTEX)
        hits = ids != NOT_A_VERTEX
        if hits.any():
            found = ids[hits]
            dead = ~self._alive[found]
            if dead.any():
                found[dead] = NOT_A_VERTEX
                ids[hits] = found
        return ids

    def encode_edges(
        self, src: np.ndarray, dst: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.encode(src), self.encode(dst)

    def decode(self, ids: Sequence[int]) -> list[Any]:
        offset = self.base.num_vertices
        return [
            self.extra_values[i - offset] if i >= offset else self.base.values[i]
            for i in ids
        ]


class GraphOverlayState:
    """The mutable delta of one graph index between its base build and
    the table's current committed version.

    All mutation and merged-library construction happen under
    ``self.lock`` (per-index: two indices never contend).  The base
    library, every served merged library, and every
    :class:`OverlayDomain` are immutable snapshots — in-flight queries
    keep consistent structures while later writes accumulate here.
    """

    __slots__ = (
        "lock",
        "base",
        "base_version",
        "applied_version",
        "valid_mask",
        "filtered_count",
        "base_rows",
        "live_base",
        "extra_values",
        "extra_lookup",
        "ref_counts",
        "add_src",
        "add_dst",
        "add_rows",
        "overlay_edges",
        "tombstones",
        "merged",
    )

    def __init__(
        self,
        base_library: GraphLibrary,
        version_id: int,
        valid_mask: np.ndarray,
    ):
        self.lock = threading.Lock()
        self.base = base_library
        self.base_version = version_id
        self.applied_version = version_id
        #: Per table row: True when the row is an edge (both endpoints
        #: non-NULL).  Tracks the current applied version's row space.
        self.valid_mask = np.asarray(valid_mask, dtype=np.bool_)
        self.filtered_count = int(self.valid_mask.sum())
        #: Current filtered position per base CSR slot (None = identity,
        #: i.e. ``base.csr.edge_rows`` — no delete ever shifted rows).
        self.base_rows: Optional[np.ndarray] = None
        #: Liveness per base CSR slot (None = all live).
        self.live_base: Optional[np.ndarray] = None
        self.extra_values: list[Any] = []
        self.extra_lookup: dict[Any, int] = {}
        #: Live (in+out) degree per vertex id, built lazily on the first
        #: delta — the liveness source for :class:`OverlayDomain`.
        self.ref_counts: Optional[np.ndarray] = None
        self.add_src = np.empty(0, dtype=np.int64)
        self.add_dst = np.empty(0, dtype=np.int64)
        self.add_rows = np.empty(0, dtype=np.int64)
        self.overlay_edges = 0
        self.tombstones = 0
        #: Cached merged library for ``applied_version`` (invalidated by
        #: every topology-changing delta).
        self.merged: Optional[GraphLibrary] = None

    # ------------------------------------------------------------------
    @property
    def delta_size(self) -> int:
        """Applied delta operations: overlay edges plus tombstones (the
        compaction-threshold measure)."""
        return self.overlay_edges + self.tombstones

    def _ensure_refs(self) -> None:
        if self.ref_counts is None:
            csr = self.base.csr
            nv = self.base.domain.num_vertices
            self.ref_counts = np.bincount(
                csr.src, minlength=nv
            ) + np.bincount(csr.dst, minlength=nv)

    def _encode_extend(self, keys: np.ndarray) -> np.ndarray:
        """Encode appended endpoint keys, assigning fresh ids past the
        base domain to keys the base has never seen."""
        ids = self.base.domain.encode(keys)
        misses = np.flatnonzero(ids == NOT_A_VERTEX)
        if len(misses):
            offset = self.base.domain.num_vertices
            lookup = self.extra_lookup
            values = self.extra_values
            for i in misses:
                key = keys[i]
                code = lookup.get(key)
                if code is None:
                    code = offset + len(values)
                    lookup[key] = code
                    values.append(key)
                ids[i] = code
        return ids

    def _grow_refs(self) -> None:
        total = self.base.domain.num_vertices + len(self.extra_values)
        if len(self.ref_counts) < total:
            grown = np.zeros(total, dtype=self.ref_counts.dtype)
            grown[: len(self.ref_counts)] = self.ref_counts
            self.ref_counts = grown

    # ------------------------------------------------------------------
    # delta application (write-listener side; self.lock held by caller)
    # ------------------------------------------------------------------
    def apply_append(self, version, src_col, dst_col, appended: int) -> bool:
        """Fold ``appended`` tail rows of ``version`` into the overlay.
        Returns False when the state lost sync (caller invalidates)."""
        start = version.num_rows - appended
        if start < 0 or len(self.valid_mask) != start:
            return False
        src_mask = src_col.mask
        dst_mask = dst_col.mask
        valid = np.ones(appended, dtype=np.bool_)
        if src_mask is not None:
            valid &= ~src_mask[start:]
        if dst_mask is not None:
            valid &= ~dst_mask[start:]
        count = int(valid.sum())
        if count:
            self._ensure_refs()
            src_keys = src_col.data[start:][valid]
            dst_keys = dst_col.data[start:][valid]
            src_ids = self._encode_extend(src_keys)
            dst_ids = self._encode_extend(dst_keys)
            self._grow_refs()
            np.add.at(self.ref_counts, src_ids, 1)
            np.add.at(self.ref_counts, dst_ids, 1)
            rows = self.filtered_count + np.arange(count, dtype=np.int64)
            self.add_src = np.concatenate([self.add_src, src_ids])
            self.add_dst = np.concatenate([self.add_dst, dst_ids])
            self.add_rows = np.concatenate([self.add_rows, rows])
            self.overlay_edges += count
            self.merged = None  # topology changed
        self.valid_mask = np.concatenate([self.valid_mask, valid])
        self.filtered_count += count
        self.applied_version = version.version_id
        return True

    def apply_delete(self, version, dropped: np.ndarray) -> bool:
        """Tombstone the edges living on ``dropped`` (pre-delete row
        positions) and remap every surviving edge's current row id."""
        dropped = np.asarray(dropped, dtype=np.int64)
        if len(self.valid_mask) != version.num_rows + len(dropped):
            return False
        if len(dropped) == 0:
            self.applied_version = version.version_id
            return True
        mask = self.valid_mask
        dropped_valid = dropped[mask[dropped]]
        keep_rows = np.ones(len(mask), dtype=np.bool_)
        keep_rows[dropped] = False
        self.valid_mask = mask[keep_rows]
        if len(dropped_valid) == 0:
            # only non-edge rows vanished: filtered positions unchanged
            self.applied_version = version.version_id
            return True
        filtered_index = np.cumsum(mask) - 1
        dropped_filt = np.sort(filtered_index[dropped_valid])
        self._ensure_refs()
        csr = self.base.csr
        if self.base_rows is None:
            self.base_rows = csr.edge_rows.copy()
        if self.live_base is None:
            self.live_base = np.ones(len(self.base_rows), dtype=np.bool_)
        # base CSR slots: tombstone hits, shift survivors down
        live_idx = np.flatnonzero(self.live_base)
        if len(live_idx):
            pos = self.base_rows[live_idx]
            loc = np.searchsorted(dropped_filt, pos)
            hit = np.zeros(len(pos), dtype=np.bool_)
            in_range = loc < len(dropped_filt)
            hit[in_range] = dropped_filt[loc[in_range]] == pos[in_range]
            dead_slots = live_idx[hit]
            if len(dead_slots):
                self.live_base[dead_slots] = False
                np.subtract.at(self.ref_counts, csr.src[dead_slots], 1)
                np.subtract.at(self.ref_counts, csr.dst[dead_slots], 1)
                self.tombstones += len(dead_slots)
            surviving = ~hit
            self.base_rows[live_idx[surviving]] = (
                pos[surviving] - loc[surviving]
            )
        # overlay edges: drop hits, shift survivors down
        if len(self.add_rows):
            pos = self.add_rows
            loc = np.searchsorted(dropped_filt, pos)
            hit = np.zeros(len(pos), dtype=np.bool_)
            in_range = loc < len(dropped_filt)
            hit[in_range] = dropped_filt[loc[in_range]] == pos[in_range]
            if hit.any():
                np.subtract.at(self.ref_counts, self.add_src[hit], 1)
                np.subtract.at(self.ref_counts, self.add_dst[hit], 1)
                self.overlay_edges -= int(hit.sum())
            keep = ~hit
            self.add_src = self.add_src[keep]
            self.add_dst = self.add_dst[keep]
            self.add_rows = pos[keep] - loc[keep]
        self.filtered_count -= len(dropped_filt)
        self.merged = None
        self.applied_version = version.version_id
        return True

    def apply_update(self, version, touched: tuple, spec_cols: tuple) -> bool:
        """An in-place UPDATE: free unless an endpoint column changed
        (then the edge set itself may differ — caller invalidates)."""
        touched = {c.lower() for c in touched}
        if touched & set(spec_cols):
            return False
        # topology and row positions untouched: the cached merged
        # library (and the base) stay valid as-is
        self.applied_version = version.version_id
        return True

    # ------------------------------------------------------------------
    # read side (self.lock held by caller)
    # ------------------------------------------------------------------
    def library_for(self, version_id: int) -> Optional[GraphLibrary]:
        """The library answering queries at ``version_id``, or None when
        this state does not track that version (caller rebuilds)."""
        if version_id != self.applied_version:
            return None
        if self.delta_size == 0:
            return self.base
        if self.merged is None:
            self.merged = self._build_merged()
        return self.merged

    def _build_merged(self) -> GraphLibrary:
        """Stitch base-minus-tombstones plus the overlay into one plain
        CSR in O(E + k log k) — no re-sort of the base edge list.

        Surviving base edges keep their relative order and overlay
        edges follow per source vertex: exactly the adjacency order a
        canonical rebuild's stable sort would produce over the current
        row order, so path tie-breaking stays deterministic.
        """
        base_csr = self.base.csr
        num_vertices = self.base.domain.num_vertices + len(self.extra_values)
        rows_cur = (
            self.base_rows if self.base_rows is not None else base_csr.edge_rows
        )
        if self.live_base is not None:
            live_idx = np.flatnonzero(self.live_base)
            kept_src = base_csr.src[live_idx]
            kept_dst = base_csr.dst[live_idx]
            kept_rows = rows_cur[live_idx]
        else:
            kept_src = base_csr.src
            kept_dst = base_csr.dst
            kept_rows = rows_cur
        order = np.argsort(self.add_src, kind="stable")
        over_src = self.add_src[order]
        over_dst = self.add_dst[order]
        over_rows = self.add_rows[order]
        kept_counts = np.bincount(kept_src, minlength=num_vertices).astype(
            np.int64
        )
        over_counts = np.bincount(over_src, minlength=num_vertices).astype(
            np.int64
        )
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(kept_counts + over_counts, out=indptr[1:])
        # scatter: each group's base edges first (original order), then
        # its overlay edges (append order)
        kept_first = np.concatenate(([0], np.cumsum(kept_counts)[:-1]))
        pos_kept = indptr[kept_src] + (
            np.arange(len(kept_src), dtype=np.int64) - kept_first[kept_src]
        )
        over_first = np.concatenate(([0], np.cumsum(over_counts)[:-1]))
        pos_over = (
            indptr[over_src]
            + kept_counts[over_src]
            + (np.arange(len(over_src), dtype=np.int64) - over_first[over_src])
        )
        total = len(kept_src) + len(over_src)
        dst = np.empty(total, dtype=np.int64)
        src = np.empty(total, dtype=np.int64)
        edge_rows = np.empty(total, dtype=np.int64)
        dst[pos_kept] = kept_dst
        dst[pos_over] = over_dst
        src[pos_kept] = kept_src
        src[pos_over] = over_src
        edge_rows[pos_kept] = kept_rows
        edge_rows[pos_over] = over_rows
        self._ensure_refs()
        library = GraphLibrary.__new__(GraphLibrary)
        library.domain = OverlayDomain(
            self.base.domain, self.extra_values, self.ref_counts
        )
        library.csr = CSRGraph(
            num_vertices=num_vertices,
            indptr=indptr,
            dst=dst,
            src=src,
            weights=None,
            edge_rows=edge_rows,
        )
        library.weighted = False
        library._reverse_csr = None
        return library

    def describe(self) -> dict:
        """Introspection snapshot for ``\\graph`` / ``EXPLAIN`` footers."""
        return {
            "base_edges": int(self.base.csr.num_edges),
            "overlay_edges": int(self.overlay_edges),
            "tombstones": int(self.tombstones),
            "extra_vertices": len(self.extra_values),
            "base_version": int(self.base_version),
            "applied_version": int(self.applied_version),
            "merged_cached": self.merged is not None,
        }


def edge_valid_mask(src_col, dst_col, num_rows: int) -> np.ndarray:
    """The is-an-edge mask of an edge table version (both endpoints
    non-NULL) — the row space every overlay delta is tracked in."""
    valid = np.ones(num_rows, dtype=np.bool_)
    if src_col.mask is not None:
        valid &= ~src_col.mask
    if dst_col.mask is not None:
        valid &= ~dst_col.mask
    return valid


__all__ = ["GraphOverlayState", "OverlayDomain", "edge_valid_mask"]
