"""Compressed Sparse Row graph representation.

Mirrors Section 3.2 of the paper: "the columns {S, D} ∪ W are sorted
according to S, thus a prefix sum is computed on S itself.  [...] given a
vertex id η ∈ H, all the outgoing edges of η are stored in D from the
position S[η-1] up to the position S[η]-1".

On top of the paper's layout we also keep ``edge_rows``: for each CSR
slot, the row id of the edge in the *original* edge-table intermediate.
This is what makes nested-table paths (Section 3.3) possible — a path is
physically "a list of references to the actual rows of the table
expression that generated it", and those references are exactly the
``edge_rows`` entries along the shortest-path tree.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphRuntimeError


class CSRGraph:
    """An immutable CSR adjacency structure over dense vertex ids.

    Attributes
    ----------
    num_vertices:
        Size of the dense domain H.
    indptr:
        int64 array of length ``num_vertices + 1`` (the prefix sum).
    dst:
        int64 array of destination ids, grouped by source.
    src:
        int64 array of source ids aligned with ``dst`` (redundant with
        ``indptr`` but convenient for path reconstruction).
    weights:
        Optional float64/int64 array aligned with ``dst``.
    edge_rows:
        int64 array aligned with ``dst``: original edge-table row ids.
    """

    __slots__ = ("num_vertices", "indptr", "dst", "src", "weights", "edge_rows",
                 "integral_weights", "max_weight")

    def __init__(
        self,
        num_vertices: int,
        indptr: np.ndarray,
        dst: np.ndarray,
        src: np.ndarray,
        weights: np.ndarray | None,
        edge_rows: np.ndarray,
    ):
        self.num_vertices = num_vertices
        self.indptr = indptr
        self.dst = dst
        self.src = src
        self.weights = weights
        self.edge_rows = edge_rows
        if weights is not None:
            self.integral_weights = weights.dtype.kind in "iu"
            self.max_weight = int(weights.max()) if self.integral_weights and len(weights) else 0
        else:
            self.integral_weights = True
            self.max_weight = 1

    @property
    def num_edges(self) -> int:
        return len(self.dst)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Destination ids of the outgoing edges of ``vertex``."""
        return self.dst[self.indptr[vertex] : self.indptr[vertex + 1]]

    def out_degree(self, vertex: int) -> int:
        return int(self.indptr[vertex + 1] - self.indptr[vertex])


def build_csr(
    src_ids: np.ndarray,
    dst_ids: np.ndarray,
    num_vertices: int,
    weights: np.ndarray | None = None,
) -> CSRGraph:
    """Build a CSR graph from encoded endpoint arrays.

    ``weights``, when given, must be strictly positive — the paper
    specifies a runtime exception otherwise (Section 2).
    """
    src_ids = np.asarray(src_ids, dtype=np.int64)
    dst_ids = np.asarray(dst_ids, dtype=np.int64)
    if len(src_ids) != len(dst_ids):
        raise GraphRuntimeError("source and destination columns differ in length")
    if weights is not None:
        weights = np.asarray(weights)
        if len(weights) != len(src_ids):
            raise GraphRuntimeError("weight column length does not match edges")
        if len(weights) and weights.min() <= 0:
            raise GraphRuntimeError(
                "CHEAPEST SUM weights must be strictly greater than 0"
            )
    # stable sort keeps the original edge order within one source vertex,
    # making path choice deterministic.
    order = np.argsort(src_ids, kind="stable")
    sorted_src = src_ids[order]
    sorted_dst = dst_ids[order]
    sorted_weights = weights[order] if weights is not None else None
    counts = np.bincount(sorted_src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(
        num_vertices=num_vertices,
        indptr=indptr,
        dst=sorted_dst,
        src=sorted_src,
        weights=sorted_weights,
        edge_rows=order.astype(np.int64),
    )


def expand_frontier(indptr: np.ndarray, frontier: np.ndarray) -> np.ndarray:
    """Positions (CSR slots) of all outgoing edges of the frontier vertices.

    Vectorized range expansion: for each vertex v in ``frontier`` this
    yields ``indptr[v] .. indptr[v+1]-1``, concatenated.
    """
    starts = indptr[frontier]
    counts = (indptr[frontier + 1] - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # classic repeat/arange trick for concatenated ranges
    cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.repeat(starts - cum, counts) + np.arange(total, dtype=np.int64)
