"""A Radix Queue (radix heap) monotone priority queue.

The paper's weighted shortest-path runtime uses "the Dijkstra algorithm
combined with the Radix Queue [11]" — Ahuja, Mehlhorn, Orlin & Tarjan,
*Faster algorithms for the shortest path problem*, JACM 1990.

A radix heap is a monotone priority queue for non-negative integer keys:
``pop_min`` results are non-decreasing over time, and every inserted key
must be at least the last popped minimum (both hold inside Dijkstra with
positive weights) and at most ``last_min + C`` where C is the maximum
edge weight.

Structure: ``B = ⌈log2(C+1)⌉ + 2`` buckets with fixed widths
``1, 1, 2, 4, ..., 2^(B-3), ∞`` and lower bounds ``L[i]``; bucket ``i``
holds keys in ``[L[i], L[i+1) )``.  When the first non-empty bucket is
``k > 0``, its minimum ``m`` becomes the new base: bounds ``L[0..k]`` are
rebased at ``m`` (capped at the old ``L[k+1]``, so buckets above ``k``
are untouched) and bucket ``k``'s items redistribute strictly below
``k``.  Each element therefore moves at most ``B`` times, giving the
O(m + n·log C) bound of [11].
"""

from __future__ import annotations

from ..errors import GraphRuntimeError

_INFINITY = float("inf")


class RadixQueue:
    """Monotone integer priority queue of (key, payload) pairs.

    Supports the *lazy deletion* discipline Dijkstra needs: stale entries
    are allowed, the caller skips payloads already finalized.
    """

    __slots__ = ("_buckets", "_lower", "_widths", "_last_min", "_size")

    def __init__(self, max_key_span: int):
        """``max_key_span``: upper bound on (key - last popped min)."""
        if max_key_span < 1:
            max_key_span = 1
        num_buckets = max_key_span.bit_length() + 2
        self._buckets: list[list[tuple[int, int]]] = [[] for _ in range(num_buckets)]
        # fixed widths 1, 1, 2, 4, ..., last bucket unbounded
        self._widths = [1] + [1 << (i - 1) for i in range(1, num_buckets - 1)] + [_INFINITY]
        self._lower = [0] * num_buckets + [_INFINITY]
        for i in range(1, num_buckets):
            self._lower[i] = self._lower[i - 1] + self._widths[i - 1]
        self._last_min = 0
        self._size = 0

    # ------------------------------------------------------------------
    def _bucket_index(self, key: int) -> int:
        """Highest bucket whose lower bound is <= key.

        The scan runs over ~log C buckets, which is effectively constant.
        """
        lower = self._lower
        for i in range(len(self._buckets) - 1, -1, -1):
            if key >= lower[i]:
                return i
        raise GraphRuntimeError(
            f"radix queue key {key} below current minimum {self._last_min}"
        )

    def __len__(self) -> int:
        return self._size

    def push(self, key: int, payload: int) -> None:
        """Insert a payload with an integer key >= the last popped min."""
        if key < self._last_min:
            raise GraphRuntimeError(
                f"radix queue requires monotone keys: {key} < {self._last_min}"
            )
        self._buckets[self._bucket_index(key)].append((key, payload))
        self._size += 1

    def pop_min(self) -> tuple[int, int]:
        """Remove and return the (key, payload) pair with the smallest key."""
        if self._size == 0:
            raise GraphRuntimeError("pop from an empty radix queue")
        buckets = self._buckets
        first = 0
        while not buckets[first]:
            first += 1
        if first == 0:
            # bucket 0 has width 1: every entry is a current minimum
            self._size -= 1
            self._last_min = buckets[0][-1][0]
            return buckets[0].pop()
        # rebase buckets 0..first at the minimum of bucket `first`, leaving
        # all higher buckets (and their bounds) untouched
        items = buckets[first]
        min_key = min(key for key, _ in items)
        self._last_min = min_key
        lower, widths = self._lower, self._widths
        ceiling = lower[first + 1]
        lower[0] = min_key
        for i in range(1, first + 1):
            lower[i] = min(lower[i - 1] + widths[i - 1], ceiling)
        buckets[first] = []
        for key, payload in items:
            buckets[self._bucket_index(key)].append((key, payload))
        self._size -= 1
        return buckets[0].pop()
