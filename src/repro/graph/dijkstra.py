"""Dijkstra's algorithm for weighted shortest paths.

Two priority-queue backends, selected automatically by
:func:`repro.graph.library.GraphLibrary`:

* :class:`~repro.graph.radix_queue.RadixQueue` for strictly positive
  *integer* weights — the configuration the paper's runtime uses
  ("the Dijkstra algorithm combined with the Radix Queue", Section 3.2);
* a binary heap (:mod:`heapq`) for floating-point weights, and as the
  baseline of the radix-vs-binary ablation (A1 in DESIGN.md).

Both use lazy deletion: a popped entry whose key exceeds the recorded
distance is stale and skipped.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import GraphRuntimeError
from .bfs import TraversalResult, UNREACHED
from .csr import CSRGraph
from .radix_queue import RadixQueue


def dijkstra(
    graph: CSRGraph,
    source: int,
    targets: np.ndarray | None = None,
    *,
    queue: str = "auto",
) -> TraversalResult:
    """Single-source Dijkstra with optional early termination.

    ``queue`` is ``'radix'``, ``'binary'`` or ``'auto'`` (radix when the
    weights are integral).  Distances of unreached vertices are -1; the
    distance array dtype follows the weight dtype (int64 or float64).
    """
    weights = graph.weights
    if weights is None:
        raise GraphRuntimeError("dijkstra requires an edge weight array")
    if queue == "auto":
        queue = "radix" if graph.integral_weights else "binary"
    if queue == "radix" and not graph.integral_weights:
        raise GraphRuntimeError("the radix queue requires integer weights")
    if queue == "radix":
        return _dijkstra_radix(graph, source, targets)
    if queue == "binary":
        return _dijkstra_binary(graph, source, targets)
    raise GraphRuntimeError(f"unknown queue implementation: {queue!r}")


def _pending_set(source: int, targets: np.ndarray | None):
    if targets is None:
        return None
    return set(int(t) for t in np.unique(targets) if t != source)


def _dijkstra_radix(
    graph: CSRGraph, source: int, targets: np.ndarray | None
) -> TraversalResult:
    n = graph.num_vertices
    dist = np.full(n, UNREACHED, dtype=np.int64)
    pred_edge = np.full(n, UNREACHED, dtype=np.int64)
    settled = np.zeros(n, dtype=np.bool_)
    pending = _pending_set(source, targets)
    queue = RadixQueue(max(graph.max_weight, 1))
    dist[source] = 0
    queue.push(0, source)
    indptr, dst, weights = graph.indptr, graph.dst, graph.weights
    while len(queue):
        key, vertex = queue.pop_min()
        if settled[vertex]:
            continue  # stale lazy-deleted entry
        settled[vertex] = True
        if pending is not None:
            pending.discard(vertex)
            if not pending:
                break
        for slot in range(indptr[vertex], indptr[vertex + 1]):
            neighbor = dst[slot]
            candidate = key + int(weights[slot])
            if dist[neighbor] == UNREACHED or candidate < dist[neighbor]:
                dist[neighbor] = candidate
                pred_edge[neighbor] = slot
                queue.push(candidate, int(neighbor))
    # vertices relaxed but never settled keep their tentative distance,
    # which is only final if settled; clear them for early-terminated runs
    if pending is not None:
        unsettled = ~settled & (dist != UNREACHED)
        dist[unsettled] = UNREACHED
        pred_edge[unsettled] = UNREACHED
    return TraversalResult(source, dist, pred_edge)


def _dijkstra_binary(
    graph: CSRGraph, source: int, targets: np.ndarray | None
) -> TraversalResult:
    n = graph.num_vertices
    float_weights = not graph.integral_weights
    dtype = np.float64 if float_weights else np.int64
    unreached = np.float64("inf") if float_weights else UNREACHED
    dist = np.full(n, unreached, dtype=dtype)
    pred_edge = np.full(n, UNREACHED, dtype=np.int64)
    settled = np.zeros(n, dtype=np.bool_)
    pending = _pending_set(source, targets)
    heap: list[tuple[float, int]] = [(0, source)]
    dist[source] = 0
    indptr, dst, weights = graph.indptr, graph.dst, graph.weights
    while heap:
        key, vertex = heapq.heappop(heap)
        if settled[vertex]:
            continue
        settled[vertex] = True
        if pending is not None:
            pending.discard(vertex)
            if not pending:
                break
        for slot in range(indptr[vertex], indptr[vertex + 1]):
            neighbor = dst[slot]
            candidate = key + weights[slot]
            if not settled[neighbor] and (
                dist[neighbor] == unreached or candidate < dist[neighbor]
            ):
                dist[neighbor] = candidate
                pred_edge[neighbor] = slot
                heapq.heappush(heap, (candidate, int(neighbor)))
    if pending is not None:
        unsettled = ~settled & (dist != unreached)
        dist[unsettled] = unreached
        pred_edge[unsettled] = UNREACHED
    if float_weights:
        # normalize the unreached marker to -1 to match the BFS contract
        out = np.full(n, UNREACHED, dtype=np.float64)
        reached = dist != unreached
        out[reached] = dist[reached]
        dist = out
    return TraversalResult(source, dist, pred_edge)
