"""Breadth-First Search over a CSR graph.

Implements the unweighted shortest-path runtime of Section 3.2.  The
search is level-synchronous and vectorized: each step expands the whole
frontier with one gather (:func:`~repro.graph.csr.expand_frontier`)
instead of a per-vertex Python loop.

Besides distances, the search records for every reached vertex the CSR
slot of the edge that first discovered it (``pred_edge``), from which
:func:`reconstruct_path` rebuilds the path as a sequence of original
edge-table row ids — the physical content of the paper's nested tables.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph, expand_frontier

UNREACHED = -1


class TraversalResult:
    """Distances and shortest-path tree of one single-source traversal."""

    __slots__ = ("source", "dist", "pred_edge")

    def __init__(self, source: int, dist: np.ndarray, pred_edge: np.ndarray):
        self.source = source
        self.dist = dist
        self.pred_edge = pred_edge

    def reached(self, vertex: int) -> bool:
        return self.dist[vertex] != UNREACHED

    def cost(self, vertex: int):
        """Cost of the shortest path to ``vertex`` (None when unreached)."""
        value = self.dist[vertex]
        return None if value == UNREACHED else value.item()


def bfs(
    graph: CSRGraph,
    source: int,
    targets: np.ndarray | None = None,
) -> TraversalResult:
    """Single-source BFS; optionally stops early once ``targets`` are found.

    Returns hop distances (-1 for unreached vertices) and the
    predecessor-edge array.  ``targets`` is a (possibly empty) array of
    vertex ids; the search stops as soon as all of them are settled,
    matching the paper's per-pair query pattern.
    """
    n = graph.num_vertices
    dist = np.full(n, UNREACHED, dtype=np.int64)
    pred_edge = np.full(n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    pending = None
    if targets is not None:
        pending = set(int(t) for t in np.unique(targets) if t != source)
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while len(frontier):
        if pending is not None and not pending:
            break
        level += 1
        slots = expand_frontier(graph.indptr, frontier)
        if len(slots) == 0:
            break
        neighbors = graph.dst[slots]
        fresh = dist[neighbors] == UNREACHED
        neighbors = neighbors[fresh]
        slots = slots[fresh]
        if len(neighbors) == 0:
            break
        # several frontier vertices may discover the same neighbor in one
        # level; keep the first occurrence so the tree stays deterministic
        unique_neighbors, first_pos = np.unique(neighbors, return_index=True)
        dist[unique_neighbors] = level
        pred_edge[unique_neighbors] = slots[first_pos]
        if pending is not None:
            pending.difference_update(unique_neighbors.tolist())
        frontier = unique_neighbors
    return TraversalResult(source, dist, pred_edge)


def reconstruct_path(graph: CSRGraph, result: TraversalResult, target: int) -> np.ndarray:
    """Original edge-table row ids along the path source → target.

    Returns an empty array for ``target == source`` and ``None`` when the
    target was not reached.
    """
    if result.dist[target] == UNREACHED:
        return None
    rows: list[int] = []
    vertex = target
    while vertex != result.source:
        slot = result.pred_edge[vertex]
        rows.append(int(graph.edge_rows[slot]))
        vertex = int(graph.src[slot])
    rows.reverse()
    return np.asarray(rows, dtype=np.int64)
