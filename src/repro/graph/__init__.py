"""Graph runtime: vertex-domain encoding, CSR, BFS, Dijkstra (radix queue
and binary heap) and the many-to-many shortest-path library facade."""

from .bfs import UNREACHED, TraversalResult, bfs, reconstruct_path
from .bidirectional import bidirectional_distance, reverse_csr
from .csr import CSRGraph, build_csr, expand_frontier
from .dijkstra import dijkstra
from .domain import NOT_A_VERTEX, VertexDomain
from .library import (
    PARALLEL_MIN_PAIRS,
    GraphLibrary,
    ShortestPathResult,
    resolve_workers,
)
from .overlay import GraphOverlayState, OverlayDomain, edge_valid_mask
from .radix_queue import RadixQueue

__all__ = [
    "UNREACHED",
    "TraversalResult",
    "bfs",
    "reconstruct_path",
    "bidirectional_distance",
    "reverse_csr",
    "CSRGraph",
    "build_csr",
    "expand_frontier",
    "dijkstra",
    "NOT_A_VERTEX",
    "VertexDomain",
    "GraphLibrary",
    "ShortestPathResult",
    "GraphOverlayState",
    "OverlayDomain",
    "edge_valid_mask",
    "RadixQueue",
    "PARALLEL_MIN_PAIRS",
    "resolve_workers",
]
