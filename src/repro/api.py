"""Public API: an embedded database speaking the extended SQL dialect.

Typical use::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE friends (src INT, dst INT, weight DOUBLE)")
    db.execute("INSERT INTO friends VALUES (1, 2, 0.5), (2, 3, 2.0)")
    result = db.execute(
        "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)",
        (1, 3),
    )
    print(result.rows())   # [(2,)]

Shortest-path queries follow the paper's syntax: ``REACHES ... OVER ...
EDGE (S, D)`` in WHERE, ``CHEAPEST SUM(e: expr)`` (optionally
``AS (cost, path)``) in SELECT, and ``UNNEST(path)`` in FROM.

Concurrency and caching
-----------------------
A :class:`Database` is safe to share across threads.  Statements acquire
per-table reader/writer locks, so SELECTs run concurrently while DML
gets exclusive access to the tables it writes.  The idiomatic
multi-threaded shape is one :class:`~repro.session.Session` per thread::

    db = Database()
    with db.connect() as session:
        stmt = session.prepare("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? "
                               "OVER friends EDGE (src, dst)")
        stmt.execute((1, 3))   # plan-cache hit on every re-execution

Two caches sit behind the SQL surface, both thread-safe, LRU-bounded and
invalidated by DML/DDL on the tables they depend on:

* the **plan cache** (``plan_cache_capacity``, default 128) keyed on SQL
  text — repeat executions skip parse → bind → rewrite; hit/miss
  counters appear in ``EXPLAIN`` output and profiler reports;
* the **graph-index cache** inside :class:`GraphIndexManager`
  (``graph_cache_capacity``, default 16) holding prepared domain+CSR
  structures for ``CREATE GRAPH INDEX`` definitions.

``path_workers`` ("auto" by default) controls how many threads the graph
runtime uses to partition large shortest-path batches; see
:meth:`repro.graph.GraphLibrary.solve_encoded`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Iterable, Optional, Sequence

from .errors import CatalogError, ExecutionError, ReproError
from .exec import graph_ops  # noqa: F401 - registers the graph operators
from .exec.batch import Batch
from .exec.operators import ExecContext, execute_plan
from .graph import GraphLibrary
from .nested import NestedTableValue
from .plan import (
    Binder,
    BoundAnalyze,
    BoundCreateGraphIndex,
    BoundCreateTable,
    BoundCreateTableAs,
    BoundDelete,
    BoundDropGraphIndex,
    BoundDropTable,
    BoundExplain,
    BoundInsert,
    BoundQuery,
    BoundUpdate,
    explain_physical,
    optimize,
)
from .session import PlanCache, Session, referenced_tables
from .sql import parse_script, parse_statement
from .sql.normalize import merge_params, normalize_statement
from .storage import (
    Catalog,
    Column,
    DataType,
    LockSet,
    Schema,
    StatsManager,
    Table,
    days_to_date,
)


#: Leading words of the statement kinds the plan cache can hold; other
#: statements (UPDATE, DELETE, DDL, EXPLAIN, ANALYZE) skip the literal
#: normalization pass entirely — they could never be served from the
#: normalized index, so tokenizing them for it is wasted work.
_CACHEABLE_PREFIXES = ("SELECT", "WITH", "VALUES", "INSERT", "(")


def _cacheable_statement(sql: str) -> bool:
    head = sql.lstrip()[:8].upper()
    return head.startswith(_CACHEABLE_PREFIXES)


class Result:
    """The outcome of one statement.

    Queries expose rows via :meth:`rows` / iteration; DDL/DML expose
    ``rowcount``.  DATE values come back as :class:`datetime.date`; paths
    come back as :class:`~repro.nested.NestedTableValue` with
    ``to_rows()`` / ``to_dicts()`` accessors (flatten them in SQL with
    UNNEST when you want plain tuples).
    """

    def __init__(self, batch: Optional[Batch], rowcount: int = -1):
        self._batch = batch
        self.rowcount = rowcount

    @staticmethod
    def from_text_lines(column_name: str, lines: list[str]) -> "Result":
        """A single-VARCHAR-column result (used by EXPLAIN)."""
        from .plan.logical import PlanColumn

        column = Column.from_values(DataType.VARCHAR, list(lines))
        schema = (PlanColumn(0, column_name, DataType.VARCHAR),)
        return Result(Batch(schema, [column]))

    @property
    def is_query(self) -> bool:
        return self._batch is not None

    @property
    def column_names(self) -> list[str]:
        if self._batch is None:
            return []
        return [c.name for c in self._batch.schema]

    def __len__(self) -> int:
        return self._batch.num_rows if self._batch is not None else 0

    def rows(self) -> list[tuple]:
        """All result rows as Python tuples."""
        if self._batch is None:
            return []
        decoded = []
        for col, plan_col in zip(self._batch.columns, self._batch.schema):
            decoded.append(col.to_pylist(decode_dates=True))
        return [
            tuple(col[i] for col in decoded) for i in range(self._batch.num_rows)
        ]

    fetchall = rows

    def __iter__(self):
        return iter(self.rows())

    def scalar(self) -> Any:
        """The single value of a 1x1 result (None for an empty result)."""
        rows = self.rows()
        if not rows:
            return None
        if len(rows) > 1 or len(rows[0]) != 1:
            raise ExecutionError("scalar() requires a single-row, single-column result")
        return rows[0][0]

    def to_dicts(self) -> list[dict]:
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._batch is None:
            return f"<Result rowcount={self.rowcount}>"
        return f"<Result {self._batch.num_rows} rows: {', '.join(self.column_names)}>"


class GraphIndexManager:
    """The paper's Section-6 'graph indices': prepared CSRs keyed on the
    edge table.

    The cache of built libraries is thread-safe, capacity-bounded (LRU)
    and *versioned*: every entry records the edge table's version counter
    at build time.  Entries are dropped explicitly when DML/DDL touches
    the underlying table (:meth:`invalidate_table`, wired to the table
    write listeners by :class:`Database`) and re-validated against the
    live version on every lookup as a backstop, so a stale CSR is never
    served.
    """

    def __init__(self, catalog: Catalog, capacity: int = 16):
        self._catalog = catalog
        self.capacity = max(1, int(capacity))
        self._mutex = threading.RLock()
        self._specs: dict[str, tuple[str, str, str]] = {}
        self._cache: "OrderedDict[tuple[str, str, str], tuple[int, GraphLibrary]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0
        self.invalidations = 0

    def create(self, name: str, table: str, src_col: str, dst_col: str) -> None:
        schema = self._catalog.get(table).schema
        for column in (src_col, dst_col):
            if not schema.has(column):
                raise CatalogError(
                    f"table {table!r} has no column {column!r} for graph index"
                )
        with self._mutex:
            if name in self._specs:
                raise CatalogError(f"graph index already exists: {name!r}")
            self._specs[name] = (table.lower(), src_col.lower(), dst_col.lower())

    def drop(self, name: str) -> None:
        with self._mutex:
            try:
                spec = self._specs.pop(name)
            except KeyError:
                raise CatalogError(f"unknown graph index: {name!r}") from None
            if spec not in self._specs.values():
                self._cache.pop(spec, None)

    def names(self) -> list[str]:
        with self._mutex:
            return sorted(self._specs)

    def specs(self) -> dict[str, tuple[str, str, str]]:
        """name -> (table, src column, dst column), for persistence."""
        with self._mutex:
            return dict(self._specs)

    def invalidate_table(self, table: str) -> None:
        """Drop every cached library built over ``table`` (DML/DDL hook)."""
        key = table.lower()
        with self._mutex:
            stale = [spec for spec in self._cache if spec[0] == key]
            for spec in stale:
                del self._cache[spec]
            self.invalidations += len(stale)

    def drop_for_table(self, table: str) -> None:
        """Drop the index *definitions* over ``table`` along with their
        cached libraries (DROP TABLE hook) — an orphaned spec would make
        a later :meth:`Database.save`/``load`` round-trip fail on the
        missing table."""
        key = table.lower()
        with self._mutex:
            for name in [n for n, s in self._specs.items() if s[0] == key]:
                del self._specs[name]
            stale = [spec for spec in self._cache if spec[0] == key]
            for spec in stale:
                del self._cache[spec]
            self.invalidations += len(stale)

    def lookup(self, table: str, src_col: str, dst_col: str) -> Optional[GraphLibrary]:
        """A prepared library for (table, S, D), or None if not indexed.

        Rebuilds lazily when the table changed since the cached build.
        """
        spec = (table.lower(), src_col.lower(), dst_col.lower())
        with self._mutex:
            if spec not in self._specs.values():
                return None
            table_obj = self._catalog.get(spec[0])
            cached = self._cache.get(spec)
            if cached is not None and cached[0] == table_obj.version:
                self._cache.move_to_end(spec)
                self.hits += 1
                return cached[1]
            self.misses += 1
        # Build outside the mutex: CSR construction can be slow and must
        # not serialize lookups of other indices.  No table lock either —
        # the statement layer may already hold it, and a write-preferring
        # lock deadlocks on reentrant reads.  A single columns() call is
        # an atomic snapshot (mutators swap the whole list), and reading
        # the version *before* it means a concurrent write can only make
        # the entry conservatively stale, never stale-marked-fresh.
        version = table_obj.version
        columns = table_obj.columns()
        src = columns[table_obj.schema.index_of(src_col)]
        dst = columns[table_obj.schema.index_of(dst_col)]
        valid = ~(src.null_mask() | dst.null_mask())
        library = GraphLibrary(src.data[valid], dst.data[valid])
        with self._mutex:
            self.builds += 1
            self._cache[spec] = (version, library)
            self._cache.move_to_end(spec)
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
                self.evictions += 1
        return library

    def stats(self) -> dict[str, int]:
        with self._mutex:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
                "entries": len(self._cache),
                "capacity": self.capacity,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }


class Database:
    """An in-process, thread-safe database instance (catalog + executor).

    Parameters
    ----------
    plan_cache_capacity:
        LRU bound of the prepared-statement plan cache (SQL text → plan).
    graph_cache_capacity:
        LRU bound of the graph-index cache (built domain+CSR libraries).
    path_workers:
        Worker threads for large shortest-path batches: a positive int,
        or ``"auto"`` (respect ``REPRO_PATH_WORKERS`` / the CPU count).
        Small batches always run serially; see
        :meth:`repro.graph.GraphLibrary.solve_encoded`.
    optimizer:
        When True (default) statements run through the full cost-based
        optimizer (generalized filter pushdown, statistics-driven join
        reordering, hash-join build-side selection, projection pruning,
        graph-operator pushdown).  When False only the paper's legacy
        rewriter runs — the baseline for equivalence testing and
        benchmarks.
    parameterize:
        When True (default) plan-cache keys are additionally normalized
        (literals become parameters, :mod:`repro.sql.normalize`) so
        textually different statements share one cached plan.
    """

    def __init__(
        self,
        *,
        plan_cache_capacity: int = 128,
        graph_cache_capacity: int = 16,
        path_workers: int | str | None = "auto",
        optimizer: bool = True,
        parameterize: bool = True,
    ) -> None:
        self.catalog = Catalog()
        self.graph_indices = GraphIndexManager(
            self.catalog, capacity=graph_cache_capacity
        )
        self.stats = StatsManager(self.catalog)
        self.plan_cache = PlanCache(
            self.catalog,
            capacity=plan_cache_capacity,
            stats_marker=lambda name: self.stats.marker(name),
        )
        self.path_workers = path_workers
        self.optimizer_enabled = bool(optimizer)
        self.parameterize = bool(parameterize)
        # every committed table mutation invalidates both caches and
        # refreshes the recorded statistics row counts
        self.catalog.add_write_listener(self._on_table_write)

    def _on_table_write(self, table: Table) -> None:
        self.plan_cache.invalidate_writes(table.name)
        self.graph_indices.invalidate_table(table.name)
        self.stats.on_table_write(table)

    def _optimize(self, plan):
        """Lower a bound logical plan through the optimizer."""
        return optimize(
            plan, self.catalog, self.stats, enabled=self.optimizer_enabled
        )

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def connect(self) -> Session:
        """Open a :class:`~repro.session.Session` (cursor) on this
        database.  Create one per thread; all sessions share the catalog,
        the plan cache and the graph-index cache."""
        return Session(self)

    # ------------------------------------------------------------------
    # SQL entry points
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> Result:
        """Execute one SQL statement.

        Queries and INSERTs are served through the plan cache: a hit
        (exact-text or literal-normalized) skips parse → bind →
        optimize entirely and goes straight to execution.
        """
        entry, bound, _, slots = self._lookup_or_plan(sql)
        params = tuple(params)
        if slots is not None:
            params = merge_params(slots, params)
        if entry is not None:
            return self._execute_cached(entry, params)
        return self._run_bound(bound, params)

    def _lookup_or_plan(self, sql: str):
        """The single get-or-fill path of the plan cache.

        Returns ``(entry, bound, was_hit, slots)``: a cache entry
        (served or freshly stored) with ``bound`` None, or — for
        statements the cache does not hold (DDL, UPDATE, DELETE,
        EXPLAIN) — the bound statement with ``entry`` None.  ``slots``
        is non-None only for normalized-index hits: the parameter
        recipe interleaving this text's literals with caller params.
        """
        entry = self.plan_cache.get(sql)
        if entry is not None:
            return entry, None, True, None
        normalized = (
            normalize_statement(sql)
            if self.parameterize and _cacheable_statement(sql)
            else None
        )
        if normalized is not None:
            key, slots = normalized
            entry = self.plan_cache.get_normalized(key)
            if entry is not None:
                return entry, None, True, slots
        statement = parse_statement(sql)
        bound = Binder(self.catalog).bind_statement(statement)
        if isinstance(bound, BoundQuery):
            entry = self.plan_cache.put(sql, self._optimize(bound.plan))
        elif isinstance(bound, BoundInsert):
            entry = self.plan_cache.put_insert(
                sql, bound, self._optimize(bound.plan)
            )
        else:
            return None, bound, False, None
        if normalized is not None and self.plan_cache.note_normalized_candidate(
            normalized[0], sql
        ):
            self._store_normalized(*normalized)
        return entry, None, False, None

    def _store_normalized(self, key: str, slots) -> None:
        """Plan the literal-normalized text and file it under the
        normalized index.  Best-effort: statements whose literals turn
        out to be load-bearing simply fail to bind and are skipped."""
        if self.plan_cache.contains_normalized(key):
            return
        try:
            statement = parse_statement(key)
            bound = Binder(self.catalog).bind_statement(statement)
            if isinstance(bound, BoundQuery):
                self.plan_cache.put(
                    key, self._optimize(bound.plan), normalized=True
                )
            elif isinstance(bound, BoundInsert):
                self.plan_cache.put_insert(
                    key, bound, self._optimize(bound.plan), normalized=True
                )
        except ReproError:
            pass

    def _execute_cached(self, entry, params: tuple) -> Result:
        # entry.deps already names every referenced table: no need to
        # re-walk the plan tree per execution on the cache-hit hot path
        if entry.kind == "insert":
            with self._locks(entry.tables(), {entry.bound.table}):
                return self._run_insert(entry.bound, entry.plan, params)
        return self._execute_query_plan(entry.plan, params, tables=entry.tables())

    def prepare_plan(self, sql: str):
        """Parse, bind, optimize and cache a statement without executing
        it (the back end of ``Session.prepare``).  Statements the cache
        cannot hold (DDL, UPDATE, DELETE) are validated but not cached."""
        entry, _, _, _ = self._lookup_or_plan(sql)
        return entry

    def executescript(self, sql: str) -> list[Result]:
        """Execute a semicolon-separated list of statements (no params)."""
        return [
            self._run_bound(Binder(self.catalog).bind_statement(stmt), ())
            for stmt in parse_script(sql)
        ]

    def profile(self, sql: str, params: Sequence[Any] = ()) -> tuple[Result, str]:
        """Execute a query with per-operator timing instrumentation.

        Returns (result, report); the report is the plan tree annotated
        with self/total milliseconds and output row counts per operator,
        plus a plan-cache / graph-index-cache summary footer.
        """
        from .exec.profiler import Profiler

        entry, _, cache_hit, slots = self._lookup_or_plan(sql)
        if entry is None or entry.kind != "query":
            raise ExecutionError("profile() is only available for queries")
        params = tuple(params)
        if slots is not None:
            params = merge_params(slots, params)
        plan = entry.plan
        profiler = Profiler()
        with self._read_locks(entry.tables()):
            ctx = ExecContext(self, params, profiler=profiler)
            result = Result(execute_plan(plan, ctx))
        profiler.plan_cache_hit = cache_hit
        profiler.cache_stats = self.cache_stats()
        return result, profiler.render(plan)

    def explain(self, sql: str) -> str:
        """The optimized physical plan of a query (per-operator
        estimated rows and cumulative cost), as indented text, with a
        plan-cache counter footer (the EXPLAIN cache surface)."""
        entry, _, _, _ = self._lookup_or_plan(sql)
        if entry is None or entry.kind != "query":
            raise ExecutionError("EXPLAIN is only available for queries")
        return explain_physical(entry.plan) + "\n" + self._cache_footer()

    def _cache_footer(self) -> str:
        plan = self.plan_cache.stats()
        graph = self.graph_indices.stats()
        return (
            f"-- plan cache: hits={plan['hits']} misses={plan['misses']} "
            f"entries={plan['entries']}/{plan['capacity']}\n"
            f"-- graph index cache: hits={graph['hits']} "
            f"misses={graph['misses']} entries={graph['entries']}/"
            f"{graph['capacity']}"
        )

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Counters of both caches, for monitoring and tests.

        ``plan_cache`` includes ``normalized_hits`` /
        ``normalized_entries``: statements served through the
        literal-normalized index (textually different, same shape).
        """
        return {
            "plan_cache": self.plan_cache.stats(),
            "graph_index_cache": self.graph_indices.stats(),
        }

    # ------------------------------------------------------------------
    # optimizer statistics
    # ------------------------------------------------------------------
    def analyze(self, table: Optional[str] = None) -> list[str]:
        """Collect optimizer statistics (the ``ANALYZE`` statement);
        returns the names of the tables analyzed."""
        names = [table] if table is not None else self.catalog.table_names()
        analyzed = []
        with self._read_locks(set(names)):
            for name in names:
                if self.catalog.has(name):  # tolerate concurrent DROPs
                    self.stats.analyze(name)
                    analyzed.append(name)
        return analyzed

    def table_stats(self):
        """Recorded per-table statistics (the ``\\stats`` surface)."""
        return self.stats.describe()

    # ------------------------------------------------------------------
    # convenience (non-SQL) helpers
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: list[tuple[str, DataType]]) -> Table:
        return self.catalog.create_table(name, Schema(columns))

    def insert_rows(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.catalog.get(table).insert_rows(rows)

    def table(self, name: str) -> Table:
        return self.catalog.get(name)

    def lookup_graph_index(self, table, src_col, dst_col) -> Optional[GraphLibrary]:
        return self.graph_indices.lookup(table, src_col, dst_col)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist all tables and graph-index definitions to a directory."""
        from .persist import save_database

        save_database(self, directory)

    @staticmethod
    def load(directory: str) -> "Database":
        """Load a database previously written by :meth:`save`."""
        from .persist import load_database

        return load_database(directory)

    # ------------------------------------------------------------------
    # statement-scoped locking
    # ------------------------------------------------------------------
    def _locks(self, read: set[str], write: set[str] = frozenset()) -> LockSet:
        """A :class:`LockSet` over the named tables (write wins over
        read); tables dropped since analysis are simply skipped — the
        executor will raise its regular CatalogError."""
        locks = {}
        wanted_writes = {name.lower() for name in write}
        for name in {n.lower() for n in read} | wanted_writes:
            if self.catalog.has(name):
                locks[name] = self.catalog.get(name).lock
        return LockSet(locks, wanted_writes & set(locks))

    def _read_locks(self, tables: set[str]) -> LockSet:
        return self._locks(tables)

    def _execute_query_plan(
        self, plan, params: tuple, tables: Optional[set[str]] = None
    ) -> Result:
        if tables is None:
            tables = referenced_tables(plan)
        with self._read_locks(tables):
            ctx = ExecContext(self, params)
            return Result(execute_plan(plan, ctx))

    # ------------------------------------------------------------------
    def _run_bound(self, bound, params: tuple) -> Result:
        from .session import expr_tables

        if isinstance(bound, BoundQuery):
            return self._execute_query_plan(self._optimize(bound.plan), params)
        if isinstance(bound, BoundExplain):
            text = (
                explain_physical(self._optimize(bound.plan))
                + "\n"
                + self._cache_footer()
            )
            return Result.from_text_lines("plan", text.splitlines())
        if isinstance(bound, BoundCreateTable):
            self.catalog.create_table(bound.name, Schema(list(bound.columns)))
            return Result(None, rowcount=0)
        if isinstance(bound, BoundDropTable):
            # take the table's write lock first: in-flight statements
            # holding it finish before the table disappears under them
            with self._locks(set(), {bound.name}):
                self.catalog.drop_table(bound.name)
            self.plan_cache.invalidate_table(bound.name)
            self.graph_indices.drop_for_table(bound.name)
            self.stats.drop(bound.name)
            return Result(None, rowcount=0)
        if isinstance(bound, BoundAnalyze):
            return Result(None, rowcount=len(self.analyze(bound.table)))
        if isinstance(bound, BoundInsert):
            reads = referenced_tables(bound.plan)
            with self._locks(reads, {bound.table}):
                return self._run_insert(bound, self._optimize(bound.plan), params)
        if isinstance(bound, BoundCreateTableAs):
            with self._read_locks(referenced_tables(bound.plan)):
                return self._run_create_table_as(bound, params)
        if isinstance(bound, BoundDelete):
            reads = referenced_tables(bound.scan)
            if bound.predicate is not None:
                reads |= expr_tables(bound.predicate)
            with self._locks(reads, {bound.table}):
                return self._run_delete(bound, params)
        if isinstance(bound, BoundUpdate):
            reads = referenced_tables(bound.scan)
            if bound.predicate is not None:
                reads |= expr_tables(bound.predicate)
            for _, expr in bound.assignments:
                reads |= expr_tables(expr)
            with self._locks(reads, {bound.table}):
                return self._run_update(bound, params)
        if isinstance(bound, BoundCreateGraphIndex):
            self.graph_indices.create(
                bound.name, bound.table, bound.src_col, bound.dst_col
            )
            # build eagerly so the first query benefits
            with self._read_locks({bound.table}):
                self.graph_indices.lookup(bound.table, bound.src_col, bound.dst_col)
            return Result(None, rowcount=0)
        if isinstance(bound, BoundDropGraphIndex):
            self.graph_indices.drop(bound.name)
            return Result(None, rowcount=0)
        raise ExecutionError(f"cannot execute {type(bound).__name__}")

    def _run_create_table_as(self, bound: BoundCreateTableAs, params: tuple) -> Result:
        ctx = ExecContext(self, params)
        batch = execute_plan(self._optimize(bound.plan), ctx)
        # derive the schema from the materialized result so columns whose
        # static type was unknown (host parameters) get their runtime type
        columns = []
        for plan_col, col in zip(batch.schema, batch.columns):
            type_ = plan_col.type or col.type
            if type_ == DataType.NESTED_TABLE:
                raise ExecutionError(
                    "nested tables cannot be stored in a physical table "
                    "(flatten with UNNEST first)"
                )
            columns.append((plan_col.name, type_))
        # fill before publishing (see Catalog.publish_table for why)
        table = Table(bound.name, Schema(columns))
        table.insert_columns(
            [
                col if col.type == type_ else col.cast(type_)
                for col, (_, type_) in zip(batch.columns, columns)
            ]
        )
        self.catalog.publish_table(table)
        return Result(None, rowcount=batch.num_rows)

    def _run_delete(self, bound: BoundDelete, params: tuple) -> Result:
        table = self.catalog.get(bound.table)
        ctx = ExecContext(self, params)
        batch = execute_plan(bound.scan, ctx)
        if bound.predicate is None:
            deleted = batch.num_rows
            table.truncate()
            return Result(None, rowcount=deleted)
        import numpy as np

        predicate = ctx.eval(bound.predicate, batch)
        drop = predicate.data.astype(np.bool_)
        if predicate.mask is not None:
            drop = drop & ~predicate.mask
        table.replace_columns([c.filter(~drop) for c in batch.columns])
        return Result(None, rowcount=int(drop.sum()))

    def _run_update(self, bound: BoundUpdate, params: tuple) -> Result:
        import numpy as np

        table = self.catalog.get(bound.table)
        ctx = ExecContext(self, params)
        batch = execute_plan(bound.scan, ctx)
        if bound.predicate is not None:
            predicate = ctx.eval(bound.predicate, batch)
            hit = predicate.data.astype(np.bool_)
            if predicate.mask is not None:
                hit = hit & ~predicate.mask
        else:
            hit = np.ones(batch.num_rows, dtype=np.bool_)
        new_columns = list(batch.columns)
        for position, expr in bound.assignments:
            declared = table.schema.columns[position].type
            fresh = ctx.eval(expr, batch)
            if fresh.type != declared:
                fresh = fresh.cast(declared)
            old = new_columns[position]
            data = old.data.copy()
            data[hit] = fresh.data[hit]
            mask = old.null_mask().copy()
            mask[hit] = fresh.null_mask()[hit]
            new_columns[position] = Column(declared, data, mask if mask.any() else None)
        table.replace_columns(new_columns)
        return Result(None, rowcount=int(hit.sum()))

    def _run_insert(self, bound: BoundInsert, plan, params: tuple) -> Result:
        table = self.catalog.get(bound.table)
        ctx = ExecContext(self, params)
        batch = execute_plan(plan, ctx)
        incoming = batch.to_rows()
        if bound.columns:
            positions = [table.schema.index_of(c) for c in bound.columns]
            width = len(table.schema)
            rows = []
            for row in incoming:
                full: list[Any] = [None] * width
                for position, value in zip(positions, row):
                    full[position] = value
                rows.append(tuple(full))
        else:
            rows = incoming
        count = table.insert_rows(rows)
        return Result(None, rowcount=count)


def connect(**kwargs: Any) -> Database:
    """Create a fresh in-memory database (DB-API-flavoured spelling).

    Keyword arguments are forwarded to :class:`Database`
    (``plan_cache_capacity``, ``graph_cache_capacity``,
    ``path_workers``).  To share one database between threads, call
    :meth:`Database.connect` on the instance to open per-thread
    :class:`~repro.session.Session` cursors.
    """
    return Database(**kwargs)


__all__ = [
    "Database",
    "Result",
    "GraphIndexManager",
    "Session",
    "connect",
    "NestedTableValue",
    "days_to_date",
]
