"""Public API: an embedded database speaking the extended SQL dialect.

Typical use::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE friends (src INT, dst INT, weight DOUBLE)")
    db.execute("INSERT INTO friends VALUES (1, 2, 0.5), (2, 3, 2.0)")
    result = db.execute(
        "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)",
        (1, 3),
    )
    print(result.rows())   # [(2,)]

Shortest-path queries follow the paper's syntax: ``REACHES ... OVER ...
EDGE (S, D)`` in WHERE, ``CHEAPEST SUM(e: expr)`` (optionally
``AS (cost, path)``) in SELECT, and ``UNNEST(path)`` in FROM.

Concurrency and caching
-----------------------
A :class:`Database` is safe to share across threads.  Statements acquire
per-table reader/writer locks, so SELECTs run concurrently while DML
gets exclusive access to the tables it writes.  The idiomatic
multi-threaded shape is one :class:`~repro.session.Session` per thread::

    db = Database()
    with db.connect() as session:
        stmt = session.prepare("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? "
                               "OVER friends EDGE (src, dst)")
        stmt.execute((1, 3))   # plan-cache hit on every re-execution

Two caches sit behind the SQL surface, both thread-safe, LRU-bounded and
invalidated by DML/DDL on the tables they depend on:

* the **plan cache** (``plan_cache_capacity``, default 128) keyed on SQL
  text — repeat executions skip parse → bind → rewrite; hit/miss
  counters appear in ``EXPLAIN`` output and profiler reports;
* the **graph-index cache** inside :class:`GraphIndexManager`
  (``graph_cache_capacity``, default 16) holding prepared domain+CSR
  structures for ``CREATE GRAPH INDEX`` definitions.

``path_workers`` ("auto" by default) controls how many threads the graph
runtime uses to partition large shortest-path batches; see
:meth:`repro.graph.GraphLibrary.solve_encoded`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from contextlib import nullcontext
from typing import Any, Iterable, Optional, Sequence

from .errors import (
    CatalogError,
    DatabaseClosedError,
    ExecutionError,
    ReproError,
    TransactionConflictError,
    TransactionError,
)
from .exec import graph_ops  # noqa: F401 - registers the graph operators
from .exec.batch import Batch
from .exec.kernels import KernelCounters
from .exec.operators import ExecContext, execute_plan
from .exec.parallel import ExecPool
from .envutil import env_int
from .graph import GraphLibrary, GraphOverlayState, edge_valid_mask
from .nested import NestedTableValue
from .plan import (
    Binder,
    BoundAnalyze,
    BoundBegin,
    BoundCommit,
    BoundRollback,
    BoundCopy,
    BoundCreateGraphIndex,
    BoundCreateTable,
    BoundCreateTableAs,
    BoundDelete,
    BoundDropGraphIndex,
    BoundDropTable,
    BoundExplain,
    BoundInsert,
    BoundQuery,
    BoundUpdate,
    explain_physical,
    optimize,
)
from .session import PlanCache, Session, Transaction, referenced_tables
from .sql import parse_script, parse_statement
from .sql.normalize import merge_params, normalize_statement
from .storage import (
    TXN_VERSION_BASE,
    Catalog,
    Column,
    DataType,
    LockSet,
    Schema,
    Snapshot,
    StatsManager,
    StorageCounters,
    Table,
    TableVersion,
    WriteInfo,
    build_appended_columns,
    bulk_columns,
    concat_for_append,
    days_to_date,
    encode_columns,
    factorize_counters,
    read_csv_vectors,
    read_npz_vectors,
)
from .storage.spill import SpillCounters, SpillManager


#: Leading words of the statement kinds the plan cache can hold; other
#: statements (UPDATE, DELETE, DDL, EXPLAIN, ANALYZE) skip the literal
#: normalization pass entirely — they could never be served from the
#: normalized index, so tokenizing them for it is wasted work.
_CACHEABLE_PREFIXES = ("SELECT", "WITH", "VALUES", "INSERT", "(")


def _cacheable_statement(sql: str) -> bool:
    head = sql.lstrip()[:8].upper()
    return head.startswith(_CACHEABLE_PREFIXES)


class Result:
    """The outcome of one statement.

    Queries expose rows via :meth:`rows` / iteration; DDL/DML expose
    ``rowcount``.  DATE values come back as :class:`datetime.date`; paths
    come back as :class:`~repro.nested.NestedTableValue` with
    ``to_rows()`` / ``to_dicts()`` accessors (flatten them in SQL with
    UNNEST when you want plain tuples).
    """

    def __init__(self, batch: Optional[Batch], rowcount: int = -1):
        self._batch = batch
        self.rowcount = rowcount

    @staticmethod
    def from_text_lines(column_name: str, lines: list[str]) -> "Result":
        """A single-VARCHAR-column result (used by EXPLAIN)."""
        from .plan.logical import PlanColumn

        column = Column.from_values(DataType.VARCHAR, list(lines))
        schema = (PlanColumn(0, column_name, DataType.VARCHAR),)
        return Result(Batch(schema, [column]))

    @property
    def is_query(self) -> bool:
        return self._batch is not None

    @property
    def column_names(self) -> list[str]:
        if self._batch is None:
            return []
        return [c.name for c in self._batch.schema]

    def __len__(self) -> int:
        return self._batch.num_rows if self._batch is not None else 0

    def rows(self) -> list[tuple]:
        """All result rows as Python tuples."""
        if self._batch is None:
            return []
        decoded = []
        for col, plan_col in zip(self._batch.columns, self._batch.schema):
            decoded.append(col.to_pylist(decode_dates=True))
        return [
            tuple(col[i] for col in decoded) for i in range(self._batch.num_rows)
        ]

    fetchall = rows

    def __iter__(self):
        return iter(self.rows())

    def scalar(self) -> Any:
        """The single value of a 1x1 result (None for an empty result)."""
        rows = self.rows()
        if not rows:
            return None
        if len(rows) > 1 or len(rows[0]) != 1:
            raise ExecutionError("scalar() requires a single-row, single-column result")
        return rows[0][0]

    def to_dicts(self) -> list[dict]:
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._batch is None:
            return f"<Result rowcount={self.rowcount}>"
        return f"<Result {self._batch.num_rows} rows: {', '.join(self.column_names)}>"


class GraphIndexManager:
    """The paper's Section-6 'graph indices': prepared CSRs keyed on the
    edge table.

    The cache of built libraries is thread-safe, capacity-bounded (LRU)
    and *versioned*: every entry records the edge table's version counter
    at build time.  Without overlays, entries are dropped when DML/DDL
    touches the underlying table (:meth:`invalidate_table`, wired to the
    table write listeners by :class:`Database`) and re-validated against
    the live version on every lookup as a backstop, so a stale CSR is
    never served.

    With ``overlay=True`` (the ``Database(graph_overlay=...)`` knob) the
    manager instead maintains a :class:`~repro.graph.overlay.GraphOverlayState`
    per cached index: committed appends/deletes/updates fold into a CSR
    delta (:meth:`apply_write`), lookups serve base+overlay merged
    libraries, and once the delta crosses ``compact_threshold``
    operations the index compacts back into a canonical fresh build —
    on the next lookup (``eager``), in the Database's background
    compaction thread (``background``), or never (``off``).  Writes the
    overlay cannot interpret (truncate, whole-table replace, commits of
    multi-statement transactions, endpoint-column updates) fall back to
    the historical invalidate-and-rebuild path, so a stale or wrong CSR
    is still never served.
    """

    def __init__(
        self,
        catalog: Catalog,
        capacity: int = 16,
        *,
        overlay: bool = False,
        compact_threshold: int = 8192,
        compact_mode: str = "eager",
        compact_callback=None,
    ):
        self._catalog = catalog
        self.capacity = max(1, int(capacity))
        self._mutex = threading.RLock()
        self._specs: dict[str, tuple[str, str, str]] = {}
        self._cache: "OrderedDict[tuple[str, str, str], tuple[int, GraphLibrary]]" = (
            OrderedDict()
        )
        self.overlay_enabled = bool(overlay)
        self.compact_threshold = max(1, int(compact_threshold))
        self.compact_mode = compact_mode
        #: Background-mode hook: called (outside the mutex) with a spec
        #: whose delta crossed the threshold; owned by the Database.
        self._compact_callback = compact_callback
        #: spec -> GraphOverlayState for every cached base build; kept in
        #: lockstep with ``_cache`` (evicting one drops the other).
        self._states: "dict[tuple[str, str, str], GraphOverlayState]" = {}
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0
        self.invalidations = 0
        self.overlay_hits = 0
        self.overlay_applied = 0
        self.overlay_merges = 0

    def create(self, name: str, table: str, src_col: str, dst_col: str) -> None:
        schema = self._catalog.get(table).schema
        for column in (src_col, dst_col):
            if not schema.has(column):
                raise CatalogError(
                    f"table {table!r} has no column {column!r} for graph index"
                )
        with self._mutex:
            if name in self._specs:
                raise CatalogError(f"graph index already exists: {name!r}")
            self._specs[name] = (table.lower(), src_col.lower(), dst_col.lower())

    def drop(self, name: str) -> None:
        with self._mutex:
            try:
                spec = self._specs.pop(name)
            except KeyError:
                raise CatalogError(f"unknown graph index: {name!r}") from None
            if spec not in self._specs.values():
                self._cache.pop(spec, None)
                self._states.pop(spec, None)

    def names(self) -> list[str]:
        with self._mutex:
            return sorted(self._specs)

    def specs(self) -> dict[str, tuple[str, str, str]]:
        """name -> (table, src column, dst column), for persistence."""
        with self._mutex:
            return dict(self._specs)

    def cached_library(
        self, name: str, version_id: int
    ) -> Optional[GraphLibrary]:
        """The already-built library of index ``name``, but only when it
        was built from exactly table version ``version_id`` — a pure
        cache peek (no build, no LRU reordering), for the persistence
        layer: ``save()`` serializes the CSRs that exist, it never pays
        a build or evicts hot entries for an index nobody queried."""
        with self._mutex:
            spec = self._specs.get(name)
            if spec is None:  # pragma: no cover - defensive
                return None
            cached = self._cache.get(spec)
            if cached is not None and cached[0] == version_id:
                return cached[1]
            return None

    def seed(self, name: str, library: GraphLibrary) -> None:
        """Install a pre-built library for index ``name``, keyed to the
        table's *current* committed version — the ``load()`` path that
        restores persisted CSRs so the first graph query after a reload
        skips the build entirely."""
        with self._mutex:
            spec = self._specs.get(name)
            if spec is None:  # pragma: no cover - defensive
                return
            version = self._catalog.get(spec[0]).current()
            self._cache[spec] = (version.version_id, library)
            self._cache.move_to_end(spec)
            self._states.pop(spec, None)
            self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        """LRU-evict cache entries past capacity (mutex held), dropping
        the paired overlay state with each."""
        while len(self._cache) > self.capacity:
            spec, _ = self._cache.popitem(last=False)
            self._states.pop(spec, None)
            self.evictions += 1

    def clear_cache(self) -> None:
        """Drop every cached library (the :meth:`Database.close` path:
        a cached CSR pins the table version it was built from — clearing
        releases those references; index *definitions* survive)."""
        with self._mutex:
            self._cache.clear()
            self._states.clear()

    def invalidate_table(self, table: str) -> None:
        """Drop every cached library built over ``table`` (DML/DDL hook)."""
        key = table.lower()
        with self._mutex:
            stale = [spec for spec in self._cache if spec[0] == key]
            for spec in stale:
                del self._cache[spec]
                self._states.pop(spec, None)
            self.invalidations += len(stale)

    def drop_for_table(self, table: str) -> None:
        """Drop the index *definitions* over ``table`` along with their
        cached libraries (DROP TABLE hook) — an orphaned spec would make
        a later :meth:`Database.save`/``load`` round-trip fail on the
        missing table."""
        key = table.lower()
        with self._mutex:
            for name in [n for n, s in self._specs.items() if s[0] == key]:
                del self._specs[name]
            stale = [spec for spec in self._cache if spec[0] == key]
            for spec in stale:
                del self._cache[spec]
                self._states.pop(spec, None)
            self.invalidations += len(stale)

    # ------------------------------------------------------------------
    # incremental maintenance (overlay mode)
    # ------------------------------------------------------------------
    def apply_write(self, table: Table, info: WriteInfo) -> None:
        """Fold one committed mutation into the overlay state of every
        index over ``table`` (the overlay-mode write-listener hook).

        A write the overlay cannot interpret — or a table with a cached
        build but no state — degrades to invalidation: the next lookup
        rebuilds from scratch, exactly like the non-overlay path.
        """
        key = table.name
        with self._mutex:
            specs = [s for s in set(self._specs.values()) if s[0] == key]
            if not specs:
                return
            version = table.current()
            over_threshold = []
            for spec in specs:
                state = self._states.get(spec)
                if state is None:
                    if self._cache.pop(spec, None) is not None:
                        self.invalidations += 1
                    continue
                ok = False
                try:
                    with state.lock:
                        if info.kind == "append":
                            ok = state.apply_append(
                                version,
                                version.column(spec[1]),
                                version.column(spec[2]),
                                info.appended,
                            )
                        elif (
                            info.kind == "delete"
                            and info.dropped_rows is not None
                        ):
                            ok = state.apply_delete(version, info.dropped_rows)
                        elif info.kind == "update":
                            ok = state.apply_update(
                                version, info.columns, (spec[1], spec[2])
                            )
                        if ok:
                            over_threshold_now = (
                                state.delta_size >= self.compact_threshold
                            )
                except Exception:
                    ok = False
                if not ok:
                    self._states.pop(spec, None)
                    self._cache.pop(spec, None)
                    self.invalidations += 1
                    continue
                self.overlay_applied += 1
                if over_threshold_now:
                    over_threshold.append(spec)
            callback = self._compact_callback
        if callback is not None and self.compact_mode == "background":
            for spec in over_threshold:
                callback(spec)

    def compact(self, spec: tuple) -> bool:
        """Merge ``spec``'s overlay into a fresh canonical build (the
        background-compaction entry point).  Returns True when a new
        base was installed."""
        with self._mutex:
            if spec not in self._specs.values():
                return False
            state = self._states.get(spec)
            if state is None:
                return False
        try:
            version = self._catalog.get(spec[0]).current()
        except CatalogError:
            return False
        with state.lock:
            if (
                state.applied_version != version.version_id
                or state.delta_size == 0
            ):
                return False
        library, valid = self._build_library(version, spec[1], spec[2])
        self._install_build(spec, version, library, valid, compacted=True)
        return True

    @staticmethod
    def _build_library(
        version: TableVersion, src_col: str, dst_col: str
    ) -> tuple[GraphLibrary, "Any"]:
        """A canonical fresh build from an immutable table version (run
        outside the mutex: CSR construction can be slow and must not
        serialize lookups of other indices)."""
        src = version.column(src_col)
        dst = version.column(dst_col)
        valid = ~(src.null_mask() | dst.null_mask())
        return GraphLibrary(src.data[valid], dst.data[valid]), valid

    def _install_build(
        self,
        spec: tuple,
        version: TableVersion,
        library: GraphLibrary,
        valid,
        compacted: bool = False,
    ) -> None:
        """Cache a fresh build (and, in overlay mode, its new state)."""
        with self._mutex:
            self.builds += 1
            cached = self._cache.get(spec)
            if version.version_id < TXN_VERSION_BASE and (
                cached is None or cached[0] <= version.version_id
            ):
                # never cache transaction-private (uncommitted) builds,
                # and never let an old-snapshot build clobber a fresher
                # cached CSR (a long transaction would otherwise thrash
                # the slot against current-version queries)
                self._cache[spec] = (version.version_id, library)
                self._cache.move_to_end(spec)
                if self.overlay_enabled:
                    existing = self._states.get(spec)
                    if (
                        existing is None
                        or existing.applied_version <= version.version_id
                    ):
                        self._states[spec] = GraphOverlayState(
                            library, version.version_id, valid
                        )
                if compacted:
                    self.overlay_merges += 1
                self._evict_over_capacity()

    def library_for_save(
        self, name: str, version_id: int
    ) -> Optional[GraphLibrary]:
        """The library to persist for index ``name`` at table version
        ``version_id``, or None when nothing is cached (``save()`` never
        force-builds an index nobody queried).

        With a zero-delta overlay state the canonical base serves; a
        state carrying deltas is compacted first, since the on-disk
        format stores a sorted vertex dictionary and a tombstone-free
        CSR — the compaction also benefits every later query.
        """
        with self._mutex:
            spec = self._specs.get(name)
            if spec is None:  # pragma: no cover - defensive
                return None
            cached = self._cache.get(spec)
            if cached is not None and cached[0] == version_id:
                return cached[1]
            state = self._states.get(spec)
        if state is None:
            return None
        with state.lock:
            if state.applied_version != version_id:
                return None
            if state.delta_size == 0:
                return state.base
        try:
            version = self._catalog.get(spec[0]).current()
        except CatalogError:  # pragma: no cover - concurrent drop
            return None
        if version.version_id != version_id:
            return None
        library, valid = self._build_library(version, spec[1], spec[2])
        self._install_build(spec, version, library, valid, compacted=True)
        return library

    def overlay_info(self) -> dict:
        """Per-index overlay introspection for ``\\graph`` and tests."""
        with self._mutex:
            named = dict(self._specs)
            states = dict(self._states)
        indices = {}
        for name, spec in sorted(named.items()):
            state = states.get(spec)
            if state is None:
                indices[name] = None
            else:
                with state.lock:
                    indices[name] = state.describe()
        return {
            "enabled": self.overlay_enabled,
            "compact_threshold": self.compact_threshold,
            "compact_mode": self.compact_mode,
            "overlay_hits": self.overlay_hits,
            "overlay_applied": self.overlay_applied,
            "overlay_merges": self.overlay_merges,
            "indices": indices,
        }

    def lookup(
        self,
        table: str,
        src_col: str,
        dst_col: str,
        table_version: Optional[TableVersion] = None,
    ) -> Optional[GraphLibrary]:
        """A prepared library for (table, S, D), or None if not indexed.

        ``table_version`` pins the lookup to a snapshot's view of the
        edge table: the cached library is served only when it was built
        from exactly that version, and a rebuild reads the snapshot's
        immutable columns.  Without it the table's current committed
        version is used.  Rebuilds happen lazily whenever the requested
        version differs from the cached build.

        In overlay mode a state tracking the requested version serves
        its base (zero delta) or the base+overlay merged library — no
        rebuild after DML; a delta past ``compact_threshold`` compacts
        here first when ``compact_mode`` is ``eager``.
        """
        spec = (table.lower(), src_col.lower(), dst_col.lower())
        seed_library = None
        compacting = False
        with self._mutex:
            if spec not in self._specs.values():
                return None
            version = (
                table_version
                if table_version is not None
                else self._catalog.get(spec[0]).current()
            )
            state = self._states.get(spec) if self.overlay_enabled else None
            if state is not None:
                with state.lock:
                    library = state.library_for(version.version_id)
                    delta = state.delta_size
                if library is not None:
                    if delta < self.compact_threshold or self.compact_mode != "eager":
                        self.hits += 1
                        if delta:
                            self.overlay_hits += 1
                        if spec in self._cache:
                            self._cache.move_to_end(spec)
                        return library
                    compacting = True  # fall through to a canonical build
            if not compacting:
                cached = self._cache.get(spec)
                if cached is not None and cached[0] == version.version_id:
                    self._cache.move_to_end(spec)
                    self.hits += 1
                    if not (
                        self.overlay_enabled
                        and state is None
                        and version.version_id < TXN_VERSION_BASE
                    ):
                        return cached[1]
                    # a seeded/loaded build with no overlay state yet:
                    # create one so later DML maintains it incrementally
                    seed_library = cached[1]
                else:
                    self.misses += 1
        if seed_library is not None:
            valid = edge_valid_mask(
                version.column(src_col),
                version.column(dst_col),
                version.num_rows,
            )
            with self._mutex:
                cached = self._cache.get(spec)
                if (
                    cached is not None
                    and cached[0] == version.version_id
                    and spec not in self._states
                ):
                    self._states[spec] = GraphOverlayState(
                        seed_library, version.version_id, valid
                    )
            return seed_library
        # Build outside the mutex: CSR construction can be slow and must
        # not serialize lookups of other indices.  No locks at all — the
        # TableVersion is immutable, so the build can never observe a
        # half-applied write, and its version id keys the cache entry.
        library, valid = self._build_library(version, src_col, dst_col)
        self._install_build(spec, version, library, valid, compacted=compacting)
        return library

    def stats(self) -> dict[str, int]:
        with self._mutex:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
                "entries": len(self._cache),
                "capacity": self.capacity,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "overlay_enabled": self.overlay_enabled,
                "overlay_states": len(self._states),
                "overlay_hits": self.overlay_hits,
                "overlay_applied": self.overlay_applied,
                "overlay_merges": self.overlay_merges,
            }


class Appender:
    """A bulk-append channel for one table (DuckDB-appender flavoured).

    Obtained from :meth:`Database.appender` (or
    :meth:`~repro.session.Session.appender`).  Each :meth:`append` call
    takes whole **column vectors** — numpy arrays ride the vectorized
    ingest path, lists the chunked per-value coercion path — and commits
    them as ONE columnar batch: one new table version, zone maps extended
    over the tail, graph overlays fed the append delta.  No per-row
    Python loop anywhere.

    With a session whose transaction is open, appends buffer into the
    transaction (visible to its own statements, published on COMMIT,
    first-committer-wins unchanged); otherwise each append autocommits.

    Usage::

        app = db.appender("edges")
        app.append({"src": src_array, "dst": dst_array})
        app.append([src_list, dst_list, weights], columns=["src", "dst", "w"])
    """

    __slots__ = ("_database", "table", "_session", "closed")

    def __init__(self, database: "Database", table: str, session=None):
        self._database = database
        self.table = database.catalog.get(table).name
        self._session = session
        self.closed = False

    def append(self, values, columns: Optional[Sequence[str]] = None) -> int:
        """Append one columnar batch; returns the row count.

        ``values`` is a mapping of column name → vector, or a sequence
        of vectors aligned with ``columns`` (or the table's column
        order).  Missing columns fill with NULLs.
        """
        if self.closed:
            raise ExecutionError("appender is closed")
        db = self._database
        db._check_open()
        txn = db._active_transaction(self._session)
        if txn is not None:
            version = txn.snapshot.table_version(self.table)
            fresh = bulk_columns(
                version.schema, values, db.exec_pool.context(), columns
            )
            count = len(fresh[0]) if fresh else 0
            if count == 0:
                return 0
            combined = [
                concat_for_append(old, new)
                for old, new in zip(version.columns, fresh)
            ]
            txn.record_write(self.table, combined)
            return count
        with db._write_locks({self.table}):
            table = db.catalog.get(self.table)
            fresh = bulk_columns(
                table.schema, values, db.exec_pool.context(), columns
            )
            if not fresh or len(fresh[0]) == 0:
                return 0
            if db.wal is None:
                return table.insert_columns(fresh)
            # bulk batches log columnar (raw npy blobs), not row JSON
            with db.wal.mutex:
                lsn = db.wal.log_append(table.name, fresh)
                count = table.insert_columns(fresh)
        db.wal.sync(lsn)
        return count

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Row-tuple convenience: transpose into column vectors and
        :meth:`append` them (still one columnar commit)."""
        rows = list(rows)
        if not rows:
            return 0
        return self.append([list(column) for column in zip(*rows)])

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "Appender":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Appender table={self.table!r}>"


class Database:
    """An in-process, thread-safe database instance (catalog + executor).

    Parameters
    ----------
    plan_cache_capacity:
        LRU bound of the prepared-statement plan cache (SQL text → plan).
    graph_cache_capacity:
        LRU bound of the graph-index cache (built domain+CSR libraries).
    path_workers:
        Worker threads for large shortest-path batches: a positive int,
        or ``"auto"`` (respect ``REPRO_PATH_WORKERS`` / the CPU count).
        Small batches always run serially; see
        :meth:`repro.graph.GraphLibrary.solve_encoded`.
    optimizer:
        When True (default) statements run through the full cost-based
        optimizer (generalized filter pushdown, statistics-driven join
        reordering, hash-join build-side selection, projection pruning,
        graph-operator pushdown).  When False only the paper's legacy
        rewriter runs — the baseline for equivalence testing and
        benchmarks.
    parameterize:
        When True (default) plan-cache keys are additionally normalized
        (literals become parameters, :mod:`repro.sql.normalize`) so
        textually different statements share one cached plan.
    vectorized:
        When True (default) key-driven operators (DISTINCT, GROUP BY,
        equi-join probing, set operations, ORDER BY, recursive-CTE
        dedup) run on the factorized-key kernels of
        :mod:`repro.exec.kernels`; uncodifiable inputs fall back to the
        row-at-a-time paths automatically (counted, see
        :meth:`kernel_stats`).  When False every operator takes the
        original row-at-a-time path — the correctness oracle for the
        kernel fuzz tests and the baseline for ``BENCH_exec.json``.
    exec_workers:
        Kernel worker threads for morsel-driven parallel execution
        (:mod:`repro.exec.parallel`): a positive int, or ``"auto"``
        (respect ``REPRO_EXEC_WORKERS`` / the CPU count).  The pool is
        owned by the database and shared by every session.  Large
        key-driven operator inputs are split into fixed-size morsels
        and run across the pool with per-partition dictionary merge;
        results are bit-identical to ``exec_workers=1``, which runs the
        unchanged serial kernels (the oracle for the
        workers-equivalence suite).  Inputs below
        :data:`repro.exec.parallel.PARALLEL_MIN_ROWS` always run
        serially, so small queries pay no pool overhead.  Counters:
        :meth:`parallel_stats` / the shell's ``\\workers``.
    morsel_rows / parallel_min_rows:
        Tuning/testing overrides for the morsel size and the serial
        threshold (default the module constants).
    compression:
        When True (default) ANALYZE attaches *resting encodings*
        (dictionary, run-length, bit-packing — :mod:`repro.storage.encoding`)
        to columns where they pay off, builds per-morsel zone maps
        (:mod:`repro.storage.zonemap`) that scans consult to skip whole
        morsels under pushed-down filters, and :meth:`save` writes the
        encoded format-v4 image that :meth:`load` memory-maps lazily.
        Decode is transparent — every kernel and row path sees the same
        arrays — and results are bit-identical to ``compression=False``,
        which preserves the plain-array storage paths wholesale (the
        correctness oracle for ``tests/test_storage_compression.py``).
        Counters: :meth:`storage_stats` / the shell's ``\\storage``.
    graph_overlay:
        When True (default) committed DML on an edge table folds into a
        CSR delta overlay (:mod:`repro.graph.overlay`) instead of
        invalidating the cached graph index: appends extend the
        adjacency, deletes tombstone CSR slots, and path queries run on
        a base+overlay merged library — no full rebuild per write.  When
        False every committed write drops the cached CSR and the next
        query rebuilds from scratch, preserved wholesale as the
        correctness oracle for ``tests/test_graph_overlay.py``.
    graph_compact_threshold:
        Overlay delta size (appended edges + tombstones) at which an
        index compacts back into a canonical fresh CSR.
    graph_compact_mode:
        ``"eager"`` (default) compacts on the first lookup past the
        threshold; ``"background"`` compacts in a daemon thread owned by
        this database (lookups keep serving the merged overlay
        meanwhile); ``"off"`` never compacts (the overlay grows until a
        write it cannot interpret forces a rebuild).
    durability:
        ``"off"`` (default) keeps today's behavior exactly: no
        write-ahead log, durability only through explicit :meth:`save`.
        ``"commit"`` appends every committed write to the WAL
        (:mod:`repro.storage.wal`) and fsyncs before acknowledging;
        ``"batch"`` appends the same records but coalesces concurrent
        committers into one group-commit fsync.  Either way
        :meth:`save` becomes a checkpoint that rotates the log, and
        :meth:`open` replays the log over the last checkpoint image on
        startup.
    wal_dir:
        Where the log lives.  Direct construction with durability
        requires an explicit (empty or absent) directory; use
        :meth:`Database.open` for the common case — it derives
        ``<directory>.wal`` and *recovers* whatever is there.
    faults:
        A :class:`~repro.faults.FaultInjector` (or spec string/dict)
        arming named crashpoints on the WAL and checkpoint paths; None
        consults the ``REPRO_CRASHPOINT`` environment variable.  Test
        machinery — see :mod:`repro.faults`.
    memory_budget:
        Soft per-query working-memory target in bytes.  ``"auto"``
        (default) consults ``REPRO_MEMORY_BUDGET``; unset / ``None`` /
        ``<= 0`` means unlimited — today's fully materialized execution,
        byte for byte.  With a budget, scans stream morsels through
        fused filter/project/aggregate pipelines, grouped aggregation
        and equi-joins partition oversized inputs to spill files
        (:mod:`repro.storage.spill`), and ORDER BY falls back to an
        external merge sort.  Every budgeted path reuses the unchanged
        kernels per partition, so results are bit-identical to the
        unbudgeted oracle for any budget (the forced-budget fuzz suite,
        ``tests/test_memory_budget.py``).  Counters:
        :meth:`memory_stats` / the shell's ``\\memory``.
    """

    def __init__(
        self,
        *,
        plan_cache_capacity: int = 128,
        graph_cache_capacity: int = 16,
        path_workers: int | str | None = "auto",
        optimizer: bool = True,
        parameterize: bool = True,
        vectorized: bool = True,
        exec_workers: int | str | None = "auto",
        morsel_rows: Optional[int] = None,
        parallel_min_rows: Optional[int] = None,
        compression: bool = True,
        graph_overlay: bool = True,
        graph_compact_threshold: int = 8192,
        graph_compact_mode: str = "eager",
        durability: str = "off",
        wal_dir: Optional[str] = None,
        faults=None,
        memory_budget: int | str | None = "auto",
    ) -> None:
        if graph_compact_mode not in ("eager", "background", "off"):
            raise ValueError(
                "graph_compact_mode must be 'eager', 'background' or 'off', "
                f"got {graph_compact_mode!r}"
            )
        if durability not in ("off", "commit", "batch"):
            raise ValueError(
                "durability must be 'off', 'commit' or 'batch', "
                f"got {durability!r}"
            )
        self.catalog = Catalog()
        self.graph_overlay = bool(graph_overlay)
        self.graph_indices = GraphIndexManager(
            self.catalog,
            capacity=graph_cache_capacity,
            overlay=self.graph_overlay,
            compact_threshold=graph_compact_threshold,
            compact_mode=graph_compact_mode,
            compact_callback=self._schedule_graph_compaction,
        )
        #: Background graph-compaction worker state (lazily started;
        #: only used when ``graph_compact_mode="background"``).
        self._compact_cond = threading.Condition()
        self._compact_queue: "deque[tuple]" = deque()
        self._compact_pending: set = set()
        self._compact_thread: Optional[threading.Thread] = None
        self._compact_stop = False
        self.stats = StatsManager(self.catalog)
        self.plan_cache = PlanCache(
            self.catalog,
            capacity=plan_cache_capacity,
            stats_marker=lambda name: self.stats.marker(name),
        )
        self.path_workers = path_workers
        self.optimizer_enabled = bool(optimizer)
        self.parameterize = bool(parameterize)
        self.vectorized = bool(vectorized)
        self.kernel_counters = KernelCounters()
        #: Compressed-storage knob: when True (default), ANALYZE and
        #: save() attach resting encodings (dict/RLE/bit-pack) to
        #: columns and scans consult per-morsel zone maps to skip
        #: morsels under pushed-down filters.  False preserves the
        #: plain-array storage paths wholesale — the correctness oracle
        #: for tests/test_storage_compression.py.
        self.compression = bool(compression)
        self.storage_counters = StorageCounters()
        #: Memory-budgeted execution knob (bytes).  ``None`` (the
        #: default, also reachable with ``memory_budget<=0`` or an unset
        #: ``REPRO_MEMORY_BUDGET``) keeps every operator on its fully
        #: materialized path — the bit-identical oracle.  A positive
        #: budget turns on streaming scans and lets grouped
        #: aggregation, equi-joins and ORDER BY spill partitioned
        #: inputs to disk instead of materializing over-budget working
        #: sets.  Results are identical for any budget.
        if memory_budget == "auto":
            memory_budget = env_int("REPRO_MEMORY_BUDGET", None)
        if memory_budget is not None:
            memory_budget = int(memory_budget)
            if memory_budget <= 0:
                memory_budget = None
        self.memory_budget = memory_budget
        self.spill_counters = SpillCounters()
        #: Owner of the temp files partitioned operators write; a
        #: directory-backed database swaps in a manager rooted under
        #: ``<dir>/spill`` on open (swept on recovery), anonymous
        #: databases use a ``repro-spill-*`` tempdir created on first
        #: spill.
        self.spill_manager = SpillManager(counters=self.spill_counters)
        #: Shared morsel-execution worker pool (lazily spawned; a
        #: 1-worker pool never starts a thread and keeps every kernel
        #: on its serial path).
        self.exec_pool = ExecPool(
            exec_workers, morsel_rows=morsel_rows, min_rows=parallel_min_rows
        )
        #: Serializes eager multi-table snapshot pinning against
        #: multi-table COMMIT installation, so a statement can never pin
        #: half of another transaction's committed write set.
        self._snapshot_mutex = threading.Lock()
        #: True once :meth:`close` ran; guarded by ``_close_mutex`` so
        #: concurrent closers tear down exactly once.
        self.closed = False
        self._close_mutex = threading.Lock()
        from .faults import FaultInjector

        self.durability = durability
        self.faults = FaultInjector.coerce(faults)
        #: Recovery summary (records replayed, tail truncated, ...) set
        #: by :meth:`open`; None for a database born fresh.
        self.recovery_info: Optional[dict] = None
        #: The write-ahead log, or None under ``durability="off"`` —
        #: in which case every write path below is byte-for-byte the
        #: pre-WAL code (the ``_wal_lock`` helper degrades to a
        #: nullcontext and no logging call runs).
        self.wal = None
        if durability != "off":
            if wal_dir is None:
                raise ValueError(
                    "a durable Database needs a wal_dir on direct "
                    "construction; use Database.open(directory, "
                    "durability=...) to pair the log with a database "
                    "directory (and recover whatever is already there)"
                )
            from .storage.wal import WriteAheadLog

            self.wal = WriteAheadLog.create(
                wal_dir, durability=durability, faults=self.faults
            )
        # every committed table mutation invalidates both caches and
        # refreshes the recorded statistics row counts
        self.catalog.add_write_listener(self._on_table_write)

    def _on_table_write(self, table: Table, info: WriteInfo) -> None:
        self.plan_cache.invalidate_writes(table.name)
        if self.graph_overlay:
            self.graph_indices.apply_write(table, info)
        else:
            self.graph_indices.invalidate_table(table.name)
        self.stats.on_table_write(table)

    # ------------------------------------------------------------------
    # background graph compaction
    # ------------------------------------------------------------------
    def _schedule_graph_compaction(self, spec: tuple) -> None:
        """Queue one index for background compaction (deduplicated);
        the worker thread starts lazily on the first request."""
        with self._compact_cond:
            if self.closed or self._compact_stop or spec in self._compact_pending:
                return
            self._compact_pending.add(spec)
            self._compact_queue.append(spec)
            if self._compact_thread is None:
                self._compact_thread = threading.Thread(
                    target=self._compaction_loop,
                    name="repro-graph-compact",
                    daemon=True,
                )
                self._compact_thread.start()
            self._compact_cond.notify()

    def _compaction_loop(self) -> None:
        while True:
            with self._compact_cond:
                while not self._compact_queue and not self._compact_stop:
                    self._compact_cond.wait()
                if not self._compact_queue:
                    return  # stop requested, queue drained
                spec = self._compact_queue.popleft()
                self._compact_pending.discard(spec)
            try:
                self.graph_indices.compact(spec)
            except ReproError:  # pragma: no cover - table racing away
                pass

    def _optimize(self, plan):
        """Lower a bound logical plan through the optimizer."""
        return optimize(
            plan, self.catalog, self.stats, enabled=self.optimizer_enabled
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear the engine down: join the kernel worker-pool threads and
        drop both caches (releasing every pinned table version they
        hold).  Idempotent, and safe to call while sessions still exist
        — a statement arriving after close raises a typed
        :class:`~repro.errors.DatabaseClosedError` instead of touching
        retired threads (the server's graceful-shutdown path closes the
        database while client sessions may still be connected).  The
        catalog itself stays readable so post-mortem inspection
        (``db.table(...)``) keeps working."""
        with self._close_mutex:
            if self.closed:
                return
            self.closed = True
        with self._compact_cond:
            self._compact_stop = True
            self._compact_queue.clear()
            self._compact_pending.clear()
            worker = self._compact_thread
            self._compact_cond.notify_all()
        if worker is not None:
            worker.join(timeout=10.0)
        self.exec_pool.shutdown(wait=True)
        self.plan_cache.clear()
        self.graph_indices.clear_cache()
        self.spill_manager.close()
        if self.wal is not None:
            # final fsync: a clean close loses nothing even under the
            # group-commit policy
            self.wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise DatabaseClosedError("database is closed")

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def connect(self) -> Session:
        """Open a :class:`~repro.session.Session` (cursor) on this
        database.  Create one per thread; all sessions share the catalog,
        the plan cache and the graph-index cache."""
        self._check_open()
        return Session(self)

    # ------------------------------------------------------------------
    # snapshots and transactions
    # ------------------------------------------------------------------
    def pin_snapshot(
        self,
        tables: Optional[Iterable[str]] = None,
        overlay: Optional[dict] = None,
    ) -> Snapshot:
        """Pin a :class:`~repro.storage.snapshot.Snapshot` — the read
        view of one statement or transaction.

        ``tables`` limits eager pinning to a statement's referenced set;
        None pins the whole catalog (a transaction's BEGIN).  Pinning
        happens under the snapshot mutex shared with COMMIT installation
        so a multi-table commit is observed either fully or not at all.
        Tables touched later are pinned lazily on first access.
        """
        snapshot = Snapshot(
            self.catalog, stats_marker=self.stats.marker, overlay=overlay
        )
        names = (
            self.catalog.table_names()
            if tables is None
            else [n.lower() for n in tables]
        )
        with self._snapshot_mutex:
            snapshot.pin(names)
        return snapshot

    def commit_transaction(self, txn: Transaction) -> None:
        """Publish a transaction's buffered writes (the COMMIT path).

        First-committer-wins conflict detection: all written tables are
        write-locked in sorted-name order (the statement layer's global
        lock order), every base version is compared against the live
        table, and only if all match are the buffered versions installed
        — atomically with respect to snapshot pinning.
        """
        if not txn.active:
            raise TransactionError("transaction is no longer active")
        txn.finish()
        names = sorted(txn.writes)
        if not names:
            return
        locks = {}
        for name in names:
            if not self.catalog.has(name):
                raise TransactionConflictError(
                    f"table {name!r} was dropped by a concurrent statement"
                )
            locks[name] = self.catalog.get(name).lock
        with LockSet(locks, set(names)):
            for name in names:
                if not self.catalog.has(name):
                    raise TransactionConflictError(
                        f"table {name!r} was dropped by a concurrent statement"
                    )
                live = self.catalog.get(name)
                if (
                    live.version != txn.base[name]
                    or live.schema.fingerprint()
                    != txn.writes[name].schema.fingerprint()
                ):
                    raise TransactionConflictError(
                        f"write-write conflict on table {name!r}: committed "
                        f"version {live.version} is newer than this "
                        f"transaction's base version {txn.base[name]}"
                    )
            with self._wal_lock():
                lsn = None
                if self.wal is not None:
                    # one atomic record for the whole write set, logged
                    # after the conflict checks and before the install
                    # becomes visible — recovery replays all or nothing
                    lsn = self.wal.log_txn(
                        (name, list(txn.writes[name].columns))
                        for name in names
                    )
                with self._snapshot_mutex:
                    for name in names:
                        self.catalog.get(name).replace_columns(
                            list(txn.writes[name].columns)
                        )
        self._wal_sync(lsn)

    # ------------------------------------------------------------------
    # write-ahead logging
    # ------------------------------------------------------------------
    def _wal_lock(self):
        """The WAL append+install mutex — or a no-op context under
        ``durability="off"``, keeping the off path identical to the
        pre-WAL engine (no lock, no logging)."""
        wal = self.wal
        return wal.mutex if wal is not None else nullcontext()

    def _wal_sync(self, lsn: Optional[int]) -> None:
        """Make the commit durable per the sync policy before it is
        acknowledged.  Runs *outside* the WAL mutex and the table write
        locks, so the fsync (the slow part) never serializes other
        committers — that's what group commit coalesces."""
        if lsn is not None and self.wal is not None:
            self.wal.sync(lsn)

    def wal_stats(self) -> dict:
        """WAL counters (appends, fsyncs, group-commit coalescing,
        checkpoints) plus the recovery summary — the ``\\storage``
        shell surface and the server's ``ping`` stats."""
        if self.wal is None:
            return {"enabled": False, "durability": self.durability}
        stats = self.wal.stats()
        stats["enabled"] = True
        if self.recovery_info is not None:
            stats["recovery"] = self.recovery_info
        return stats

    # ------------------------------------------------------------------
    # SQL entry points
    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        *,
        session: Optional[Session] = None,
    ) -> Result:
        """Execute one SQL statement.

        Queries and INSERTs are served through the plan cache: a hit
        (exact-text or literal-normalized) skips parse → bind →
        optimize entirely and goes straight to execution.

        ``session`` carries the transaction scope: inside an explicit
        transaction every statement reads the transaction's snapshot and
        buffers its writes; without a session (or outside BEGIN/COMMIT)
        the statement autocommits against its own snapshot.
        """
        self._check_open()
        txn = self._active_transaction(session)
        entry, bound, _, slots = self._lookup_or_plan(sql, txn=txn)
        params = tuple(params)
        if slots is not None:
            params = merge_params(slots, params)
        if entry is not None:
            return self._execute_cached(entry, params, txn)
        return self._run_bound(bound, params, session=session, txn=txn)

    @staticmethod
    def _active_transaction(session: Optional[Session]) -> Optional[Transaction]:
        if session is None:
            return None
        txn = session.transaction
        return txn if txn is not None and txn.active else None

    def _lookup_or_plan(self, sql: str, txn: Optional[Transaction] = None):
        """The single get-or-fill path of the plan cache.

        Returns ``(entry, bound, was_hit, slots)``: a cache entry
        (served or freshly stored) with ``bound`` None, or — for
        statements the cache does not hold (DDL, UPDATE, DELETE,
        EXPLAIN) — the bound statement with ``entry`` None.  ``slots``
        is non-None only for normalized-index hits: the parameter
        recipe interleaving this text's literals with caller params.

        Inside a transaction, cache entries are validated against (and
        recorded from) the transaction's snapshot rather than the live
        tables, so repeated statements keep hitting plans consistent
        with the transaction's view.
        """
        snapshot = txn.snapshot if txn is not None else None
        entry = self.plan_cache.get(sql, snapshot)
        if entry is not None:
            return entry, None, True, None
        normalized = (
            normalize_statement(sql)
            if self.parameterize and _cacheable_statement(sql)
            else None
        )
        if normalized is not None:
            key, slots = normalized
            entry = self.plan_cache.get_normalized(key, snapshot)
            if entry is not None:
                return entry, None, True, slots
        statement = parse_statement(sql)
        bound = Binder(self.catalog).bind_statement(statement)
        if isinstance(bound, BoundQuery):
            entry = self.plan_cache.put(
                sql, self._optimize(bound.plan), snapshot=snapshot
            )
        elif isinstance(bound, BoundInsert):
            entry = self.plan_cache.put_insert(
                sql, bound, self._optimize(bound.plan), snapshot=snapshot
            )
        else:
            return None, bound, False, None
        if normalized is not None and self.plan_cache.note_normalized_candidate(
            normalized[0], sql
        ):
            self._store_normalized(*normalized)
        return entry, None, False, None

    def _store_normalized(self, key: str, slots) -> None:
        """Plan the literal-normalized text and file it under the
        normalized index.  Best-effort: statements whose literals turn
        out to be load-bearing simply fail to bind and are skipped."""
        if self.plan_cache.contains_normalized(key):
            return
        try:
            statement = parse_statement(key)
            bound = Binder(self.catalog).bind_statement(statement)
            if isinstance(bound, BoundQuery):
                self.plan_cache.put(
                    key, self._optimize(bound.plan), normalized=True
                )
            elif isinstance(bound, BoundInsert):
                self.plan_cache.put_insert(
                    key, bound, self._optimize(bound.plan), normalized=True
                )
        except ReproError:
            pass

    def _execute_cached(
        self, entry, params: tuple, txn: Optional[Transaction] = None
    ) -> Result:
        # entry.deps already names every referenced table: no need to
        # re-walk the plan tree per execution on the cache-hit hot path
        if entry.kind == "insert":
            if txn is not None:
                return self._txn_insert(txn, entry.bound, entry.plan, params)
            with self._write_locks({entry.bound.table}):
                snapshot = self.pin_snapshot(entry.tables())
                return self._run_insert(entry.bound, entry.plan, params, snapshot)
        return self._execute_query_plan(
            entry.plan, params, tables=entry.tables(), txn=txn
        )

    def prepare_plan(self, sql: str):
        """Parse, bind, optimize and cache a statement without executing
        it (the back end of ``Session.prepare``).  Statements the cache
        cannot hold (DDL, UPDATE, DELETE) are validated but not cached."""
        self._check_open()
        entry, _, _, _ = self._lookup_or_plan(sql)
        return entry

    def executescript(
        self, sql: str, *, session: Optional[Session] = None
    ) -> list[Result]:
        """Execute a semicolon-separated list of statements (no params)."""
        self._check_open()
        results = []
        for stmt in parse_script(sql):
            bound = Binder(self.catalog).bind_statement(stmt)
            # re-resolve per statement: BEGIN/COMMIT inside the script
            # switch the transaction scope mid-stream
            txn = self._active_transaction(session)
            results.append(self._run_bound(bound, (), session=session, txn=txn))
        return results

    def profile(
        self,
        sql: str,
        params: Sequence[Any] = (),
        *,
        session: Optional[Session] = None,
    ) -> tuple[Result, str]:
        """Execute a query with per-operator timing instrumentation.

        Returns (result, report); the report is the plan tree annotated
        with self/total milliseconds and output row counts per operator
        (≥10x cardinality misestimates are flagged), plus a plan-cache /
        graph-index-cache summary footer.
        """
        from .exec.profiler import Profiler

        self._check_open()
        txn = self._active_transaction(session)
        entry, _, cache_hit, slots = self._lookup_or_plan(sql, txn=txn)
        if entry is None or entry.kind != "query":
            raise ExecutionError("profile() is only available for queries")
        params = tuple(params)
        if slots is not None:
            params = merge_params(slots, params)
        plan = entry.plan
        profiler = Profiler()
        snapshot = (
            txn.snapshot if txn is not None else self.pin_snapshot(entry.tables())
        )
        ctx = ExecContext(self, params, profiler=profiler, snapshot=snapshot)
        result = Result(execute_plan(plan, ctx))
        profiler.plan_cache_hit = cache_hit
        profiler.cache_stats = self.cache_stats()
        profiler.kernel_stats = self.kernel_stats()
        profiler.parallel_stats = self.parallel_stats()
        profiler.storage_stats = self.storage_stats()
        profiler.memory_stats = {
            **self.memory_stats(),
            "decisions": ctx.accountant.snapshot()["decisions"],
        }
        return result, profiler.render(plan)

    def explain(self, sql: str) -> str:
        """The optimized physical plan of a query (per-operator
        estimated rows and cumulative cost), as indented text, with a
        plan-cache counter footer (the EXPLAIN cache surface)."""
        entry, _, _, _ = self._lookup_or_plan(sql)
        if entry is None or entry.kind != "query":
            raise ExecutionError("EXPLAIN is only available for queries")
        return explain_physical(entry.plan) + "\n" + self._cache_footer()

    def _cache_footer(self) -> str:
        plan = self.plan_cache.stats()
        graph = self.graph_indices.stats()
        footer = (
            f"-- plan cache: hits={plan['hits']} misses={plan['misses']} "
            f"entries={plan['entries']}/{plan['capacity']}\n"
            f"-- graph index cache: hits={graph['hits']} "
            f"misses={graph['misses']} entries={graph['entries']}/"
            f"{graph['capacity']}"
        )
        if graph.get("overlay_enabled"):
            footer += (
                f"\n-- graph overlay: states={graph['overlay_states']} "
                f"hits={graph['overlay_hits']} "
                f"applied={graph['overlay_applied']} "
                f"merges={graph['overlay_merges']}"
            )
        if self.memory_budget is not None:
            mem = self.memory_stats()
            footer += (
                f"\n-- memory budget: {self.memory_budget} bytes "
                f"spills={mem['spills']} partitions={mem['partitions']} "
                f"streams={mem['streams']} sort_runs={mem['sort_runs']}"
            )
        dynamic = self.storage_counters.snapshot().get(
            "dynamic_zone_filters", {}
        )
        if dynamic:
            rendered = " ".join(
                f"{source}={count}" for source, count in sorted(dynamic.items())
            )
            footer += f"\n-- dynamic zone filters: {rendered}"
        return footer

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Counters of both caches, for monitoring and tests.

        ``plan_cache`` includes ``normalized_hits`` /
        ``normalized_entries``: statements served through the
        literal-normalized index (textually different, same shape).
        """
        return {
            "plan_cache": self.plan_cache.stats(),
            "graph_index_cache": self.graph_indices.stats(),
        }

    def kernel_stats(self) -> dict:
        """Cumulative vectorized-kernel counters: per-operation hit and
        fallback counts (``hits`` / ``fallbacks`` dicts plus
        ``hit_total`` / ``fallback_total``).  A fallback means an
        operator ran its row-at-a-time path because the key columns were
        not codifiable (or ``vectorized=False`` — then everything is
        simply uncounted).  ``fallback_reasons`` breaks every op's
        fallbacks down by cause (uncodifiable type vs kernel-less
        aggregate vs NaN sort key)."""
        return self.kernel_counters.snapshot()

    def parallel_stats(self) -> dict:
        """Morsel-driven execution counters of the shared kernel pool:
        worker/morsel configuration, parallel-vs-serial kernel decisions
        per op, and per-op morsel counts and timings (total seconds and
        max single-morsel milliseconds).  Surfaced by profile-report
        footers and the shell's ``\\workers`` command."""
        pool = self.exec_pool
        return {
            "workers": pool.workers,
            "morsel_rows": pool.morsel_rows,
            "parallel_min_rows": pool.min_rows,
            **pool.stats.snapshot(),
        }

    def storage_stats(self) -> dict:
        """Compressed-storage counters: whether compression is on, the
        zone-map scan counters (scans consulted, morsels total/skipped,
        per-table breakdown) and the factorize counters (full encodes vs
        resting-code / memo hits vs shared-dictionary joins).  Surfaced
        by profile-report footers and the shell's ``\\storage``
        command."""
        return {
            "compression": self.compression,
            **self.storage_counters.snapshot(),
            "factorize": factorize_counters.snapshot(),
            "spill": self.memory_stats(),
        }

    def memory_stats(self) -> dict:
        """Memory-budget counters: the configured budget (None =
        unlimited) plus the cumulative spill/stream totals — spill
        decisions taken, partitions and temp files written, bytes
        written/read through spill files, streamed pipelines and their
        morsel counts, external-sort runs and merges.  Surfaced by
        profile-report footers and the shell's ``\\memory`` command."""
        return {
            "memory_budget": self.memory_budget,
            **self.spill_counters.snapshot(),
        }

    def set_exec_workers(self, workers: int | str | None) -> int:
        """Resize the shared kernel pool (the ``\\workers exec`` shell
        surface).  The old pool is shut down without waiting (in-flight
        morsels finish on their threads); cumulative counters carry
        over.  Returns the effective worker count."""
        old = self.exec_pool
        fresh = ExecPool(
            workers, morsel_rows=old.morsel_rows, min_rows=old.min_rows
        )
        fresh.stats = old.stats
        self.exec_pool = fresh
        old.shutdown()
        return fresh.workers

    # ------------------------------------------------------------------
    # optimizer statistics
    # ------------------------------------------------------------------
    def analyze(
        self,
        table: Optional[str] = None,
        *,
        snapshot: Optional[Snapshot] = None,
    ) -> list[str]:
        """Collect optimizer statistics (the ``ANALYZE`` statement);
        returns the names of the tables analyzed.

        ANALYZE reads a snapshot (its own, or the enclosing
        transaction's) instead of taking read locks, so it never blocks
        writers however long the scan takes.  Statistics are shared
        global state, so only *committed* versions are analyzed — inside
        a transaction the snapshot's pinned committed view, never the
        uncommitted write overlay (whose contents may be rolled back).
        """
        names = [table.lower()] if table is not None else self.catalog.table_names()
        if snapshot is None:
            snapshot = self.pin_snapshot(names)
        analyzed = []
        for name in names:
            try:
                version = snapshot.committed_version(name)
            except CatalogError:
                continue  # tolerate concurrent DROPs
            if self.compression:
                # encode first: _analyze_column then reads distinct /
                # min / max straight off the resting dictionaries
                encode_columns(version)
                version.build_zone_maps()
            self.stats.analyze(name, version)
            analyzed.append(name)
        return analyzed

    def table_stats(self):
        """Recorded per-table statistics (the ``\\stats`` surface)."""
        return self.stats.describe()

    # ------------------------------------------------------------------
    # convenience (non-SQL) helpers
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: list[tuple[str, DataType]]) -> Table:
        return self.catalog.create_table(name, Schema(columns))

    def insert_rows(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        target = self.catalog.get(table)
        if self.wal is None:
            return target.insert_rows(rows)
        rows = list(rows)
        if not rows:
            return 0
        with self._write_locks({target.name}):
            version = target.current()
            combined = build_appended_columns(
                version.schema, version.columns, rows
            )
            with self.wal.mutex:
                lsn = self.wal.log_insert(target.name, rows)
                target.replace_columns(
                    combined, WriteInfo("append", appended=len(rows))
                )
        self.wal.sync(lsn)
        return len(rows)

    def appender(
        self, table: str, *, session: Optional[Session] = None
    ) -> Appender:
        """A bulk-append channel for ``table`` (see :class:`Appender`).

        Pass ``session`` to buffer appends into that session's open
        transaction instead of autocommitting each batch."""
        self._check_open()
        return Appender(self, table, session)

    def table(self, name: str) -> Table:
        return self.catalog.get(name)

    def lookup_graph_index(
        self, table, src_col, dst_col, table_version=None
    ) -> Optional[GraphLibrary]:
        return self.graph_indices.lookup(
            table, src_col, dst_col, table_version=table_version
        )

    def graph_overlay_info(self) -> dict:
        """Per-index overlay state (delta sizes, base versions) plus the
        manager-level overlay counters — the ``\\graph`` shell surface."""
        return self.graph_indices.overlay_info()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist all tables and graph-index definitions to a directory."""
        from .persist import save_database

        save_database(self, directory)

    @staticmethod
    def load(directory: str, **options) -> "Database":
        """Load a database previously written by :meth:`save`.

        Keyword options are forwarded to the :class:`Database`
        constructor (e.g. ``compression=False`` materializes every
        column eagerly to plain arrays instead of memory-mapping the
        encoded format-v4 files).  When a write-ahead log sits next to
        the image (``<directory>.wal``), its records are replayed over
        it — pass ``durability="commit"``/``"batch"`` to keep logging
        afterwards, see :meth:`open`."""
        from .persist import load_database

        return load_database(directory, **options)

    @classmethod
    def open(
        cls, directory: str, *, durability: str = "commit", **options
    ) -> "Database":
        """Open (or create) a durable database at ``directory``.

        The recovery entry point: loads the last checkpoint image if
        one exists, replays the paired write-ahead log
        (``<directory>.wal`` unless ``wal_dir`` overrides it) in commit
        order — truncating a torn tail rather than failing — and
        attaches a live log so further commits are durable.  A
        directory with neither image nor log starts fresh.  The
        recovery summary lands in :attr:`recovery_info`.
        """
        from .persist import open_database

        return open_database(directory, durability=durability, **options)

    # ------------------------------------------------------------------
    # statement-scoped locking (writers only — readers pin snapshots)
    # ------------------------------------------------------------------
    def _write_locks(self, tables: set[str]) -> LockSet:
        """A write :class:`LockSet` over the named tables (writers
        serialize per table among themselves); tables dropped since
        analysis are simply skipped — the executor will raise its
        regular CatalogError."""
        locks = {}
        for name in {n.lower() for n in tables}:
            if self.catalog.has(name):
                locks[name] = self.catalog.get(name).lock
        return LockSet(locks, set(locks))

    def _execute_query_plan(
        self,
        plan,
        params: tuple,
        tables: Optional[set[str]] = None,
        txn: Optional[Transaction] = None,
    ) -> Result:
        """Run a query plan lock-free against a pinned snapshot (the
        transaction's, or a fresh one covering the referenced tables)."""
        if txn is not None:
            snapshot = txn.snapshot
        else:
            if tables is None:
                tables = referenced_tables(plan)
            snapshot = self.pin_snapshot(tables)
        ctx = ExecContext(self, params, snapshot=snapshot)
        return Result(execute_plan(plan, ctx))

    # ------------------------------------------------------------------
    #: Bound statement kinds that mutate the catalog or index/stat
    #: definitions — rejected inside an explicit transaction (the write
    #: buffer holds table *data* versions, not catalog state).
    _DDL_BOUND = (
        BoundCreateTable,
        BoundDropTable,
        BoundCreateTableAs,
        BoundCreateGraphIndex,
        BoundDropGraphIndex,
    )

    def _run_bound(
        self,
        bound,
        params: tuple,
        session: Optional[Session] = None,
        txn: Optional[Transaction] = None,
    ) -> Result:
        from .session import expr_tables

        if isinstance(bound, BoundBegin):
            self._require_session(session, "BEGIN").begin()
            return Result(None, rowcount=0)
        if isinstance(bound, BoundCommit):
            self._require_session(session, "COMMIT").commit()
            return Result(None, rowcount=0)
        if isinstance(bound, BoundRollback):
            self._require_session(session, "ROLLBACK").rollback()
            return Result(None, rowcount=0)
        if txn is not None and isinstance(bound, self._DDL_BOUND):
            raise TransactionError(
                f"{type(bound).__name__[5:]} is not allowed inside a "
                "transaction; COMMIT or ROLLBACK first"
            )
        if isinstance(bound, BoundQuery):
            return self._execute_query_plan(
                self._optimize(bound.plan), params, txn=txn
            )
        if isinstance(bound, BoundExplain):
            text = (
                explain_physical(self._optimize(bound.plan))
                + "\n"
                + self._cache_footer()
            )
            return Result.from_text_lines("plan", text.splitlines())
        if isinstance(bound, BoundCreateTable):
            # DDL logs after the catalog op succeeds (a rejected CREATE
            # must leave no record), both under the WAL mutex so log
            # order always equals install order
            with self._wal_lock():
                table = self.catalog.create_table(
                    bound.name, Schema(list(bound.columns))
                )
                lsn = (
                    self.wal.log_create_table(table.name, table.schema)
                    if self.wal is not None
                    else None
                )
            self._wal_sync(lsn)
            return Result(None, rowcount=0)
        if isinstance(bound, BoundDropTable):
            # take the table's write lock first: in-flight writers
            # holding it finish before the table disappears under them
            # (lock-free readers keep their pinned versions regardless)
            with self._write_locks({bound.name}):
                with self._wal_lock():
                    self.catalog.drop_table(bound.name)
                    lsn = (
                        self.wal.log_simple("drop_table", table=bound.name)
                        if self.wal is not None
                        else None
                    )
            self.plan_cache.invalidate_table(bound.name)
            self.graph_indices.drop_for_table(bound.name)
            self.stats.drop(bound.name)
            self._wal_sync(lsn)
            return Result(None, rowcount=0)
        if isinstance(bound, BoundAnalyze):
            snapshot = txn.snapshot if txn is not None else None
            return Result(
                None, rowcount=len(self.analyze(bound.table, snapshot=snapshot))
            )
        if isinstance(bound, BoundInsert):
            plan = self._optimize(bound.plan)
            if txn is not None:
                return self._txn_insert(txn, bound, plan, params)
            with self._write_locks({bound.table}):
                snapshot = self.pin_snapshot(
                    referenced_tables(plan) | {bound.table}
                )
                return self._run_insert(bound, plan, params, snapshot)
        if isinstance(bound, BoundCopy):
            return self._run_copy(bound, txn)
        if isinstance(bound, BoundCreateTableAs):
            snapshot = self.pin_snapshot(referenced_tables(bound.plan))
            return self._run_create_table_as(bound, params, snapshot)
        if isinstance(bound, BoundDelete):
            reads = referenced_tables(bound.scan)
            if bound.predicate is not None:
                reads |= expr_tables(bound.predicate)
            if txn is not None:
                columns, count, _ = self._delete_columns(
                    bound, params, txn.snapshot
                )
                txn.record_write(bound.table, columns)
                return Result(None, rowcount=count)
            with self._write_locks({bound.table}):
                snapshot = self.pin_snapshot(reads | {bound.table})
                columns, count, dropped = self._delete_columns(
                    bound, params, snapshot
                )
                with self._wal_lock():
                    lsn = (
                        self.wal.log_delete(bound.table, dropped)
                        if self.wal is not None
                        else None
                    )
                    self.catalog.get(bound.table).replace_columns(
                        columns, WriteInfo("delete", dropped_rows=dropped)
                    )
            self._wal_sync(lsn)
            return Result(None, rowcount=count)
        if isinstance(bound, BoundUpdate):
            reads = referenced_tables(bound.scan)
            if bound.predicate is not None:
                reads |= expr_tables(bound.predicate)
            for _, expr in bound.assignments:
                reads |= expr_tables(expr)
            if txn is not None:
                columns, count = self._update_columns(bound, params, txn.snapshot)
                txn.record_write(bound.table, columns)
                return Result(None, rowcount=count)
            with self._write_locks({bound.table}):
                snapshot = self.pin_snapshot(reads | {bound.table})
                schema = snapshot.table_version(bound.table).schema
                touched = tuple(
                    schema.columns[position].name
                    for position, _ in bound.assignments
                )
                columns, count = self._update_columns(bound, params, snapshot)
                with self._wal_lock():
                    lsn = None
                    if self.wal is not None:
                        positions = sorted(
                            {position for position, _ in bound.assignments}
                        )
                        lsn = self.wal.log_update(
                            bound.table,
                            [schema.columns[p].name for p in positions],
                            [columns[p] for p in positions],
                        )
                    self.catalog.get(bound.table).replace_columns(
                        columns, WriteInfo("update", columns=touched)
                    )
            self._wal_sync(lsn)
            return Result(None, rowcount=count)
        if isinstance(bound, BoundCreateGraphIndex):
            with self._wal_lock():
                self.graph_indices.create(
                    bound.name, bound.table, bound.src_col, bound.dst_col
                )
                lsn = (
                    self.wal.log_simple(
                        "create_graph_index",
                        name=bound.name,
                        table=bound.table,
                        src=bound.src_col,
                        dst=bound.dst_col,
                    )
                    if self.wal is not None
                    else None
                )
            self._wal_sync(lsn)
            # build eagerly so the first query benefits (lock-free: the
            # build reads the table's current immutable version)
            self.graph_indices.lookup(bound.table, bound.src_col, bound.dst_col)
            return Result(None, rowcount=0)
        if isinstance(bound, BoundDropGraphIndex):
            with self._wal_lock():
                self.graph_indices.drop(bound.name)
                lsn = (
                    self.wal.log_simple("drop_graph_index", name=bound.name)
                    if self.wal is not None
                    else None
                )
            self._wal_sync(lsn)
            return Result(None, rowcount=0)
        raise ExecutionError(f"cannot execute {type(bound).__name__}")

    @staticmethod
    def _require_session(session: Optional[Session], what: str) -> Session:
        if session is None:
            raise TransactionError(
                f"{what} requires a session — use Database.connect() and "
                "execute transaction statements through it"
            )
        return session

    def _run_create_table_as(
        self, bound: BoundCreateTableAs, params: tuple, snapshot: Snapshot
    ) -> Result:
        ctx = ExecContext(self, params, snapshot=snapshot)
        batch = execute_plan(self._optimize(bound.plan), ctx)
        # derive the schema from the materialized result so columns whose
        # static type was unknown (host parameters) get their runtime type
        columns = []
        for plan_col, col in zip(batch.schema, batch.columns):
            type_ = plan_col.type or col.type
            if type_ == DataType.NESTED_TABLE:
                raise ExecutionError(
                    "nested tables cannot be stored in a physical table "
                    "(flatten with UNNEST first)"
                )
            columns.append((plan_col.name, type_))
        # fill before publishing (see Catalog.publish_table for why)
        table = Table(bound.name, Schema(columns))
        table.insert_columns(
            [
                col if col.type == type_ else col.cast(type_)
                for col, (_, type_) in zip(batch.columns, columns)
            ]
        )
        with self._wal_lock():
            self.catalog.publish_table(table)
            lsn = (
                self.wal.log_ctas(
                    table.name, table.schema, list(table.current().columns)
                )
                if self.wal is not None
                else None
            )
        self._wal_sync(lsn)
        return Result(None, rowcount=batch.num_rows)

    def _delete_columns(
        self, bound: BoundDelete, params: tuple, snapshot: Snapshot
    ) -> tuple[list[Column], int, "Any"]:
        """The surviving column set, deleted-row count and dropped
        positions (pre-delete row order — ``bound.scan`` is the raw
        unoptimized table scan, so batch rows align with table rows) of
        a DELETE, computed from the snapshot without touching the live
        table.  The dropped positions feed the graph overlay's delete
        tombstones."""
        import numpy as np

        ctx = ExecContext(self, params, snapshot=snapshot)
        batch = execute_plan(bound.scan, ctx)
        if bound.predicate is None:
            schema = snapshot.table_version(bound.table).schema
            return (
                [Column.empty(c.type) for c in schema],
                batch.num_rows,
                np.arange(batch.num_rows, dtype=np.int64),
            )
        predicate = ctx.eval(bound.predicate, batch)
        drop = predicate.data.astype(np.bool_)
        if predicate.mask is not None:
            drop = drop & ~predicate.mask
        return (
            [c.filter(~drop) for c in batch.columns],
            int(drop.sum()),
            np.flatnonzero(drop).astype(np.int64),
        )

    def _update_columns(
        self, bound: BoundUpdate, params: tuple, snapshot: Snapshot
    ) -> tuple[list[Column], int]:
        """The rewritten column set (and hit count) of an UPDATE,
        computed from the snapshot without touching the live table."""
        import numpy as np

        schema = snapshot.table_version(bound.table).schema
        ctx = ExecContext(self, params, snapshot=snapshot)
        batch = execute_plan(bound.scan, ctx)
        if bound.predicate is not None:
            predicate = ctx.eval(bound.predicate, batch)
            hit = predicate.data.astype(np.bool_)
            if predicate.mask is not None:
                hit = hit & ~predicate.mask
        else:
            hit = np.ones(batch.num_rows, dtype=np.bool_)
        new_columns = list(batch.columns)
        for position, expr in bound.assignments:
            declared = schema.columns[position].type
            fresh = ctx.eval(expr, batch)
            if fresh.type != declared:
                fresh = fresh.cast(declared)
            old = new_columns[position]
            data = old.data.copy()
            data[hit] = fresh.data[hit]
            mask = old.null_mask().copy()
            mask[hit] = fresh.null_mask()[hit]
            new_columns[position] = Column(declared, data, mask if mask.any() else None)
        return new_columns, int(hit.sum())

    def _insert_rows_for(
        self, bound: BoundInsert, plan, params: tuple, snapshot: Snapshot
    ) -> list[tuple]:
        """Materialize an INSERT's source rows (snapshot reads), widened
        to the target schema when an explicit column list was given."""
        schema = snapshot.table_version(bound.table).schema
        ctx = ExecContext(self, params, snapshot=snapshot)
        batch = execute_plan(plan, ctx)
        incoming = batch.to_rows()
        if not bound.columns:
            return incoming
        positions = [schema.index_of(c) for c in bound.columns]
        width = len(schema)
        rows = []
        for row in incoming:
            full: list[Any] = [None] * width
            for position, value in zip(positions, row):
                full[position] = value
            rows.append(tuple(full))
        return rows

    def _run_insert(
        self, bound: BoundInsert, plan, params: tuple, snapshot: Snapshot
    ) -> Result:
        rows = self._insert_rows_for(bound, plan, params, snapshot)
        table = self.catalog.get(bound.table)
        if self.wal is None or not rows:
            count = table.insert_rows(rows)
            return Result(None, rowcount=count)
        # validate + coerce *before* logging: a rejected INSERT must
        # not leave a record that recovery would replay.  The caller
        # holds the table's write lock, so current() is stable.
        version = table.current()
        combined = build_appended_columns(version.schema, version.columns, rows)
        with self.wal.mutex:
            lsn = self.wal.log_insert(table.name, rows)
            table.replace_columns(
                combined, WriteInfo("append", appended=len(rows))
            )
        self.wal.sync(lsn)
        return Result(None, rowcount=len(rows))

    def _txn_insert(
        self, txn: Transaction, bound: BoundInsert, plan, params: tuple
    ) -> Result:
        """Buffer an INSERT inside a transaction: append to the
        overlay's table version, never the live table."""
        rows = self._insert_rows_for(bound, plan, params, txn.snapshot)
        version = txn.snapshot.table_version(bound.table)
        columns = build_appended_columns(version.schema, version.columns, rows)
        txn.record_write(bound.table, columns)
        return Result(None, rowcount=len(rows))

    def _copy_vectors(self, bound: BoundCopy, schema: Schema):
        """Read a COPY statement's source file into per-column vectors."""
        try:
            if bound.format == "npz":
                vectors = read_npz_vectors(bound.path)
                if bound.columns:
                    allowed = set(bound.columns)
                    unknown = {str(k).lower() for k in vectors} - allowed
                    if unknown:
                        raise ExecutionError(
                            f"COPY: file columns {sorted(unknown)} are not "
                            "in the statement's column list"
                        )
                return vectors
            names = (
                list(bound.columns)
                if bound.columns
                else [c.name for c in schema]
            )
            types = [schema.columns[schema.index_of(n)].type for n in names]
            return read_csv_vectors(
                bound.path,
                types,
                header=bound.header,
                delimiter=bound.delimiter,
                pool=self.exec_pool,
            )
        except OSError as exc:
            raise ExecutionError(
                f"COPY: cannot read {bound.path!r}: {exc}"
            ) from None

    def _run_copy(self, bound: BoundCopy, txn: Optional[Transaction]) -> Result:
        """``COPY <table> FROM '<file>'`` — the bulk-ingest fast path.

        Reads the whole file into per-column vectors and commits them as
        ONE columnar batch through :func:`~repro.storage.bulk_columns`
        (morsel-parallel on the shared kernel pool): one new table
        version, zone maps extended over the appended tail, graph
        overlays fed the append delta.  Inside a transaction the batch
        buffers into the transaction's table version like any other DML
        (MVCC and first-committer-wins unchanged)."""
        if txn is not None:
            version = txn.snapshot.table_version(bound.table)
            vectors = self._copy_vectors(bound, version.schema)
            fresh = bulk_columns(
                version.schema,
                vectors,
                self.exec_pool.context(),
                bound.columns or None,
            )
            count = len(fresh[0]) if fresh else 0
            if count:
                combined = [
                    concat_for_append(old, new)
                    for old, new in zip(version.columns, fresh)
                ]
                txn.record_write(bound.table, combined)
            return Result(None, rowcount=count)
        with self._write_locks({bound.table}):
            table = self.catalog.get(bound.table)
            vectors = self._copy_vectors(bound, table.schema)
            fresh = bulk_columns(
                table.schema,
                vectors,
                self.exec_pool.context(),
                bound.columns or None,
            )
            if not fresh or len(fresh[0]) == 0:
                return Result(None, rowcount=0)
            if self.wal is None:
                return Result(None, rowcount=table.insert_columns(fresh))
            # the file's contents are logged, not its path: recovery
            # must not depend on the CSV still existing (or matching)
            with self.wal.mutex:
                lsn = self.wal.log_append(table.name, fresh)
                count = table.insert_columns(fresh)
        self.wal.sync(lsn)
        return Result(None, rowcount=count)


def connect(**kwargs: Any) -> Database:
    """Create a fresh in-memory database (DB-API-flavoured spelling).

    Keyword arguments are forwarded to :class:`Database`
    (``plan_cache_capacity``, ``graph_cache_capacity``,
    ``path_workers``).  To share one database between threads, call
    :meth:`Database.connect` on the instance to open per-thread
    :class:`~repro.session.Session` cursors.
    """
    return Database(**kwargs)


__all__ = [
    "Appender",
    "Database",
    "Result",
    "GraphIndexManager",
    "Session",
    "connect",
    "NestedTableValue",
    "days_to_date",
]
