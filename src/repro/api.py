"""Public API: an embedded database speaking the extended SQL dialect.

Typical use::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE friends (src INT, dst INT, weight DOUBLE)")
    db.execute("INSERT INTO friends VALUES (1, 2, 0.5), (2, 3, 2.0)")
    result = db.execute(
        "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)",
        (1, 3),
    )
    print(result.rows())   # [(2,)]

Shortest-path queries follow the paper's syntax: ``REACHES ... OVER ...
EDGE (S, D)`` in WHERE, ``CHEAPEST SUM(e: expr)`` (optionally
``AS (cost, path)``) in SELECT, and ``UNNEST(path)`` in FROM.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from .errors import CatalogError, ExecutionError
from .exec import graph_ops  # noqa: F401 - registers the graph operators
from .exec.batch import Batch
from .exec.operators import ExecContext, execute_plan
from .graph import GraphLibrary
from .nested import NestedTableValue
from .plan import (
    Binder,
    BoundCreateGraphIndex,
    BoundCreateTable,
    BoundCreateTableAs,
    BoundDelete,
    BoundDropGraphIndex,
    BoundDropTable,
    BoundExplain,
    BoundInsert,
    BoundQuery,
    BoundUpdate,
    explain as explain_plan,
    rewrite,
)
from .sql import parse_script, parse_statement
from .storage import Catalog, Column, DataType, Schema, Table, days_to_date


class Result:
    """The outcome of one statement.

    Queries expose rows via :meth:`rows` / iteration; DDL/DML expose
    ``rowcount``.  DATE values come back as :class:`datetime.date`; paths
    come back as :class:`~repro.nested.NestedTableValue` with
    ``to_rows()`` / ``to_dicts()`` accessors (flatten them in SQL with
    UNNEST when you want plain tuples).
    """

    def __init__(self, batch: Optional[Batch], rowcount: int = -1):
        self._batch = batch
        self.rowcount = rowcount

    @staticmethod
    def from_text_lines(column_name: str, lines: list[str]) -> "Result":
        """A single-VARCHAR-column result (used by EXPLAIN)."""
        from .plan.logical import PlanColumn

        column = Column.from_values(DataType.VARCHAR, list(lines))
        schema = (PlanColumn(0, column_name, DataType.VARCHAR),)
        return Result(Batch(schema, [column]))

    @property
    def is_query(self) -> bool:
        return self._batch is not None

    @property
    def column_names(self) -> list[str]:
        if self._batch is None:
            return []
        return [c.name for c in self._batch.schema]

    def __len__(self) -> int:
        return self._batch.num_rows if self._batch is not None else 0

    def rows(self) -> list[tuple]:
        """All result rows as Python tuples."""
        if self._batch is None:
            return []
        decoded = []
        for col, plan_col in zip(self._batch.columns, self._batch.schema):
            decoded.append(col.to_pylist(decode_dates=True))
        return [
            tuple(col[i] for col in decoded) for i in range(self._batch.num_rows)
        ]

    fetchall = rows

    def __iter__(self):
        return iter(self.rows())

    def scalar(self) -> Any:
        """The single value of a 1x1 result (None for an empty result)."""
        rows = self.rows()
        if not rows:
            return None
        if len(rows) > 1 or len(rows[0]) != 1:
            raise ExecutionError("scalar() requires a single-row, single-column result")
        return rows[0][0]

    def to_dicts(self) -> list[dict]:
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._batch is None:
            return f"<Result rowcount={self.rowcount}>"
        return f"<Result {self._batch.num_rows} rows: {', '.join(self.column_names)}>"


class GraphIndexManager:
    """The paper's Section-6 'graph indices': prepared CSRs keyed on the
    edge table, invalidated by table updates via the version counter."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._specs: dict[str, tuple[str, str, str]] = {}
        self._cache: dict[tuple[str, str, str], tuple[int, GraphLibrary]] = {}

    def create(self, name: str, table: str, src_col: str, dst_col: str) -> None:
        if name in self._specs:
            raise CatalogError(f"graph index already exists: {name!r}")
        schema = self._catalog.get(table).schema
        for column in (src_col, dst_col):
            if not schema.has(column):
                raise CatalogError(
                    f"table {table!r} has no column {column!r} for graph index"
                )
        self._specs[name] = (table, src_col, dst_col)

    def drop(self, name: str) -> None:
        try:
            spec = self._specs.pop(name)
        except KeyError:
            raise CatalogError(f"unknown graph index: {name!r}") from None
        self._cache.pop(spec, None)

    def names(self) -> list[str]:
        return sorted(self._specs)

    def specs(self) -> dict[str, tuple[str, str, str]]:
        """name -> (table, src column, dst column), for persistence."""
        return dict(self._specs)

    def lookup(self, table: str, src_col: str, dst_col: str) -> Optional[GraphLibrary]:
        """A prepared library for (table, S, D), or None if not indexed.

        Rebuilds lazily when the table changed since the cached build.
        """
        spec = (table, src_col, dst_col)
        if spec not in set(self._specs.values()):
            return None
        table_obj = self._catalog.get(table)
        cached = self._cache.get(spec)
        if cached is not None and cached[0] == table_obj.version:
            return cached[1]
        src = table_obj.column(src_col)
        dst = table_obj.column(dst_col)
        valid = ~(src.null_mask() | dst.null_mask())
        library = GraphLibrary(src.data[valid], dst.data[valid])
        self._cache[spec] = (table_obj.version, library)
        return library


class Database:
    """An in-process database instance (catalog + executor)."""

    def __init__(self) -> None:
        self.catalog = Catalog()
        self.graph_indices = GraphIndexManager(self.catalog)

    # ------------------------------------------------------------------
    # SQL entry points
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> Result:
        """Parse, bind, rewrite and execute one SQL statement."""
        statement = parse_statement(sql)
        bound = Binder(self.catalog).bind_statement(statement)
        return self._run_bound(bound, tuple(params))

    def executescript(self, sql: str) -> list[Result]:
        """Execute a semicolon-separated list of statements (no params)."""
        return [
            self._run_bound(Binder(self.catalog).bind_statement(stmt), ())
            for stmt in parse_script(sql)
        ]

    def profile(self, sql: str, params: Sequence[Any] = ()) -> tuple[Result, str]:
        """Execute a query with per-operator timing instrumentation.

        Returns (result, report); the report is the plan tree annotated
        with self/total milliseconds and output row counts per operator.
        """
        from .exec.profiler import Profiler

        statement = parse_statement(sql)
        bound = Binder(self.catalog).bind_statement(statement)
        if not isinstance(bound, BoundQuery):
            raise ExecutionError("profile() is only available for queries")
        plan = rewrite(bound.plan)
        profiler = Profiler()
        ctx = ExecContext(self, tuple(params), profiler=profiler)
        result = Result(execute_plan(plan, ctx))
        return result, profiler.render(plan)

    def explain(self, sql: str) -> str:
        """The optimized logical plan of a query, as indented text."""
        statement = parse_statement(sql)
        bound = Binder(self.catalog).bind_statement(statement)
        if not isinstance(bound, BoundQuery):
            raise ExecutionError("EXPLAIN is only available for queries")
        return explain_plan(rewrite(bound.plan))

    # ------------------------------------------------------------------
    # convenience (non-SQL) helpers
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: list[tuple[str, DataType]]) -> Table:
        return self.catalog.create_table(name, Schema(columns))

    def insert_rows(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.catalog.get(table).insert_rows(rows)

    def table(self, name: str) -> Table:
        return self.catalog.get(name)

    def lookup_graph_index(self, table, src_col, dst_col) -> Optional[GraphLibrary]:
        return self.graph_indices.lookup(table, src_col, dst_col)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist all tables and graph-index definitions to a directory."""
        from .persist import save_database

        save_database(self, directory)

    @staticmethod
    def load(directory: str) -> "Database":
        """Load a database previously written by :meth:`save`."""
        from .persist import load_database

        return load_database(directory)

    # ------------------------------------------------------------------
    def _run_bound(self, bound, params: tuple) -> Result:
        if isinstance(bound, BoundQuery):
            plan = rewrite(bound.plan)
            ctx = ExecContext(self, params)
            return Result(execute_plan(plan, ctx))
        if isinstance(bound, BoundExplain):
            return Result.from_text_lines(
                "plan", explain_plan(rewrite(bound.plan)).splitlines()
            )
        if isinstance(bound, BoundCreateTable):
            self.catalog.create_table(bound.name, Schema(list(bound.columns)))
            return Result(None, rowcount=0)
        if isinstance(bound, BoundDropTable):
            self.catalog.drop_table(bound.name)
            return Result(None, rowcount=0)
        if isinstance(bound, BoundInsert):
            return self._run_insert(bound, params)
        if isinstance(bound, BoundCreateTableAs):
            return self._run_create_table_as(bound, params)
        if isinstance(bound, BoundDelete):
            return self._run_delete(bound, params)
        if isinstance(bound, BoundUpdate):
            return self._run_update(bound, params)
        if isinstance(bound, BoundCreateGraphIndex):
            self.graph_indices.create(
                bound.name, bound.table, bound.src_col, bound.dst_col
            )
            # build eagerly so the first query benefits
            self.graph_indices.lookup(bound.table, bound.src_col, bound.dst_col)
            return Result(None, rowcount=0)
        if isinstance(bound, BoundDropGraphIndex):
            self.graph_indices.drop(bound.name)
            return Result(None, rowcount=0)
        raise ExecutionError(f"cannot execute {type(bound).__name__}")

    def _run_create_table_as(self, bound: BoundCreateTableAs, params: tuple) -> Result:
        ctx = ExecContext(self, params)
        batch = execute_plan(rewrite(bound.plan), ctx)
        # derive the schema from the materialized result so columns whose
        # static type was unknown (host parameters) get their runtime type
        columns = []
        for plan_col, col in zip(batch.schema, batch.columns):
            type_ = plan_col.type or col.type
            if type_ == DataType.NESTED_TABLE:
                raise ExecutionError(
                    "nested tables cannot be stored in a physical table "
                    "(flatten with UNNEST first)"
                )
            columns.append((plan_col.name, type_))
        table = self.catalog.create_table(bound.name, Schema(columns))
        table.insert_columns(
            [
                col if col.type == type_ else col.cast(type_)
                for col, (_, type_) in zip(batch.columns, columns)
            ]
        )
        return Result(None, rowcount=batch.num_rows)

    def _run_delete(self, bound: BoundDelete, params: tuple) -> Result:
        table = self.catalog.get(bound.table)
        ctx = ExecContext(self, params)
        batch = execute_plan(bound.scan, ctx)
        if bound.predicate is None:
            deleted = batch.num_rows
            table.truncate()
            return Result(None, rowcount=deleted)
        import numpy as np

        predicate = ctx.eval(bound.predicate, batch)
        drop = predicate.data.astype(np.bool_)
        if predicate.mask is not None:
            drop = drop & ~predicate.mask
        table.replace_columns([c.filter(~drop) for c in batch.columns])
        return Result(None, rowcount=int(drop.sum()))

    def _run_update(self, bound: BoundUpdate, params: tuple) -> Result:
        import numpy as np

        table = self.catalog.get(bound.table)
        ctx = ExecContext(self, params)
        batch = execute_plan(bound.scan, ctx)
        if bound.predicate is not None:
            predicate = ctx.eval(bound.predicate, batch)
            hit = predicate.data.astype(np.bool_)
            if predicate.mask is not None:
                hit = hit & ~predicate.mask
        else:
            hit = np.ones(batch.num_rows, dtype=np.bool_)
        new_columns = list(batch.columns)
        for position, expr in bound.assignments:
            declared = table.schema.columns[position].type
            fresh = ctx.eval(expr, batch)
            if fresh.type != declared:
                fresh = fresh.cast(declared)
            old = new_columns[position]
            data = old.data.copy()
            data[hit] = fresh.data[hit]
            mask = old.null_mask().copy()
            mask[hit] = fresh.null_mask()[hit]
            new_columns[position] = Column(declared, data, mask if mask.any() else None)
        table.replace_columns(new_columns)
        return Result(None, rowcount=int(hit.sum()))

    def _run_insert(self, bound: BoundInsert, params: tuple) -> Result:
        table = self.catalog.get(bound.table)
        ctx = ExecContext(self, params)
        batch = execute_plan(rewrite(bound.plan), ctx)
        incoming = batch.to_rows()
        if bound.columns:
            positions = [table.schema.index_of(c) for c in bound.columns]
            width = len(table.schema)
            rows = []
            for row in incoming:
                full: list[Any] = [None] * width
                for position, value in zip(positions, row):
                    full[position] = value
                rows.append(tuple(full))
        else:
            rows = incoming
        count = table.insert_rows(rows)
        return Result(None, rowcount=count)


def connect() -> Database:
    """Create a fresh in-memory database (DB-API-flavoured spelling)."""
    return Database()


__all__ = [
    "Database",
    "Result",
    "GraphIndexManager",
    "connect",
    "NestedTableValue",
    "days_to_date",
]
