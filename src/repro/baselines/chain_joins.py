"""Baseline 3: bounded chains of self-joins.

The paper's third "customary means": "if the number of iterations can be
limited by some number N, then a simple popular technique is, starting
with a table T only containing the source node, execute N-1 self-joins
to incrementally extend the result set with the neighbours of the nodes
discovered at the previous step."

The generated query UNIONs one N-way join branch per hop count, so the
minimum hop count at which the destination appears is the shortest
distance (within the bound).  Cost grows exponentially with N on dense
graphs — the verbosity and the performance cliff are exactly the
shortcomings Section 1 attributes to this approach.
"""

from __future__ import annotations

from typing import Optional

from ..api import Database


def chain_join_sql(edge_table: str, src_col: str, dst_col: str, hops: int) -> str:
    """One UNION branch per hop count 1..hops, each a chain of joins."""
    branches = []
    for n in range(1, hops + 1):
        froms = ", ".join(f"{edge_table} e{i}" for i in range(1, n + 1))
        conditions = [f"e1.{src_col} = ?"]
        for i in range(1, n):
            conditions.append(f"e{i}.{dst_col} = e{i + 1}.{src_col}")
        conditions.append(f"e{n}.{dst_col} = ?")
        where = " AND ".join(conditions)
        branches.append(
            f"SELECT {n} AS hops FROM {froms} WHERE {where}"
        )
    return " UNION ".join(branches)


def run_q13_chain(
    db: Database,
    source: int,
    dest: int,
    *,
    edge_table: str = "knows",
    src_col: str = "person1",
    dst_col: str = "person2",
    max_hops: int = 4,
) -> Optional[int]:
    """Shortest distance within ``max_hops`` via chained self-joins.

    Note the parameter list repeats (source, dest) once per branch.
    """
    if source == dest:
        return 0
    sql = f"SELECT min(hops) FROM ({chain_join_sql(edge_table, src_col, dst_col, max_hops)}) u"
    params: list[int] = []
    for _ in range(max_hops):
        params.extend((source, dest))
    return db.execute(sql, tuple(params)).scalar()
