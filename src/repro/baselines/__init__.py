"""The three "customary means" of computing shortest paths in standard
SQL that Section 1 of the paper describes — used as comparison baselines
for the extension (DESIGN.md experiment A3)."""

from .chain_joins import chain_join_sql, run_q13_chain
from .psm import PsmShortestPath
from .recursive_cte import DEFAULT_MAX_HOPS, q13_recursive_sql, run_q13_recursive

__all__ = [
    "chain_join_sql",
    "run_q13_chain",
    "PsmShortestPath",
    "DEFAULT_MAX_HOPS",
    "q13_recursive_sql",
    "run_q13_recursive",
]
