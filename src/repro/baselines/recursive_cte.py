"""Baseline 1: shortest paths through recursive SQL.

The paper's introduction lists recursion as the first "customary means"
of computing shortest paths in standard SQL: "starting from a source
node vs, each recursive step adds to the result set the neighbours of an
unvisited node ... The recursion stops when the destination node is
found in the result set or there are no more nodes to explore."

Pure linear recursion cannot express "unvisited" (that needs the whole
accumulated set, not just the delta), so — like every practical
recursive-CTE formulation — the query tracks ``(vertex, dist)`` pairs
and takes the MIN at the end, bounding the recursion depth to terminate
on cyclic graphs.  This is precisely the "missed algorithmic
opportunities (full search instead of Dijkstra)" weakness the paper
calls out: the CTE explores the full reachable set.
"""

from __future__ import annotations

from typing import Optional

from ..api import Database

#: Default exploration depth; LDBC friendship graphs are small-world, the
#: paper's Q13 answers are nearly always <= 6 hops.
DEFAULT_MAX_HOPS = 15


def q13_recursive_sql(edge_table: str, src_col: str, dst_col: str, max_hops: int) -> str:
    """SQL text for the recursive unweighted shortest-distance baseline."""
    return f"""
        WITH RECURSIVE frontier(v, dist) AS (
            SELECT ?, 0
            UNION
            SELECT e.{dst_col}, frontier.dist + 1
            FROM frontier, {edge_table} e
            WHERE e.{src_col} = frontier.v AND frontier.dist < {int(max_hops)}
        )
        SELECT min(dist) FROM frontier WHERE v = ?
    """


def run_q13_recursive(
    db: Database,
    source: int,
    dest: int,
    *,
    edge_table: str = "knows",
    src_col: str = "person1",
    dst_col: str = "person2",
    max_hops: int = DEFAULT_MAX_HOPS,
) -> Optional[int]:
    """Unweighted shortest distance via WITH RECURSIVE (None = unreached).

    The host parameters are (source, dest) in that order.
    """
    sql = q13_recursive_sql(edge_table, src_col, dst_col, max_hops)
    return db.execute(sql, (source, dest)).scalar()
