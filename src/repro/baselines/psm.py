"""Baseline 2: PSM-style procedural shortest paths.

The paper's second "customary means": "With PSM [persistent stored
modules], the idea is to create temporary tables to maintain the data
structures of BFS/Dijkstra and then use the procedural constructs to
implement a shortest path algorithm."

Our engine has no PSM interpreter, so the stored procedure is driven
from Python, but — crucially — every step is a plain SQL statement over
temporary tables, exactly what a PSM body would execute: the frontier
expansion is a join, the visited check is an anti-join (NOT IN), and
state lives in real tables.  The per-statement round trips model the
"interpretation overhead (PSM)" cost the paper mentions.
"""

from __future__ import annotations

from typing import Optional

from ..api import Database

_SETUP = """
CREATE TABLE {p}_visited (v BIGINT, dist BIGINT);
CREATE TABLE {p}_frontier (v BIGINT);
"""


class PsmShortestPath:
    """A 'stored procedure' computing unweighted shortest distances."""

    def __init__(
        self,
        db: Database,
        *,
        edge_table: str = "knows",
        src_col: str = "person1",
        dst_col: str = "person2",
        prefix: str = "psm",
    ):
        self.db = db
        self.edge_table = edge_table
        self.src_col = src_col
        self.dst_col = dst_col
        self.prefix = prefix
        for name in (f"{prefix}_visited", f"{prefix}_frontier"):
            if db.catalog.has(name):
                db.catalog.drop_table(name)
        db.executescript(_SETUP.format(p=prefix))

    def __call__(self, source: int, dest: int, *, max_hops: int = 100) -> Optional[int]:
        db, p = self.db, self.prefix
        db.table(f"{p}_visited").truncate()
        db.table(f"{p}_frontier").truncate()
        db.execute(f"INSERT INTO {p}_visited VALUES (?, 0)", (source, 0))
        db.execute(f"INSERT INTO {p}_frontier VALUES (?)", (source,))
        if source == dest:
            return 0
        for dist in range(1, max_hops + 1):
            # expand: neighbours of the frontier not yet visited
            fresh = db.execute(
                f"""
                SELECT DISTINCT e.{self.dst_col}
                FROM {p}_frontier f, {self.edge_table} e
                WHERE e.{self.src_col} = f.v
                  AND e.{self.dst_col} NOT IN (SELECT v FROM {p}_visited)
                """
            ).rows()
            if not fresh:
                return None
            db.table(f"{p}_frontier").truncate()
            db.table(f"{p}_frontier").insert_rows(fresh)
            db.table(f"{p}_visited").insert_rows([(v, dist) for (v,) in fresh])
            if any(v == dest for (v,) in fresh):
                return dist
        return None
