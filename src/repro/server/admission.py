"""Admission control: a bounded in-flight statement budget.

The server shares one :class:`~repro.api.Database` — and one kernel
worker pool — across every connection.  Without a bound, a burst of
slow statements queues without limit inside the executor and every
client sees unbounded latency.  Instead the server admits at most
``limit`` statements at a time (executing + waiting for an executor
thread, across all connections); a statement arriving past the
high-water mark is rejected *immediately* with the typed
:class:`~repro.errors.BackpressureError` — a cheap, explicit signal the
client can back off on, instead of a hang or a timeout.

The controller lives on the server's event loop: all state transitions
happen on loop callbacks (admit on dispatch, release from the executor
future's done callback), so plain counters suffice — no lock.  ``drain``
is the graceful-shutdown barrier: it resolves once every admitted
statement has finished.
"""

from __future__ import annotations

import asyncio
from typing import Optional


class AdmissionController:
    """Counting admission gate + drain barrier (event-loop confined)."""

    def __init__(self, limit: int):
        self.limit = max(1, int(limit))
        self.inflight = 0
        #: Totals for observability (the server's ``stats()`` surface).
        self.admitted = 0
        self.rejected = 0
        self.peak_inflight = 0
        self._idle: Optional[asyncio.Event] = None

    def try_admit(self) -> bool:
        """Admit one statement, or refuse (the caller then answers with
        BACKPRESSURE and never touches the engine)."""
        if self.inflight >= self.limit:
            self.rejected += 1
            return False
        self.inflight += 1
        self.admitted += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)
        if self._idle is not None:
            self._idle.clear()
        return True

    def release(self) -> None:
        self.inflight -= 1
        if self.inflight == 0 and self._idle is not None:
            self._idle.set()

    def attach(self, future: asyncio.Future) -> None:
        """Release the admitted slot when ``future`` (the executor task)
        completes — *not* when the awaiting coroutine gives up on it: a
        timed-out statement still occupies its slot until its worker
        thread actually finishes, so the budget always reflects real
        engine load.  The done callback also retrieves the exception of
        abandoned futures so asyncio never logs it as unretrieved."""

        def _done(f: asyncio.Future) -> None:
            self.release()
            if not f.cancelled():
                f.exception()

        future.add_done_callback(_done)

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until no statement is in flight (the graceful-shutdown
        barrier).  Returns False if ``timeout`` elapsed first."""
        if self.inflight == 0:
            return True
        if self._idle is None:
            self._idle = asyncio.Event()
        if self.inflight == 0:  # raced to zero while creating the event
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def stats(self) -> dict:
        return {
            "limit": self.limit,
            "inflight": self.inflight,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "peak_inflight": self.peak_inflight,
        }


__all__ = ["AdmissionController"]
