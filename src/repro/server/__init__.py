"""The network service layer: an asyncio TCP server over one shared
:class:`~repro.api.Database`.

* :mod:`repro.server.protocol` — length-prefixed JSON framing and the
  typed-value / typed-error encoding shared with :mod:`repro.client`;
* :mod:`repro.server.admission` — the bounded in-flight statement
  budget (backpressure past high water);
* :mod:`repro.server.server` — the server itself: one
  :class:`~repro.session.Session` per connection, statement execution
  on a worker thread pool, per-statement timeouts, graceful drain.

Launch with ``python -m repro --serve HOST:PORT`` or embed via
:class:`ReproServer` / :func:`serve` / :class:`ServerThread`.
"""

from .admission import AdmissionController
from .protocol import MAX_FRAME_BYTES, WirePath
from .server import ReproServer, ServerThread, default_queue_depth, serve

__all__ = [
    "AdmissionController",
    "MAX_FRAME_BYTES",
    "ReproServer",
    "ServerThread",
    "WirePath",
    "default_queue_depth",
    "serve",
]
