"""The wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Requests and responses are JSON objects; the
framing is symmetric, so both ends share this module.

Requests
--------
``{"op": "execute", "sql": ..., "params": [...], "timeout": s?}``
    Execute one statement through the connection's session (so
    BEGIN/COMMIT/ROLLBACK and snapshot isolation work unchanged over the
    wire).  ``timeout`` optionally overrides the server's per-statement
    timeout for this statement only (seconds; capped by the server).
``{"op": "prepare", "sql": ...}`` → ``{"ok": true, "handle": n}``
    Prepare a statement; repeat executions through the handle are
    plan-cache hits by construction.
``{"op": "execute_prepared", "handle": n, "params": [...]}``
    Execute a previously prepared statement.
``{"op": "close_prepared", "handle": n}``
    Release a prepared-statement handle.
``{"op": "ping"}`` → ``{"ok": true, "pong": true}``
    Liveness probe; never queued behind admission control.

Responses
---------
``{"ok": true, "kind": "rows", "columns": [...], "rows": [[...], ...]}``
    A query result.
``{"ok": true, "kind": "count", "rowcount": n}``
    A DDL/DML result.
``{"ok": false, "error": {"code": ..., "message": ...}}``
    A typed engine or server error — ``code`` is the stable
    :attr:`repro.errors.ReproError.code` identifier, reconstructed
    client-side by :func:`repro.errors.error_from_code`.  Tracebacks
    never cross the wire.

Values
------
JSON covers NULL/bool/int/float/string natively (Python's ``json``
round-trips floats exactly via ``repr``, which is what keeps served
results bit-identical to the in-process API).  The two engine types JSON
lacks are tagged objects — unambiguous because the engine has no
map/object column type:

* DATE → ``{"$": "date", "v": "YYYY-MM-DD"}``
* nested-table path → ``{"$": "path", "columns": [...], "rows": [...]}``
  (decoded to :class:`WirePath`, which mirrors the
  :class:`~repro.nested.NestedTableValue` accessors)
"""

from __future__ import annotations

import datetime
import json
import struct
from typing import Any, Optional

from ..errors import ProtocolError, ReproError

#: Frame length header: 4-byte big-endian unsigned.
HEADER = struct.Struct(">I")

#: Hard per-frame cap — a corrupt or hostile length prefix must not make
#: either end allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class WirePath:
    """Client-side stand-in for a :class:`~repro.nested.NestedTableValue`
    (a shortest path): the referenced edge rows, already materialized.

    Mirrors the accessors servers of the in-process API use most —
    ``to_rows()`` / ``to_dicts()`` / ``len`` — so code consuming path
    results works unchanged against either API.
    """

    __slots__ = ("columns", "_rows")

    def __init__(self, columns: list, rows: list):
        self.columns = list(columns)
        self._rows = [tuple(r) for r in rows]

    def column_names(self) -> list:
        return list(self.columns)

    def to_rows(self) -> list:
        return list(self._rows)

    def to_dicts(self) -> list:
        return [dict(zip(self.columns, row)) for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: Any) -> bool:
        to_rows = getattr(other, "to_rows", None)
        if to_rows is None:
            return NotImplemented
        return self._rows == to_rows()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WirePath {len(self._rows)} edges>"


def encode_value(value: Any) -> Any:
    """One result/parameter value → its JSON-safe form."""
    if isinstance(value, datetime.date):
        return {"$": "date", "v": value.isoformat()}
    # NestedTableValue duck-typed to avoid importing the exec layer here
    to_rows = getattr(value, "to_rows", None)
    if to_rows is not None and hasattr(value, "column_names"):
        return {
            "$": "path",
            "columns": value.column_names(),
            "rows": [[encode_value(v) for v in row] for row in to_rows()],
        }
    return value


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        tag = value.get("$")
        if tag == "date":
            return datetime.date.fromisoformat(value["v"])
        if tag == "path":
            return WirePath(
                value["columns"],
                [[decode_value(v) for v in row] for row in value["rows"]],
            )
        raise ProtocolError(f"unknown value tag: {value.get('$')!r}")
    return value


def encode_rows(rows: list) -> list:
    return [[encode_value(v) for v in row] for row in rows]


def decode_rows(rows: list) -> list:
    return [tuple(decode_value(v) for v in row) for row in rows]


def result_payload(result) -> dict:
    """A :class:`repro.api.Result` → its response payload."""
    if result.is_query:
        return {
            "ok": True,
            "kind": "rows",
            "columns": result.column_names,
            "rows": encode_rows(result.rows()),
        }
    return {"ok": True, "kind": "count", "rowcount": result.rowcount}


def error_payload(exc: Exception) -> dict:
    """Any exception → a typed, traceback-free error response.  Non-
    :class:`~repro.errors.ReproError` failures degrade to the generic
    SERVER_ERROR code with the exception text only."""
    if isinstance(exc, ReproError):
        return {"ok": False, "error": {"code": exc.code, "message": str(exc)}}
    return {
        "ok": False,
        "error": {
            "code": "SERVER_ERROR",
            "message": f"internal error: {type(exc).__name__}: {exc}",
        },
    }


def encode_frame(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


def frame_length(header: bytes) -> int:
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return length


async def read_frame(reader) -> Optional[dict]:
    """Read one frame from an :class:`asyncio.StreamReader`; None on a
    clean EOF at a frame boundary."""
    import asyncio

    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ProtocolError("connection closed inside a frame header") from None
    length = frame_length(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed inside a frame body") from None
    return decode_payload(body)


__all__ = [
    "HEADER",
    "MAX_FRAME_BYTES",
    "WirePath",
    "decode_payload",
    "decode_rows",
    "decode_value",
    "encode_frame",
    "encode_rows",
    "encode_value",
    "error_payload",
    "frame_length",
    "read_frame",
    "result_payload",
]
