"""The asyncio TCP database server.

One :class:`ReproServer` fronts one shared :class:`~repro.api.Database`.
Each accepted connection gets its own :class:`~repro.session.Session`,
so explicit transactions, snapshot isolation, first-committer-wins
conflicts and prepared-statement reuse all work unchanged over the wire
— the engine's concurrency stack (MVCC snapshots, the shared morsel
worker pool) was built for exactly this shape.

Statements are *executed* on a thread pool sized to the database's
``exec_workers`` (the engine is synchronous; numpy releases the GIL
inside the kernels, so worker threads genuinely overlap), while the
event loop only does framing and dispatch.  Requests are serialized per
connection — the loop reads the next frame only after answering the
previous one — which preserves the one-thread-at-a-time contract of
:class:`~repro.session.Session`.

Three service-layer guarantees sit on top:

* **Admission control** (:mod:`repro.server.admission`): at most
  ``max_queue`` statements in flight across all connections; past the
  high-water mark requests fail fast with the typed
  :class:`~repro.errors.BackpressureError` instead of queueing without
  bound.
* **Per-statement timeouts**: ``statement_timeout`` seconds (request
  field ``timeout`` lowers it per statement).  A timed-out statement
  answers :class:`~repro.errors.StatementTimeoutError`; its worker
  thread runs to completion (pure-Python kernels cannot be interrupted)
  and keeps holding its admission slot until it does, so the budget
  reflects true engine load.
* **Graceful shutdown**: :meth:`ReproServer.shutdown` (wired to
  SIGTERM/SIGINT by :func:`serve`) stops admitting new statements
  (typed :class:`~repro.errors.ServerShutdownError`), drains every
  in-flight statement, then closes listeners and connections, joins the
  executor threads and closes the database — no dangling threads at
  interpreter exit.

Entry points: ``python -m repro --serve HOST:PORT`` (the CLI),
:func:`serve` (blocking), :class:`ReproServer` (asyncio-native), and
:class:`ServerThread` (background thread, used by the tests and the
throughput benchmark).
"""

from __future__ import annotations

import asyncio
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..api import Database
from ..errors import (
    BackpressureError,
    ProtocolError,
    ServerShutdownError,
    StatementTimeoutError,
)
from .admission import AdmissionController
from .protocol import (
    decode_value,
    encode_frame,
    error_payload,
    read_frame,
    result_payload,
)


def default_queue_depth(exec_workers: int) -> int:
    """The admission high-water mark when none is given: enough to keep
    every kernel worker busy with a short backlog behind it, small
    enough that rejected clients learn about saturation in milliseconds
    rather than sitting in an unbounded queue."""
    return max(8, 4 * int(exec_workers))


class ReproServer:
    """An asyncio TCP server over one shared :class:`Database`.

    Parameters
    ----------
    db:
        The shared engine instance.  ``own_database=True`` hands its
        lifecycle to the server: graceful shutdown closes it.
    host / port:
        Listen address; ``port=0`` picks a free port (see
        :attr:`address` after :meth:`start`).
    max_queue:
        Admission high-water mark — statements in flight (executing or
        waiting for a worker thread) across all connections.  Default
        :func:`default_queue_depth` of the database's kernel workers.
    statement_timeout:
        Per-statement ceiling in seconds (None: no timeout).  A
        request's ``timeout`` field can only lower it.
    drain_timeout:
        How long graceful shutdown waits for in-flight statements
        before giving up and closing anyway.
    executor_workers:
        Statement executor thread count (default: the database's
        ``exec_workers``); tests pin it to 1 for deterministic
        saturation.
    """

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_queue: Optional[int] = None,
        statement_timeout: Optional[float] = None,
        drain_timeout: float = 30.0,
        executor_workers: Optional[int] = None,
        own_database: bool = False,
    ):
        self.db = db
        self.host = host
        self.port = port
        self.statement_timeout = statement_timeout
        self.drain_timeout = drain_timeout
        self.own_database = own_database
        workers = (
            int(executor_workers)
            if executor_workers is not None
            else db.exec_pool.workers
        )
        self.admission = AdmissionController(
            default_queue_depth(workers) if max_queue is None else max_queue
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-serve"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._stopped = asyncio.Event()
        self.connections_served = 0
        self.statements_served = 0

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` after start."""
        if self._server is not None and self._server.sockets:
            host, port = self._server.sockets[0].getsockname()[:2]
            return host, port
        return self.host, self.port

    async def start(self) -> "ReproServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` (or a SIGTERM/SIGINT wired in by
        :func:`serve`) completes."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful shutdown: refuse new statements, drain in-flight
        work, then close listeners, connections, the executor and
        (when owned) the database."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        # drain before closing anything: in-flight statements finish and
        # their responses still reach their clients
        await self.admission.drain(self.drain_timeout)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        self._executor.shutdown(wait=True)
        if self.own_database:
            self.db.close()
        self._stopped.set()

    def stats(self) -> dict:
        return {
            "connections": len(self._connections),
            "connections_served": self.connections_served,
            "statements_served": self.statements_served,
            "draining": self._draining,
            "admission": self.admission.stats(),
            "wal": self.db.wal_stats(),
        }

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = self.db.connect()
        prepared: dict[int, object] = {}
        self._connections.add(writer)
        self.connections_served += 1
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    # a malformed frame poisons the stream: answer once,
                    # then hang up (resync is impossible mid-garbage)
                    await self._respond(writer, error_payload(exc))
                    break
                if request is None:
                    break
                response = await self._dispatch(session, prepared, request)
                if not await self._respond(writer, response):
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            session.close()  # rolls back any open transaction
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _respond(self, writer: asyncio.StreamWriter, payload: dict) -> bool:
        """Send one response frame; False when the client went away
        mid-statement (the connection loop then winds down — the
        statement itself already completed against the engine)."""
        try:
            writer.write(encode_frame(payload))
            await writer.drain()
            return True
        except (ConnectionResetError, BrokenPipeError, OSError):
            return False

    # ------------------------------------------------------------------
    async def _dispatch(self, session, prepared: dict, request: dict) -> dict:
        try:
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "pong": True, "stats": self.stats()}
            if op == "close_prepared":
                prepared.pop(request.get("handle"), None)
                return {"ok": True, "kind": "count", "rowcount": 0}
            if op not in ("execute", "prepare", "execute_prepared"):
                raise ProtocolError(f"unknown request op: {op!r}")
            if self._draining:
                raise ServerShutdownError(
                    "server is shutting down; no new statements accepted"
                )
            if not self.admission.try_admit():
                raise BackpressureError(
                    f"admission queue full ({self.admission.limit} statements "
                    "in flight); back off and retry"
                )
            return await self._run_admitted(session, prepared, request)
        except Exception as exc:  # noqa: BLE001 - every error becomes typed wire data
            return error_payload(exc)

    async def _run_admitted(self, session, prepared: dict, request: dict) -> dict:
        """Run one admitted statement on the executor, with the
        per-statement timeout.  The admission slot is released by the
        future's done callback — when the worker actually finishes."""
        op = request["op"]

        def work() -> dict:
            if op == "prepare":
                statement = session.prepare(str(request.get("sql", "")))
                handle = max(prepared, default=0) + 1
                prepared[handle] = statement
                return {"ok": True, "handle": handle}
            params = tuple(
                decode_value(p) for p in request.get("params") or ()
            )
            if op == "execute_prepared":
                statement = prepared.get(request.get("handle"))
                if statement is None:
                    raise ProtocolError(
                        f"unknown prepared-statement handle: "
                        f"{request.get('handle')!r}"
                    )
                result = statement.execute(params)
            else:
                result = session.execute(str(request.get("sql", "")), params)
            return result_payload(result)

        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, work)
        self.admission.attach(future)
        timeout = self._effective_timeout(request.get("timeout"))
        try:
            response = await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            raise StatementTimeoutError(
                f"statement exceeded the {timeout:g}s server timeout "
                "(it keeps running; its result is discarded)"
            ) from None
        self.statements_served += 1
        return response

    def _effective_timeout(self, requested) -> Optional[float]:
        """The request's ``timeout`` can only lower the server ceiling —
        a client must not be able to opt out of the server's limit."""
        try:
            requested = None if requested is None else float(requested)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"timeout must be a number, got {requested!r}"
            ) from None
        if requested is not None and requested <= 0:
            raise ProtocolError("timeout must be positive")
        if self.statement_timeout is None:
            return requested
        if requested is None:
            return self.statement_timeout
        return min(requested, self.statement_timeout)


async def _serve_until_signalled(server: ReproServer) -> None:
    await server.start()
    host, port = server.address
    print(f"repro server listening on {host}:{port}")
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix loops: Ctrl-C arrives as KeyboardInterrupt
    try:
        await stop.wait()
    finally:
        print("repro server draining ...")
        await server.shutdown()
        print("repro server stopped")


def serve(
    db: Database,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> None:
    """Blocking entry point (the ``--serve`` CLI path): run the server
    until SIGTERM/SIGINT, then shut down gracefully — drain in-flight
    statements, close listeners, close the database."""
    server = ReproServer(db, host, port, own_database=True, **kwargs)
    try:
        asyncio.run(_serve_until_signalled(server))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass


class ServerThread:
    """A :class:`ReproServer` on a background thread — the in-process
    harness the tests and the throughput benchmark drive clients
    against.  Context-manager: entering starts the loop and waits for
    the listener; exiting performs the same graceful shutdown as
    SIGTERM.

    ::

        with ServerThread(db, max_queue=8) as server:
            client = Client(*server.address)
    """

    def __init__(self, db: Database, **kwargs):
        self._db = db
        self._kwargs = kwargs
        self.server: Optional[ReproServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )

    @property
    def address(self) -> tuple[str, int]:
        assert self.server is not None
        return self.server.address

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = ReproServer(self._db, **self._kwargs)
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced to __enter__
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop.wait()
        await self.server.shutdown()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self, join_timeout: float = 60.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=join_timeout)

    def __exit__(self, *exc) -> None:
        self.stop()


__all__ = ["ReproServer", "ServerThread", "default_queue_depth", "serve"]
