"""``python -m repro`` — launch the interactive SQL shell."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
