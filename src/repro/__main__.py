"""``python -m repro`` — the interactive SQL shell, or (with
``--serve HOST:PORT``) the TCP database server."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
