"""Experiment drivers regenerating the paper's tables and figures.

Each function returns plain data rows (lists of dicts) so that the
pytest-benchmark modules, the examples and EXPERIMENTS.md all share one
implementation.  The experiment ids map to DESIGN.md's index:

* :func:`table1` — Table 1, graph sizes per scale factor;
* :func:`fig1a` — Figure 1a, average per-query latency of Q13
  (unweighted) and the Q14 variant (weighted) per scale factor;
* :func:`fig1b` — Figure 1b, average time *per pair* of batched Q13 at
  varying batch sizes.

The paper runs 1000 repetitions per scale factor (100 for SF 100/300);
these drivers default to far fewer so a pure-Python run finishes in
benchmark time budgets — pass ``pairs_per_sf`` to change that.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..api import Database
from ..ldbc import (
    DEFAULT_SCALE,
    SocialNetwork,
    generate,
    make_database,
    random_pairs,
    run_q13,
    run_q13_batch,
    run_q14_variant,
)
from .network import NetworkModel
from .timing import LatencyStats, time_call

DEFAULT_SCALE_FACTORS: tuple[int, ...] = (1, 3, 10, 30)
FULL_SCALE_FACTORS: tuple[int, ...] = (1, 3, 10, 30, 100, 300)
DEFAULT_BATCH_SIZES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


def build_networks(
    scale_factors: Sequence[int],
    *,
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
) -> dict[int, SocialNetwork]:
    return {sf: generate(sf, scale=scale, seed=seed) for sf in scale_factors}


def table1(
    scale_factors: Sequence[int] = FULL_SCALE_FACTORS,
    *,
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
) -> list[dict]:
    """Regenerate Table 1: vertices/edges per scale factor.

    ``paper_vertices``/``paper_edges`` carry the original numbers so the
    output can assert that the scaled ratios match.
    """
    from ..ldbc import TABLE1_SIZES

    rows = []
    for sf in scale_factors:
        network = generate(sf, scale=scale, seed=seed)
        paper_vertices, paper_edges = TABLE1_SIZES[int(sf)]
        rows.append(
            {
                "scale_factor": sf,
                "vertices": network.num_persons,
                "edges": network.num_directed_edges,
                "paper_vertices": paper_vertices,
                "paper_edges": paper_edges,
                "scale": scale,
            }
        )
    return rows


def fig1a(
    scale_factors: Sequence[int] = DEFAULT_SCALE_FACTORS,
    *,
    pairs_per_sf: int = 20,
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
    network_model: Optional[NetworkModel] = None,
    databases: Optional[dict[int, Database]] = None,
) -> list[dict]:
    """Regenerate Figure 1a: average latency per query, per scale factor.

    One row per (scale factor, query) with the LatencyStats of
    ``pairs_per_sf`` single-pair executions, parameters uniform over the
    person ids — the paper's protocol, at reduced repetition count.
    """
    rows = []
    for sf in scale_factors:
        network = generate(sf, scale=scale, seed=seed)
        db = databases[sf] if databases else make_database(network)
        pairs = random_pairs(network, pairs_per_sf, seed=seed + sf)
        for query_name, runner in (
            ("Q13 / unweighted S.P.", lambda s, d: run_q13(db, s, d)),
            (
                "Q14 (variant) / weighted S.P.",
                lambda s, d: run_q14_variant(db, s, d),
            ),
        ):
            samples = []
            network_extra = 0.0
            for source, dest in pairs:
                elapsed, _ = time_call(lambda: runner(source, dest))
                samples.append(elapsed)
            stats = LatencyStats.from_samples(samples)
            row = {
                "scale_factor": sf,
                "query": query_name,
                "stats": stats,
                "avg_latency_s": stats.mean,
            }
            if network_model is not None:
                row["avg_latency_with_network_s"] = (
                    stats.mean + network_model.round_trip_seconds
                )
            rows.append(row)
    return rows


def fig1b(
    scale_factors: Sequence[int] = DEFAULT_SCALE_FACTORS,
    *,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    repeats: int = 3,
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
    databases: Optional[dict[int, Database]] = None,
) -> list[dict]:
    """Regenerate Figure 1b: average time per pair at varying batch sizes.

    For each scale factor and batch size k, runs batched Q13 over k
    uniform pairs and reports latency / k — the paper's amortization
    metric.  The decrease should be near-linear in k because one CSR
    build serves the whole batch.
    """
    rows = []
    for sf in scale_factors:
        network = generate(sf, scale=scale, seed=seed)
        db = databases[sf] if databases else make_database(network)
        for batch_size in batch_sizes:
            samples = []
            for repeat in range(repeats):
                pairs = random_pairs(
                    network, batch_size, seed=seed + sf * 1000 + repeat
                )
                elapsed, _ = time_call(lambda: run_q13_batch(db, pairs))
                samples.append(elapsed / batch_size)
            stats = LatencyStats.from_samples(samples)
            rows.append(
                {
                    "scale_factor": sf,
                    "batch_size": batch_size,
                    "stats": stats,
                    "avg_latency_per_pair_s": stats.mean,
                }
            )
    return rows


def format_table(rows: list[dict], columns: Sequence[str]) -> str:
    """Plain-text table rendering for examples and EXPERIMENTS.md."""
    widths = {c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)
