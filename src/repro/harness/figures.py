"""ASCII rendering of the paper's figures.

The paper presents Figure 1a/1b as log-scale line charts; these helpers
render the regenerated series as terminal plots so the *shape* (slopes,
crossovers, amortization flattening) is visible at a glance without any
plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

_MARKERS = "ox+*#@%&"


def _log_positions(values: Sequence[float], cells: int) -> list[int]:
    """Map positive values onto [0, cells-1] on a log scale."""
    finite = [v for v in values if v > 0]
    if not finite:
        return [0 for _ in values]
    low = math.log10(min(finite))
    high = math.log10(max(finite))
    span = (high - low) or 1.0
    out = []
    for value in values:
        if value <= 0:
            out.append(0)
            continue
        fraction = (math.log10(value) - low) / span
        out.append(min(cells - 1, max(0, round(fraction * (cells - 1)))))
    return out


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series on a log-log ASCII grid.

    Each series gets a marker; the legend maps markers to names.  Both
    axes are logarithmic, like the paper's Figure 1.
    """
    all_x = [x for points in series.values() for x, _ in points]
    all_y = [y for points in series.values() for _, y in points]
    if not all_x:
        return "(no data)"
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        xs = _log_positions([p[0] for p in points], width)
        ys = _log_positions([p[1] for p in points], height)
        for col, row in zip(xs, ys):
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    y_min = min(v for v in all_y if v > 0)
    y_max = max(all_y)
    lines.append(f"{y_label}  (log scale, {y_min:.4g} .. {y_max:.4g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    x_min = min(v for v in all_x if v > 0)
    x_max = max(all_x)
    lines.append(f" {x_label} (log scale, {x_min:.4g} .. {x_max:.4g})")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def fig1a_chart(rows: list[dict]) -> str:
    """Figure 1a as ASCII: avg latency per query vs scale factor."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        series.setdefault(row["query"], []).append(
            (float(row["scale_factor"]), row["avg_latency_s"])
        )
    return ascii_chart(
        series,
        title="Figure 1a) Average latency per query",
        x_label="scale factor",
        y_label="seconds",
    )


def fig1b_chart(rows: list[dict]) -> str:
    """Figure 1b as ASCII: per-pair latency vs batch size, one series/SF."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        series.setdefault(f"SF {row['scale_factor']}", []).append(
            (float(row["batch_size"]), row["avg_latency_per_pair_s"])
        )
    return ascii_chart(
        series,
        title="Figure 1b) Latency per pair vs batch size",
        x_label="batch size",
        y_label="seconds per pair",
    )
