"""Latency measurement helpers shared by benchmarks and examples."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Iterable


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a sequence of per-call latencies (seconds)."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    total: float

    @staticmethod
    def from_samples(samples: Iterable[float]) -> "LatencyStats":
        values = list(samples)
        if not values:
            return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return LatencyStats(
            count=len(values),
            mean=statistics.fmean(values),
            median=statistics.median(values),
            minimum=min(values),
            maximum=max(values),
            total=sum(values),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean * 1e3:.2f}ms "
            f"median={self.median * 1e3:.2f}ms "
            f"min={self.minimum * 1e3:.2f}ms max={self.maximum * 1e3:.2f}ms"
        )


def time_call(fn: Callable[[], object]) -> tuple[float, object]:
    """(elapsed seconds, return value) of one call."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def measure(fn: Callable[[], object], repeats: int) -> LatencyStats:
    """Latency stats over ``repeats`` sequential calls (no warmup)."""
    samples = []
    for _ in range(repeats):
        elapsed, _ = time_call(fn)
        samples.append(elapsed)
    return LatencyStats.from_samples(samples)
