"""Simulated client/server measurement (documented substitution).

The paper measures "from the time the query is issued until the results
are available back to the client", with a Java/JDBC client on a separate
machine over a shared 1 Gbit LAN.  We run in-process; this model adds
the network component back so the *measurement shape* matches: a fixed
round-trip cost per statement plus a serialization/transfer cost
proportional to the result size.

The defaults approximate the paper's setup: ~0.2 ms LAN round trip and
1 Gbit/s of effective bandwidth.  The model is intentionally simple —
the paper's conclusions do not depend on network effects (graph build
time dominates), and EXPERIMENTS.md reports both raw and modelled
numbers.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from ..api import Result
from ..nested import NestedTableValue


@dataclass(frozen=True)
class NetworkModel:
    """Per-query latency overhead of a remote client."""

    round_trip_seconds: float = 0.0002
    bandwidth_bytes_per_second: float = 125_000_000.0  # 1 Gbit/s

    def result_bytes(self, result: Result) -> int:
        """Approximate wire size of a result set (JDBC-ish encoding)."""
        total = 0
        for row in result.rows():
            total += 8  # row header
            total += sum(_value_bytes(value) for value in row)
        return total

    def latency(self, result: Result) -> float:
        """Network seconds to ship ``result`` to the client."""
        return self.round_trip_seconds + self.result_bytes(result) / (
            self.bandwidth_bytes_per_second
        )


def _value_bytes(value) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return 4 + len(value.encode("utf-8"))
    if isinstance(value, _dt.date):
        return 4
    if isinstance(value, NestedTableValue):
        # nested tables must be flattened before returning to the client
        # (Section 3.3); account for the flattened rows
        return sum(8 + sum(_value_bytes(v) for v in row) for row in value.to_rows())
    return 8
