"""Measurement harness: timing, the simulated-client network model and
the drivers that regenerate the paper's tables and figures."""

from .experiments import (
    DEFAULT_BATCH_SIZES,
    DEFAULT_SCALE_FACTORS,
    FULL_SCALE_FACTORS,
    build_networks,
    fig1a,
    fig1b,
    format_table,
    table1,
)
from .figures import ascii_chart, fig1a_chart, fig1b_chart
from .network import NetworkModel
from .timing import LatencyStats, measure, time_call

__all__ = [
    "DEFAULT_BATCH_SIZES",
    "DEFAULT_SCALE_FACTORS",
    "FULL_SCALE_FACTORS",
    "build_networks",
    "fig1a",
    "fig1b",
    "format_table",
    "table1",
    "NetworkModel",
    "ascii_chart",
    "fig1a_chart",
    "fig1b_chart",
    "LatencyStats",
    "measure",
    "time_call",
]
