"""Abstract syntax tree for the supported SQL dialect.

The node inventory covers a practical subset of SQL-2003 plus the paper's
extension (Section 2):

* the ``REACHES`` predicate, represented as :class:`Reaches` so the
  binder can recognize it inside the WHERE conjunction;
* the ``CHEAPEST SUM(e: expr)`` summary function, :class:`CheapestSum`,
  whose ``AS (cost, path)`` aliasing is carried by
  :class:`SelectItem.alias_list`;
* ``UNNEST(expr) [WITH ORDINALITY]`` as a lateral FROM item,
  :class:`UnnestRef`.

All nodes are frozen dataclasses; the parser is the only producer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


class Node:
    """Marker base class for all AST nodes."""


class Expr(Node):
    """Marker base class for scalar expressions."""


# ---------------------------------------------------------------------------
# scalar expressions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, str, bool or None (NULL)."""

    value: Any


@dataclass(frozen=True)
class Param(Expr):
    """A positional host parameter ``?`` (0-based ``index``)."""

    index: int


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly qualified column reference ``[table.]name``."""

    table: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a projection list."""

    table: Optional[str] = None


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operator: ``NOT x`` or ``-x`` or ``+x``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operator (arithmetic, comparison, logic, ``||``)."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass(frozen=True)
class FuncCall(Expr):
    """Function or aggregate call.  ``distinct`` applies to aggregates."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False


@dataclass(frozen=True)
class Cast(Expr):
    operand: Expr
    type_name: str


@dataclass(frozen=True)
class Case(Expr):
    """``CASE [operand] WHEN .. THEN .. [ELSE ..] END``."""

    operand: Optional[Expr]
    whens: tuple[tuple[Expr, Expr], ...]
    else_: Optional[Expr]


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    query: "Select"


@dataclass(frozen=True)
class Exists(Expr):
    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expr):
    operand: Expr
    query: "Select"
    negated: bool = False


# ---------------------------------------------------------------------------
# the SQL extension (Section 2 of the paper)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TupleExpr(Expr):
    """A parenthesized expression list ``(a, b, ...)``.

    Only legal as a REACHES endpoint (the paper's multi-attribute vertex
    keys); the binder rejects it anywhere else.
    """

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class Reaches(Expr):
    """``X REACHES Y OVER E [e] EDGE (S, D)``.

    ``edge`` is the edge-table expression: either a :class:`NamedTableRef`
    (base table or CTE) or a :class:`DerivedTableRef`.  ``binding`` is the
    optional tuple variable (``e``) that CHEAPEST SUM uses to refer to this
    predicate; ``src_cols``/``dst_cols`` are the names given in
    ``EDGE (S, D)`` — multi-attribute vertex keys (Section 2: "extending
    for multiple attributes is not complicated") use the tuple form
    ``(X1, X2) REACHES (Y1, Y2) OVER E EDGE ((S1, S2), (D1, D2))``.
    """

    source: tuple[Expr, ...]
    dest: tuple[Expr, ...]
    edge: "TableRef"
    binding: Optional[str]
    src_cols: tuple[str, ...]
    dst_cols: tuple[str, ...]


@dataclass(frozen=True)
class CheapestSum(Expr):
    """``CHEAPEST SUM([e:] weight_expr)`` in a projection list.

    ``binding`` selects which REACHES predicate this function attaches to;
    it may be omitted when the query has exactly one (Section 2).  The
    ``AS (cost, path)`` form is recorded on the surrounding
    :class:`SelectItem` as ``alias_list``.
    """

    binding: Optional[str]
    weight: Expr


# ---------------------------------------------------------------------------
# table references (FROM items)
# ---------------------------------------------------------------------------
class TableRef(Node):
    """Marker base class for FROM-clause items."""


@dataclass(frozen=True)
class NamedTableRef(TableRef):
    name: str
    alias: Optional[str] = None


@dataclass(frozen=True)
class DerivedTableRef(TableRef):
    query: "Select"
    alias: str
    column_aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class UnnestRef(TableRef):
    """``UNNEST(expr) [WITH ORDINALITY] [AS alias]`` — a lateral FROM item.

    ``outer`` marks the left-outer variant which preserves rows whose
    nested table is empty (Section 2: "useful to preserve tuples when the
    nested structure is the empty collection").
    """

    operand: Expr
    alias: Optional[str] = None
    with_ordinality: bool = False
    outer: bool = False


@dataclass(frozen=True)
class JoinRef(TableRef):
    """Explicit ``A JOIN B ON cond`` syntax."""

    left: TableRef
    right: TableRef
    kind: str  # 'inner' | 'left' | 'cross'
    condition: Optional[Expr]


# ---------------------------------------------------------------------------
# queries and statements
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem(Node):
    """One projection item.

    ``alias_list`` holds the multi-identifier aliasing the paper introduces
    for CHEAPEST SUM: ``AS (cost, path)`` (Section 3.1 grammar additions).
    """

    expr: Expr
    alias: Optional[str] = None
    alias_list: tuple[str, ...] = ()


@dataclass(frozen=True)
class OrderItem(Node):
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class CommonTableExpr(Node):
    name: str
    column_names: tuple[str, ...]
    query: "QueryNode"


class QueryNode(Node):
    """Marker base: Select or a set operation tree."""


@dataclass(frozen=True)
class Select(QueryNode):
    items: tuple[SelectItem, ...]
    from_refs: tuple[TableRef, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    ctes: tuple[CommonTableExpr, ...] = ()
    recursive: bool = False


@dataclass(frozen=True)
class ValuesQuery(QueryNode):
    """``VALUES (..), (..)`` as a table constructor (query position)."""

    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class SetOp(QueryNode):
    op: str  # 'union' | 'except' | 'intersect'
    all: bool
    left: QueryNode
    right: QueryNode
    ctes: tuple[CommonTableExpr, ...] = ()
    recursive: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None


# ---------------------------------------------------------------------------
# DDL / DML statements
# ---------------------------------------------------------------------------
class Statement(Node):
    """Marker base class for top-level statements."""


@dataclass(frozen=True)
class QueryStatement(Statement):
    query: QueryNode


@dataclass(frozen=True)
class Explain(Statement):
    """``EXPLAIN <query>`` — show the optimized physical plan."""

    query: QueryNode


@dataclass(frozen=True)
class Begin(Statement):
    """``BEGIN [TRANSACTION | WORK]`` — open a session transaction that
    pins one snapshot for all its statements and buffers its writes."""


@dataclass(frozen=True)
class Commit(Statement):
    """``COMMIT [TRANSACTION | WORK]`` — publish the transaction's
    buffered writes (write-write conflicts raise a typed error)."""


@dataclass(frozen=True)
class Rollback(Statement):
    """``ROLLBACK [TRANSACTION | WORK]`` — discard the transaction's
    buffered writes, leaving every table exactly as it was."""


@dataclass(frozen=True)
class Analyze(Statement):
    """``ANALYZE [table]`` — collect optimizer statistics (all tables
    when no table is named)."""

    table: Optional[str]


@dataclass(frozen=True)
class ColumnSpec(Node):
    name: str
    type_name: str


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: tuple[ColumnSpec, ...]


@dataclass(frozen=True)
class DropTable(Statement):
    name: str


@dataclass(frozen=True)
class InsertValues(Statement):
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class InsertSelect(Statement):
    table: str
    columns: tuple[str, ...]
    query: QueryNode


@dataclass(frozen=True)
class Copy(Statement):
    """``COPY table [(cols)] FROM 'file' [WITH (opt [value], ...)]``.

    The bulk-ingest statement: the file loads as one columnar batch
    instead of per-row INSERTs.  Options (parsed as identifiers):
    ``FORMAT CSV|NPZ`` (default by file extension), ``HEADER`` /
    ``NO_HEADER``, ``DELIMITER ','``.
    """

    table: str
    columns: tuple[str, ...]
    path: str
    options: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class CreateTableAs(Statement):
    """``CREATE TABLE name AS query``."""

    name: str
    query: QueryNode


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM table [WHERE predicate]``."""

    table: str
    where: Optional[Expr]


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE table SET col = expr [, ...] [WHERE predicate]``."""

    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Optional[Expr]


@dataclass(frozen=True)
class CreateGraphIndex(Statement):
    """``CREATE GRAPH INDEX name ON table EDGE (s, d) [OVER (weight_expr)]``.

    This implements the paper's future-work proposal (Section 6): a
    persistent CSR representation keyed on the edge table, reused whenever a
    query's edge-table expression matches, and invalidated by updates.
    """

    name: str
    table: str
    src_col: str
    dst_col: str


@dataclass(frozen=True)
class DropGraphIndex(Statement):
    name: str
