"""Hand-written SQL tokenizer.

Supports standard SQL lexical structure: identifiers (optionally
``"quoted"``), single-quoted strings with ``''`` escaping, integer and
decimal literals (with exponents), ``--`` line comments and ``/* */``
block comments, the ``?`` host-parameter marker used by the paper's
example queries, and the operator/punctuation inventory from
:mod:`repro.sql.tokens`.
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenType


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens, ending with a single EOF token."""
    return _Lexer(text).run()


class _Lexer:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1
        self.tokens: list[Token] = []

    # ------------------------------------------------------------------
    def run(self) -> list[Token]:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                self._skip_line_comment()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                self._lex_number()
            elif ch == "'":
                self._lex_string()
            elif ch == '"':
                self._lex_quoted_identifier()
            elif ch.isalpha() or ch == "_":
                self._lex_word()
            elif ch == "?":
                self._emit(TokenType.PARAM, "?", 1)
            else:
                self._lex_operator_or_punct()
        self.tokens.append(Token(TokenType.EOF, None, self.line, self.column))
        return self.tokens

    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _emit(self, type_: TokenType, value, length: int) -> None:
        self.tokens.append(Token(type_, value, self.line, self.column))
        self._advance(length)

    # ------------------------------------------------------------------
    def _skip_line_comment(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        start_line, start_col = self.line, self.column
        self._advance(2)
        while self.pos < len(self.text):
            if self.text[self.pos] == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexError("unterminated block comment", start_line, start_col)

    def _lex_number(self) -> None:
        start = self.pos
        line, col = self.line, self.column
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        raw = self.text[start : self.pos]
        if is_float:
            self.tokens.append(Token(TokenType.FLOAT, float(raw), line, col))
        else:
            self.tokens.append(Token(TokenType.INTEGER, int(raw), line, col))

    def _lex_string(self) -> None:
        line, col = self.line, self.column
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise LexError("unterminated string literal", line, col)
            ch = self.text[self.pos]
            if ch == "'":
                if self._peek(1) == "'":  # '' escapes a quote
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance()
                break
            parts.append(ch)
            self._advance()
        self.tokens.append(Token(TokenType.STRING, "".join(parts), line, col))

    def _lex_quoted_identifier(self) -> None:
        line, col = self.line, self.column
        self._advance()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] != '"':
            self._advance()
        if self.pos >= len(self.text):
            raise LexError("unterminated quoted identifier", line, col)
        name = self.text[start : self.pos]
        self._advance()
        self.tokens.append(Token(TokenType.IDENT, name, line, col))

    def _lex_word(self) -> None:
        line, col = self.line, self.column
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        word = self.text[start : self.pos]
        upper = word.upper()
        if upper in KEYWORDS:
            self.tokens.append(Token(TokenType.KEYWORD, upper, line, col))
        else:
            self.tokens.append(Token(TokenType.IDENT, word, line, col))

    def _lex_operator_or_punct(self) -> None:
        for op in OPERATORS:
            if self.text.startswith(op, self.pos):
                self._emit(TokenType.OPERATOR, op, len(op))
                return
        ch = self.text[self.pos]
        if ch in PUNCTUATION:
            self._emit(TokenType.PUNCT, ch, 1)
            return
        raise LexError(f"unexpected character {ch!r}", self.line, self.column)
