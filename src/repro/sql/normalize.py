"""Literal-to-parameter normalization for plan-cache key construction.

``normalize_statement`` lexes one statement and replaces constant
literals with host-parameter markers, so that textually different
statements like ``SELECT * FROM t WHERE a = 5`` and ``... WHERE a = 6``
share a single cached plan.  The result is

* a canonical normalized text (whitespace/comments collapsed, keywords
  upper-cased, literals replaced by ``?``), usable as a cache key, and
* the *slot recipe*: for each parameter of the normalized statement, in
  order, either the literal value extracted from this text or the index
  of the caller-supplied parameter that occupied that position.

Normalization is **conservative** — a literal is left in place whenever
its concrete value is semantically load-bearing rather than a mere
constant:

* ``LIMIT`` / ``OFFSET`` counts (the grammar requires integer tokens);
* bare integers in ``ORDER BY`` / ``GROUP BY`` lists (ordinals);
* the constant of ``CHEAPEST SUM(1)`` / aggregate ``SUM(1)`` (the binder
  recognizes the literal to select the unweighted BFS path);
* anything inside ``CASE ... END`` (the branch literals drive static
  result-type inference).

Skipping a literal is always safe: it only reduces sharing.  If the
statement contains no normalizable literal, ``None`` is returned and the
caller keeps exact-text caching only.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import SqlError
from .lexer import tokenize
from .tokens import KEYWORDS, Token, TokenType

#: One parameter slot of a normalized statement: ``("lit", value)`` for
#: an extracted literal, ``("user", index)`` for a caller parameter.
Slot = tuple[str, Union[int, float, str, None]]

_LITERALS = (TokenType.INTEGER, TokenType.FLOAT, TokenType.STRING)
_TYPE_TAGS = {
    TokenType.INTEGER: "i",
    TokenType.FLOAT: "f",
    TokenType.STRING: "s",
}

#: Keywords that definitely terminate an ORDER BY / GROUP BY item list
#: at its own nesting depth (expression-internal keywords like CASE,
#: BETWEEN or AND do not — they can only appear *inside* a sort item).
_BY_LIST_ENDERS = frozenset(
    """
    LIMIT OFFSET UNION EXCEPT INTERSECT HAVING FROM WHERE
    GROUP ORDER SELECT
    """.split()
)


def _render(token: Token) -> str:
    if token.type == TokenType.STRING:
        return "'" + str(token.value).replace("'", "''") + "'"
    if token.type == TokenType.IDENT:
        name = str(token.value)
        # re-quote identifiers that came from the "quoted" form: anything
        # that would not re-lex as a plain identifier token
        bare = name and (name[0].isalpha() or name[0] == "_") and all(
            c.isalnum() or c == "_" for c in name
        )
        if not bare or name.upper() in KEYWORDS:
            return '"' + name + '"'
        return name
    return str(token.value)


def normalize_statement(sql: str) -> Optional[tuple[str, list[Slot]]]:
    """Normalized (cache key, slot recipe) for one statement, or None.

    Returns None when the text cannot be lexed or contains no literal
    worth normalizing.
    """
    try:
        tokens = tokenize(sql)
    except SqlError:
        return None
    tokens = [t for t in tokens if t.type != TokenType.EOF]
    parts: list[str] = []
    slots: list[Slot] = []
    signature: list[str] = []
    normalized_any = False
    user_index = 0
    case_depth = 0
    paren_depth = 0
    #: inside an ORDER BY / GROUP BY list: the depth BY was seen at,
    #: or None.  A bare integer right after BY or after a list-level
    #: comma is an ordinal and must keep its value.
    by_depth = None
    expect_ordinal = False

    for i, token in enumerate(tokens):
        is_keyword = token.type == TokenType.KEYWORD
        is_punct = token.type == TokenType.PUNCT
        if is_keyword:
            if token.value == "CASE":
                case_depth += 1
            elif token.value == "END" and case_depth:
                case_depth -= 1
        if is_punct and token.value == "(":
            paren_depth += 1
        elif is_punct and token.value == ")":
            paren_depth -= 1
        # BY-list scope tracking (ordinal protection)
        if by_depth is not None and (
            paren_depth < by_depth
            or (is_punct and token.value == ";")
            or (is_keyword and token.value in _BY_LIST_ENDERS and paren_depth == by_depth)
        ):
            by_depth = None
        ordinal_position = expect_ordinal and by_depth is not None
        if is_keyword and token.value == "BY":
            by_depth = paren_depth
            expect_ordinal = True
        elif by_depth is not None and is_punct and token.value == "," and paren_depth == by_depth:
            expect_ordinal = True
        else:
            expect_ordinal = False

        if token.type == TokenType.PARAM:
            slots.append(("user", user_index))
            user_index += 1
            parts.append("?")
            continue

        if token.type in _LITERALS and not _keep_literal(
            tokens, i, case_depth, ordinal_position
        ):
            slots.append(("lit", token.value))
            parts.append("?")
            signature.append(_TYPE_TAGS[token.type])
            normalized_any = True
            continue

        parts.append(_render(token))

    if not normalized_any:
        return None
    # the key carries the literal *types*: an integer-literal statement
    # never shares a plan (or its bind-time outcome) with a string- or
    # float-literal variant of the same shape
    return " ".join(parts) + " --" + "".join(signature), slots


def _keep_literal(
    tokens: list[Token], i: int, case_depth: int, ordinal_position: bool
) -> bool:
    """True when the literal at ``tokens[i]`` must keep its exact value."""
    if case_depth:
        return True
    if ordinal_position and tokens[i].type == TokenType.INTEGER:
        return True
    prev = tokens[i - 1] if i > 0 else None
    if prev is not None and prev.is_keyword("LIMIT", "OFFSET"):
        return True
    # SUM( <literal> ): the binder's constant-one detection
    if (
        i >= 2
        and tokens[i - 2].is_keyword("SUM")
        and tokens[i - 1].type == TokenType.PUNCT
        and tokens[i - 1].value == "("
        and i + 1 < len(tokens)
        and tokens[i + 1].type == TokenType.PUNCT
        and tokens[i + 1].value == ")"
    ):
        return True
    return False


def merge_params(slots: list[Slot], params: tuple) -> tuple:
    """Actual parameter tuple for a normalized plan: extracted literals
    interleaved with the caller's positional parameters.

    Raises with *user-visible* counts when parameters are missing — the
    internal literal slots must not leak into the error message.
    """
    user_needed = 1 + max(
        (value for kind, value in slots if kind == "user"), default=-1
    )
    if user_needed > len(params):
        from ..errors import ExecutionError

        raise ExecutionError(
            f"statement requires at least {user_needed} parameters, "
            f"got {len(params)}"
        )
    return tuple(
        params[value] if kind == "user" else value for kind, value in slots
    )


__all__ = ["normalize_statement", "merge_params", "Slot"]
