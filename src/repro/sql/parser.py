"""Recursive-descent parser for the SQL dialect plus the graph extension.

Grammar notes specific to the paper (Section 2 / 3.1):

* ``REACHES`` is parsed at the predicate level of the expression grammar::

      additive REACHES additive OVER edge_ref [binding] EDGE ( S , D )

  where ``edge_ref`` is a table name (base table or CTE) or a
  parenthesized subquery.
* ``CHEAPEST SUM ( [ident :] expr )`` is a primary expression; the
  ``AS (ident_list)`` multi-alias is accepted on any projection item and
  recorded in :class:`~repro.sql.ast.SelectItem.alias_list`.
* ``UNNEST ( expr ) [WITH ORDINALITY] [[AS] alias]`` is a FROM item; the
  comma form denotes a lateral inner join.  The left-outer variant is
  written ``LEFT JOIN UNNEST(...) ON TRUE`` (Section 2's "left outer
  lateral join").
* A FROM-less ``SELECT ... WHERE ...`` is legal, as used by the paper's
  Query 13 example (Appendix A.1); its input is one empty row.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenType

#: Binary operator precedence (higher binds tighter).  Predicates
#: (comparison, IS, IN, BETWEEN, LIKE, REACHES) sit between AND and
#: additive operators and do not associate.
_ADDITIVE = ("+", "-", "||")
_MULTIPLICATIVE = ("*", "/", "%")
_COMPARISON = ("=", "<>", "!=", "<", "<=", ">", ">=")


def parse_statement(sql: str) -> ast.Statement:
    """Parse one SQL statement (a trailing semicolon is allowed)."""
    parser = Parser(sql)
    stmt = parser.statement()
    parser.expect_end()
    return stmt


def parse_query(sql: str) -> ast.QueryNode:
    """Parse a query expression; raises ParseError for non-queries."""
    stmt = parse_statement(sql)
    if not isinstance(stmt, ast.QueryStatement):
        raise ParseError("expected a query")
    return stmt.query


def parse_script(sql: str) -> list[ast.Statement]:
    """Parse a semicolon-separated list of statements."""
    parser = Parser(sql)
    statements = []
    while not parser.at_end():
        statements.append(parser.statement())
        if not parser.accept_punct(";"):
            break
    parser.expect_end()
    return statements


class Parser:
    """Stateful token-stream parser.  One instance parses one string."""

    def __init__(self, sql: str):
        self.tokens = tokenize(sql)
        self.pos = 0
        self.param_count = 0

    # ------------------------------------------------------------------
    # token-stream helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type != TokenType.EOF:
            self.pos += 1
        return token

    def at_end(self) -> bool:
        return self.peek().type == TokenType.EOF

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(
            f"{message} (found {token.value!r})", token.line, token.column
        )

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.peek().is_keyword(*names):
            return self.advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        token = self.accept_keyword(*names)
        if token is None:
            raise self.error(f"expected {' or '.join(names)}")
        return token

    def accept_punct(self, value: str) -> bool:
        token = self.peek()
        if token.type == TokenType.PUNCT and token.value == value:
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> None:
        if not self.accept_punct(value):
            raise self.error(f"expected {value!r}")

    def accept_operator(self, *values: str) -> Optional[str]:
        token = self.peek()
        if token.type == TokenType.OPERATOR and token.value in values:
            self.advance()
            return token.value
        return None

    def expect_identifier(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.type == TokenType.IDENT:
            self.advance()
            return token.value
        raise self.error(f"expected {what}")

    def expect_end(self) -> None:
        self.accept_punct(";")
        if not self.at_end():
            raise self.error("unexpected trailing input")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def statement(self) -> ast.Statement:
        token = self.peek()
        if token.is_keyword("CREATE"):
            return self._create()
        if token.is_keyword("DROP"):
            return self._drop()
        if token.is_keyword("INSERT"):
            return self._insert()
        if token.is_keyword("COPY"):
            return self._copy()
        if token.is_keyword("EXPLAIN"):
            self.advance()
            return ast.Explain(self.query())
        if token.is_keyword("ANALYZE"):
            self.advance()
            table = None
            if self.peek().type == TokenType.IDENT:
                table = self.expect_identifier("table name")
            return ast.Analyze(table)
        if token.is_keyword("DELETE"):
            return self._delete()
        if token.is_keyword("UPDATE"):
            return self._update()
        if token.is_keyword("BEGIN"):
            self.advance()
            self.accept_keyword("TRANSACTION", "WORK")
            return ast.Begin()
        if token.is_keyword("COMMIT"):
            self.advance()
            self.accept_keyword("TRANSACTION", "WORK")
            return ast.Commit()
        if token.is_keyword("ROLLBACK"):
            self.advance()
            self.accept_keyword("TRANSACTION", "WORK")
            return ast.Rollback()
        if token.is_keyword("SELECT", "WITH", "VALUES") or (
            token.type == TokenType.PUNCT and token.value == "("
        ):
            return ast.QueryStatement(self.query())
        raise self.error("expected a statement")

    def _delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier("table name")
        where = self.expression() if self.accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    def _update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier("table name")
        self.expect_keyword("SET")
        assignments = [self._assignment()]
        while self.accept_punct(","):
            assignments.append(self._assignment())
        where = self.expression() if self.accept_keyword("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def _assignment(self) -> tuple[str, ast.Expr]:
        column = self.expect_identifier("column name")
        if self.accept_operator("=") is None:
            raise self.error("expected '=' in SET assignment")
        return column, self.expression()

    def _create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("GRAPH"):
            self.expect_keyword("INDEX")
            name = self.expect_identifier("index name")
            self.expect_keyword("ON")
            table = self.expect_identifier("table name")
            self.expect_keyword("EDGE")
            self.expect_punct("(")
            src = self.expect_identifier("source column")
            self.expect_punct(",")
            dst = self.expect_identifier("destination column")
            self.expect_punct(")")
            return ast.CreateGraphIndex(name, table, src, dst)
        self.expect_keyword("TABLE")
        name = self.expect_identifier("table name")
        if self.accept_keyword("AS"):
            return ast.CreateTableAs(name, self.query())
        self.expect_punct("(")
        columns = []
        while True:
            col_name = self.expect_identifier("column name")
            type_name = self._type_name()
            columns.append(ast.ColumnSpec(col_name, type_name))
            # tolerate and ignore inline PRIMARY KEY / NOT NULL constraints
            while self.accept_keyword("PRIMARY", "NOT", "KEY", "NULL"):
                pass
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return ast.CreateTable(name, tuple(columns))

    def _type_name(self) -> str:
        token = self.peek()
        if token.type == TokenType.IDENT:
            self.advance()
            name = token.value
        else:
            raise self.error("expected a type name")
        # swallow optional length/precision arguments: VARCHAR(40), DECIMAL(8,2)
        if self.accept_punct("("):
            while not self.accept_punct(")"):
                self.advance()
        return name

    def _drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("GRAPH"):
            self.expect_keyword("INDEX")
            return ast.DropGraphIndex(self.expect_identifier("index name"))
        self.expect_keyword("TABLE")
        return ast.DropTable(self.expect_identifier("table name"))

    def _insert(self) -> ast.Statement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier("table name")
        columns: tuple[str, ...] = ()
        if self.accept_punct("("):
            names = [self.expect_identifier("column name")]
            while self.accept_punct(","):
                names.append(self.expect_identifier("column name"))
            self.expect_punct(")")
            columns = tuple(names)
        if self.accept_keyword("VALUES"):
            rows = [self._value_row()]
            while self.accept_punct(","):
                rows.append(self._value_row())
            return ast.InsertValues(table, columns, tuple(rows))
        return ast.InsertSelect(table, columns, self.query())

    def _copy(self) -> ast.Copy:
        """``COPY table [(cols)] FROM 'file' [WITH (opt [value], ...)]``."""
        self.expect_keyword("COPY")
        table = self.expect_identifier("table name")
        columns: tuple[str, ...] = ()
        if self.accept_punct("("):
            names = [self.expect_identifier("column name")]
            while self.accept_punct(","):
                names.append(self.expect_identifier("column name"))
            self.expect_punct(")")
            columns = tuple(names)
        self.expect_keyword("FROM")
        token = self.peek()
        if token.type != TokenType.STRING:
            raise self.error("expected a file path string after FROM")
        self.advance()
        path = token.value
        options: list[tuple[str, Any]] = []
        if self.accept_keyword("WITH"):
            self.expect_punct("(")
            while True:
                name = self.expect_identifier("option name").lower()
                value: Any = True
                nxt = self.peek()
                if nxt.type in (
                    TokenType.STRING,
                    TokenType.IDENT,
                    TokenType.INTEGER,
                ):
                    self.advance()
                    value = nxt.value
                elif nxt.is_keyword("TRUE", "FALSE"):
                    self.advance()
                    value = nxt.value == "TRUE"
                options.append((name, value))
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
        return ast.Copy(table, columns, path, tuple(options))

    def _value_row(self) -> tuple[ast.Expr, ...]:
        self.expect_punct("(")
        exprs = [self.expression()]
        while self.accept_punct(","):
            exprs.append(self.expression())
        self.expect_punct(")")
        return tuple(exprs)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self) -> ast.QueryNode:
        ctes: tuple[ast.CommonTableExpr, ...] = ()
        recursive = False
        if self.accept_keyword("WITH"):
            recursive = self.accept_keyword("RECURSIVE") is not None
            cte_list = [self._cte()]
            while self.accept_punct(","):
                cte_list.append(self._cte())
            ctes = tuple(cte_list)
        node = self._set_expression()
        order_by, limit, offset = self._order_limit()
        if isinstance(node, ast.ValuesQuery):
            if ctes or order_by or limit is not None or offset is not None:
                raise self.error(
                    "VALUES does not take WITH/ORDER BY/LIMIT directly; wrap it "
                    "in a derived table"
                )
            return node
        if isinstance(node, ast.Select):
            node = ast.Select(
                items=node.items,
                from_refs=node.from_refs,
                where=node.where,
                group_by=node.group_by,
                having=node.having,
                order_by=node.order_by or order_by,
                limit=node.limit if node.limit is not None else limit,
                offset=node.offset if node.offset is not None else offset,
                distinct=node.distinct,
                ctes=ctes,
                recursive=recursive,
            )
        else:
            node = ast.SetOp(
                op=node.op,
                all=node.all,
                left=node.left,
                right=node.right,
                ctes=ctes,
                recursive=recursive,
                order_by=order_by,
                limit=limit,
                offset=offset,
            )
        return node

    def _cte(self) -> ast.CommonTableExpr:
        name = self.expect_identifier("CTE name")
        column_names: tuple[str, ...] = ()
        if self.accept_punct("("):
            names = [self.expect_identifier("column name")]
            while self.accept_punct(","):
                names.append(self.expect_identifier("column name"))
            self.expect_punct(")")
            column_names = tuple(names)
        self.expect_keyword("AS")
        self.expect_punct("(")
        query = self.query()
        self.expect_punct(")")
        return ast.CommonTableExpr(name, column_names, query)

    def _set_expression(self) -> ast.QueryNode:
        left = self._select_core()
        while True:
            token = self.peek()
            if token.is_keyword("UNION", "EXCEPT", "INTERSECT"):
                self.advance()
                all_ = self.accept_keyword("ALL") is not None
                right = self._select_core()
                left = ast.SetOp(token.value.lower(), all_, left, right)
            else:
                return left

    def _select_core(self) -> ast.QueryNode:
        if self.accept_punct("("):
            inner = self.query()
            self.expect_punct(")")
            return inner
        if self.accept_keyword("VALUES"):
            rows = [self._value_row()]
            while self.accept_punct(","):
                rows.append(self._value_row())
            return ast.ValuesQuery(tuple(rows))
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT") is not None
        self.accept_keyword("ALL")
        items = [self._select_item()]
        while self.accept_punct(","):
            items.append(self._select_item())
        from_refs: tuple[ast.TableRef, ...] = ()
        if self.accept_keyword("FROM"):
            refs = [self._join_tree()]
            while self.accept_punct(","):
                refs.append(self._join_tree())
            from_refs = tuple(refs)
        where = self.expression() if self.accept_keyword("WHERE") else None
        group_by: tuple[ast.Expr, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            exprs = [self.expression()]
            while self.accept_punct(","):
                exprs.append(self.expression())
            group_by = tuple(exprs)
        having = self.expression() if self.accept_keyword("HAVING") else None
        return ast.Select(
            items=tuple(items),
            from_refs=from_refs,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _order_limit(self):
        order_by: tuple[ast.OrderItem, ...] = ()
        limit = offset = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            entries = [self._order_item()]
            while self.accept_punct(","):
                entries.append(self._order_item())
            order_by = tuple(entries)
        if self.accept_keyword("LIMIT"):
            token = self.peek()
            if token.type != TokenType.INTEGER:
                raise self.error("expected integer LIMIT")
            self.advance()
            limit = token.value
        if self.accept_keyword("OFFSET"):
            token = self.peek()
            if token.type != TokenType.INTEGER:
                raise self.error("expected integer OFFSET")
            self.advance()
            offset = token.value
        return order_by, limit, offset

    def _order_item(self) -> ast.OrderItem:
        expr = self.expression()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    def _select_item(self) -> ast.SelectItem:
        token = self.peek()
        # bare * or alias.*
        if token.type == TokenType.OPERATOR and token.value == "*":
            self.advance()
            return ast.SelectItem(ast.Star(None))
        if (
            token.type == TokenType.IDENT
            and self.peek(1).type == TokenType.PUNCT
            and self.peek(1).value == "."
            and self.peek(2).type == TokenType.OPERATOR
            and self.peek(2).value == "*"
        ):
            self.advance()
            self.advance()
            self.advance()
            return ast.SelectItem(ast.Star(token.value))
        expr = self.expression()
        alias = None
        alias_list: tuple[str, ...] = ()
        if self.accept_keyword("AS"):
            if self.accept_punct("("):
                names = [self.expect_identifier("alias")]
                while self.accept_punct(","):
                    names.append(self.expect_identifier("alias"))
                self.expect_punct(")")
                alias_list = tuple(names)
            else:
                alias = self.expect_identifier("alias")
        elif self.peek().type == TokenType.IDENT:
            alias = self.advance().value
        return ast.SelectItem(expr, alias, alias_list)

    # ------------------------------------------------------------------
    # FROM items
    # ------------------------------------------------------------------
    def _join_tree(self) -> ast.TableRef:
        left = self._table_primary()
        while True:
            token = self.peek()
            if token.is_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                right = self._table_primary()
                left = ast.JoinRef(left, right, "cross", None)
            elif token.is_keyword("INNER", "JOIN", "LEFT", "RIGHT"):
                kind = "inner"
                if self.accept_keyword("LEFT"):
                    self.accept_keyword("OUTER")
                    kind = "left"
                elif self.accept_keyword("RIGHT"):
                    self.accept_keyword("OUTER")
                    kind = "right"
                else:
                    self.accept_keyword("INNER")
                self.expect_keyword("JOIN")
                right = self._table_primary()
                condition = None
                if self.accept_keyword("ON"):
                    condition = self.expression()
                left = ast.JoinRef(left, right, kind, condition)
            else:
                return left

    def _table_primary(self) -> ast.TableRef:
        token = self.peek()
        if token.is_keyword("LATERAL"):
            self.advance()
            token = self.peek()
        if token.is_keyword("UNNEST"):
            return self._unnest_ref()
        if token.type == TokenType.PUNCT and token.value == "(":
            self.advance()
            query = self.query()
            self.expect_punct(")")
            self.accept_keyword("AS")
            alias = self.expect_identifier("derived table alias")
            column_aliases: tuple[str, ...] = ()
            if self.accept_punct("("):
                names = [self.expect_identifier("column alias")]
                while self.accept_punct(","):
                    names.append(self.expect_identifier("column alias"))
                self.expect_punct(")")
                column_aliases = tuple(names)
            return ast.DerivedTableRef(query, alias, column_aliases)
        name = self.expect_identifier("table name")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.peek().type == TokenType.IDENT:
            alias = self.advance().value
        return ast.NamedTableRef(name, alias)

    def _unnest_ref(self) -> ast.UnnestRef:
        self.expect_keyword("UNNEST")
        self.expect_punct("(")
        operand = self.expression()
        self.expect_punct(")")
        with_ordinality = False
        if self.accept_keyword("WITH"):
            self.expect_keyword("ORDINALITY")
            with_ordinality = True
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.peek().type == TokenType.IDENT:
            alias = self.advance().value
        return ast.UnnestRef(operand, alias, with_ordinality)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = ast.Binary("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self.accept_keyword("AND"):
            left = ast.Binary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.Unary("not", self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expr:
        left = self._additive()
        token = self.peek()
        if token.is_keyword("REACHES"):
            return self._reaches(left)
        op = self.accept_operator(*_COMPARISON)
        if op is not None:
            if op == "!=":
                op = "<>"
            right = self._additive()
            return ast.Binary(op, left, right)
        if token.is_keyword("IS"):
            self.advance()
            negated = self.accept_keyword("NOT") is not None
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated = False
        if token.is_keyword("NOT") and self.peek(1).is_keyword(
            "BETWEEN", "IN", "LIKE"
        ):
            self.advance()
            negated = True
            token = self.peek()
        if token.is_keyword("BETWEEN"):
            self.advance()
            low = self._additive()
            self.expect_keyword("AND")
            high = self._additive()
            return ast.Between(left, low, high, negated)
        if token.is_keyword("IN"):
            self.advance()
            self.expect_punct("(")
            if self.peek().is_keyword("SELECT", "WITH"):
                query = self.query()
                self.expect_punct(")")
                return ast.InSubquery(left, query, negated)
            items = [self.expression()]
            while self.accept_punct(","):
                items.append(self.expression())
            self.expect_punct(")")
            return ast.InList(left, tuple(items), negated)
        if token.is_keyword("LIKE"):
            self.advance()
            return ast.Like(left, self._additive(), negated)
        return left

    def _reaches(self, source: ast.Expr) -> ast.Reaches:
        self.expect_keyword("REACHES")
        dest = self._additive()
        self.expect_keyword("OVER")
        edge = self._edge_ref()
        binding = None
        if self.peek().type == TokenType.IDENT:
            binding = self.advance().value
        self.expect_keyword("EDGE")
        self.expect_punct("(")
        src_cols = self._edge_key()
        self.expect_punct(",")
        dst_cols = self._edge_key()
        self.expect_punct(")")
        source_tuple = self._endpoint_tuple(source)
        dest_tuple = self._endpoint_tuple(dest)
        if not (
            len(source_tuple) == len(dest_tuple) == len(src_cols) == len(dst_cols)
        ):
            raise self.error(
                "REACHES endpoints and EDGE keys must have the same arity"
            )
        return ast.Reaches(
            source_tuple, dest_tuple, edge, binding, src_cols, dst_cols
        )

    @staticmethod
    def _endpoint_tuple(expr: ast.Expr) -> tuple[ast.Expr, ...]:
        if isinstance(expr, ast.TupleExpr):
            return expr.items
        return (expr,)

    def _edge_key(self) -> tuple[str, ...]:
        """One side of EDGE: a column name or a parenthesized name list."""
        if self.accept_punct("("):
            names = [self.expect_identifier("edge key column")]
            while self.accept_punct(","):
                names.append(self.expect_identifier("edge key column"))
            self.expect_punct(")")
            return tuple(names)
        return (self.expect_identifier("edge key column"),)

    def _edge_ref(self) -> ast.TableRef:
        token = self.peek()
        if token.type == TokenType.PUNCT and token.value == "(":
            self.advance()
            query = self.query()
            self.expect_punct(")")
            # the derived edge table gets its binding as alias later; use a
            # placeholder alias, the binder names it from the binding.
            return ast.DerivedTableRef(query, alias="")
        name = self.expect_identifier("edge table name")
        return ast.NamedTableRef(name, None)

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            op = self.accept_operator(*_ADDITIVE)
            if op is None:
                return left
            left = ast.Binary(op, left, self._multiplicative())

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            op = self.accept_operator(*_MULTIPLICATIVE)
            if op is None:
                return left
            left = ast.Binary(op, left, self._unary())

    def _unary(self) -> ast.Expr:
        op = self.accept_operator("-", "+")
        if op == "-":
            return ast.Unary("-", self._unary())
        if op == "+":
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.peek()
        if token.type == TokenType.INTEGER or token.type == TokenType.FLOAT:
            self.advance()
            return ast.Literal(token.value)
        if token.type == TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.type == TokenType.PARAM:
            self.advance()
            param = ast.Param(self.param_count)
            self.param_count += 1
            return param
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("CHEAPEST"):
            return self._cheapest_sum()
        if token.is_keyword("SUM"):
            # plain aggregate SUM(expr); SUM is reserved for CHEAPEST SUM
            self.advance()
            self.expect_punct("(")
            distinct = self.accept_keyword("DISTINCT") is not None
            arg = self.expression()
            self.expect_punct(")")
            return ast.FuncCall("sum", (arg,), distinct)
        if token.is_keyword("CAST"):
            self.advance()
            self.expect_punct("(")
            operand = self.expression()
            self.expect_keyword("AS")
            type_name = self._type_name()
            self.expect_punct(")")
            return ast.Cast(operand, type_name)
        if token.is_keyword("CASE"):
            return self._case()
        if token.is_keyword("EXISTS"):
            self.advance()
            self.expect_punct("(")
            query = self.query()
            self.expect_punct(")")
            if not isinstance(query, ast.Select):
                raise self.error("EXISTS requires a plain SELECT")
            return ast.Exists(query)
        if token.type == TokenType.PUNCT and token.value == "(":
            self.advance()
            if self.peek().is_keyword("SELECT", "WITH"):
                query = self.query()
                self.expect_punct(")")
                if not isinstance(query, (ast.Select, ast.SetOp)):
                    raise self.error("expected subquery")
                return ast.ScalarSubquery(query)
            expr = self.expression()
            if self.accept_punct(","):
                # a tuple endpoint for multi-attribute REACHES keys
                items = [expr, self.expression()]
                while self.accept_punct(","):
                    items.append(self.expression())
                self.expect_punct(")")
                return ast.TupleExpr(tuple(items))
            self.expect_punct(")")
            return expr
        if token.type == TokenType.IDENT:
            return self._identifier_expr()
        raise self.error("expected an expression")

    def _cheapest_sum(self) -> ast.CheapestSum:
        self.expect_keyword("CHEAPEST")
        self.expect_keyword("SUM")
        self.expect_punct("(")
        binding = None
        if (
            self.peek().type == TokenType.IDENT
            and self.peek(1).type == TokenType.PUNCT
            and self.peek(1).value == ":"
        ):
            binding = self.advance().value
            self.advance()  # ':'
        weight = self.expression()
        self.expect_punct(")")
        return ast.CheapestSum(binding, weight)

    def _case(self) -> ast.Case:
        self.expect_keyword("CASE")
        operand = None
        if not self.peek().is_keyword("WHEN"):
            operand = self.expression()
        whens = []
        while self.accept_keyword("WHEN"):
            cond = self.expression()
            self.expect_keyword("THEN")
            result = self.expression()
            whens.append((cond, result))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        else_ = self.expression() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        return ast.Case(operand, tuple(whens), else_)

    def _identifier_expr(self) -> ast.Expr:
        name = self.advance().value
        # function call?
        if self.peek().type == TokenType.PUNCT and self.peek().value == "(":
            self.advance()
            distinct = self.accept_keyword("DISTINCT") is not None
            args: list[ast.Expr] = []
            if self.peek().type == TokenType.OPERATOR and self.peek().value == "*":
                # COUNT(*)
                self.advance()
                self.expect_punct(")")
                return ast.FuncCall(name.lower(), (ast.Star(None),), distinct)
            if not (self.peek().type == TokenType.PUNCT and self.peek().value == ")"):
                args.append(self.expression())
                while self.accept_punct(","):
                    args.append(self.expression())
            self.expect_punct(")")
            return ast.FuncCall(name.lower(), tuple(args), distinct)
        # qualified column reference?
        if self.peek().type == TokenType.PUNCT and self.peek().value == ".":
            self.advance()
            token = self.peek()
            if token.type == TokenType.IDENT:
                self.advance()
                column = token.value
            elif token.type == TokenType.KEYWORD:
                # after a dot, reserved words act as column names
                # (e.g. R.ordinality from WITH ORDINALITY)
                self.advance()
                column = token.value.lower()
            else:
                raise self.error("expected column name")
            return ast.ColumnRef(name, column)
        return ast.ColumnRef(None, name)
