"""SQL front-end: lexer, AST and parser for the dialect plus the
REACHES / CHEAPEST SUM / UNNEST graph extension of De Leo & Boncz."""

from . import ast
from .lexer import tokenize
from .parser import Parser, parse_query, parse_script, parse_statement
from .tokens import KEYWORDS, Token, TokenType

__all__ = [
    "ast",
    "tokenize",
    "Parser",
    "parse_query",
    "parse_script",
    "parse_statement",
    "KEYWORDS",
    "Token",
    "TokenType",
]
