"""Token definitions for the SQL lexer.

The extension adds four keywords to the language, exactly as the paper's
prototype does for MonetDB (Section 3.1): ``CHEAPEST``, ``REACHES``,
``EDGE`` and ``UNNEST``.  ``OVER`` and ``ORDINALITY`` are also reserved
here because the grammar needs them unambiguously.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    IDENT = "identifier"
    KEYWORD = "keyword"
    INTEGER = "integer literal"
    FLOAT = "float literal"
    STRING = "string literal"
    PARAM = "parameter"  # the host parameter marker '?'
    OPERATOR = "operator"
    PUNCT = "punctuation"
    EOF = "end of input"


#: Reserved words.  Matching is case-insensitive; the lexer upper-cases.
KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS ON USING
    JOIN INNER LEFT RIGHT FULL OUTER CROSS LATERAL
    AND OR NOT IN IS NULL TRUE FALSE BETWEEN LIKE EXISTS
    UNION ALL EXCEPT INTERSECT DISTINCT
    CASE WHEN THEN ELSE END CAST ASC DESC
    WITH RECURSIVE VALUES INSERT INTO CREATE TABLE DROP DELETE UPDATE SET
    PRIMARY KEY FOREIGN REFERENCES
    CHEAPEST SUM REACHES OVER EDGE UNNEST ORDINALITY
    INDEX GRAPH EXPLAIN ANALYZE COPY
    BEGIN COMMIT ROLLBACK TRANSACTION WORK
    """.split()
)

#: Multi-character operators, longest first so the lexer can match greedily.
OPERATORS = ("||", "<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")

PUNCTUATION = ("(", ")", ",", ".", ";", ":")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    value: Any
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
