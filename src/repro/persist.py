"""Database persistence: save/load a catalog to a directory.

Format-v4 layout::

    <dir>/catalog.json        # table schemas + storage descriptors +
                              # graph index specs + stats
    <dir>/<table>.tbl/        # one directory per table
        col<i>.npy            #   plain data  (+ col<i>.mask.npy)
        col<i>.codes.npy      #   dictionary codes + col<i>.dict.npy
        col<i>.rvals.npy      #   RLE runs (+ .rlens.npy / .rmask.npy)
        col<i>.packed.npy     #   subtract-min packed ints (+ mask)
        col<i>.zones.npz      #   persisted per-morsel zone map

Columns are written in their *resting* encoding
(:mod:`repro.storage.encoding`) as raw ``.npy`` files, which —
unlike ``npz`` members — ``np.load(mmap_mode="r")`` can memory-map:
``load()`` installs zero-arg loader thunks in the encodings, so a
reopened database materializes columns lazily on first touch.
``Database(compression=False)`` opts out on both ends: ``save``
writes plain arrays and ``load`` materializes everything eagerly.
Persisted zone maps are discarded on load when their recorded row
count disagrees with the column (the stale case).

Numeric payloads are stored as their numpy arrays; VARCHAR payloads
as fixed-width unicode arrays (NULLs carried by the mask, their slots
store empty strings).  Nested-table columns never occur in base
tables (the engine rejects storing them), so every column is
serializable without pickle.

Two properties ride on the MVCC refactor:

* **Snapshot-consistent**: ``save_database`` pins one
  :class:`~repro.storage.snapshot.Snapshot` up front and serializes the
  pinned table versions, so the saved image is a point-in-time view even
  while writers keep committing — and the save takes no locks at all.
* **Crash-safe**: everything is written into a temporary sibling
  directory first and atomically swapped over the target, so a crash
  mid-save leaves either the complete old image or the complete new one,
  never a half-written mix.

Optimizer statistics recorded by ``ANALYZE`` are persisted alongside the
schemas and restored on load, so a reloaded database plans with real
selectivities instead of magic-number fallbacks until the next ANALYZE.

Built graph indices are persisted too (format v3): each index's vertex
dictionary and CSR arrays land in ``graphindex-<name>.npz`` and are
seeded straight into the reloaded database's index cache, so the first
graph query after ``load()`` pays no lazy rebuild.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import TYPE_CHECKING, Optional

import numpy as np

from .errors import ReproError, WalError
from .storage import (
    Column,
    ColumnStats,
    DataType,
    DictEncoding,
    PackedEncoding,
    PlainEncoding,
    RLEEncoding,
    Schema,
    Snapshot,
    TableStats,
    encode_columns,
)
from .storage.zonemap import ZONE_ROWS, ColumnZoneMap

if TYPE_CHECKING:  # pragma: no cover
    from .api import Database

#: Version 2 added the ``stats`` block; version 3 added persisted graph
#: index CSRs (``graphindex-<name>.npz``); version 4 replaced the
#: per-table npz archive with a ``<table>.tbl/`` directory of raw,
#: mmap-able per-column ``.npy`` files in their resting encodings, plus
#: persisted zone maps.  Every older layout still loads (v1/v2/v3 keep
#: the eager npz reader; missing blocks degrade gracefully).
_FORMAT_VERSION = 4
_SUPPORTED_VERSIONS = (1, 2, 3, 4)


def save_database(
    db: "Database", directory: str, snapshot: Optional[Snapshot] = None
) -> None:
    """Write all tables, graph-index definitions and optimizer stats
    under ``directory``, atomically.

    ``snapshot`` pins the state to serialize; by default a fresh
    whole-catalog snapshot is pinned, so the image is point-in-time
    consistent and concurrent writers are never blocked.
    """
    target = os.path.abspath(directory)
    wal = getattr(db, "wal", None)
    faults = getattr(db, "faults", None)
    checkpoint = None  # (checkpoint_lsn, rotated-out segment seq)
    checkpoint_lsn = None
    if snapshot is None:
        if wal is not None:
            # pin + rotate under the WAL mutex: no commit can slip
            # between the snapshot and its recorded log position
            with wal.mutex:
                snapshot = db.pin_snapshot()
                if wal.paired_target is None:
                    # the first save establishes the image this log
                    # checkpoints against; saves elsewhere are backups
                    # and must never rotate/prune a log they don't own
                    wal.paired_target = target
                if wal.paired_target == target:
                    checkpoint = wal.begin_checkpoint()
                    checkpoint_lsn = checkpoint[0]
                else:
                    checkpoint_lsn = wal.last_lsn
        else:
            snapshot = db.pin_snapshot()
    elif wal is not None:
        raise WalError(
            "cannot checkpoint a durable database from an externally "
            "pinned snapshot: its position in the log is unknown"
        )
    parent = os.path.dirname(target) or os.curdir
    os.makedirs(parent, exist_ok=True)
    staging = tempfile.mkdtemp(
        prefix=os.path.basename(target) + ".saving-", dir=parent
    )
    # mkdtemp creates 0700; restore the umask-derived mode a plain
    # makedirs would have given, so saved images stay as readable as
    # they were before saving became atomic
    umask = os.umask(0)
    os.umask(umask)
    os.chmod(staging, 0o777 & ~umask)
    try:
        if faults is not None:
            faults.fire("save.image.before")
        _write_image(db, snapshot, staging, checkpoint_lsn=checkpoint_lsn)
        # fsync every data file and directory *before* the rename: a
        # crash right after the swap must never leave a renamed-in
        # image whose contents are still unwritten page cache
        _fsync_tree(staging)
        if faults is not None:
            faults.fire("save.swap.before")
        _swap_into_place(staging, target, faults=faults)
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    if checkpoint is not None:
        # only after the image swap succeeded are the covered segments
        # disposable
        wal.finish_checkpoint(checkpoint[1])


def _fsync_tree(root: str) -> None:
    """fsync every file, then every directory, under ``root`` — the
    staged image is fully on disk before the atomic rename publishes
    it (rename metadata can otherwise be reordered past data writes)."""
    for dirpath, _dirnames, filenames in os.walk(root, topdown=False):
        for filename in filenames:
            with open(os.path.join(dirpath, filename), "rb") as handle:
                os.fsync(handle.fileno())
        _fsync_dir_entry(dirpath)


def _fsync_dir_entry(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_image(
    db: "Database",
    snapshot: Snapshot,
    directory: str,
    checkpoint_lsn: "Optional[int]" = None,
) -> None:
    compression = getattr(db, "compression", True)
    tables_meta = {}
    for name in snapshot.table_names():
        version = snapshot.table_version(name)
        if compression:
            # make encoded storage the resting format of the image: any
            # column ANALYZE has not visited yet gets its encoding (and
            # zone maps) here, at write time
            encode_columns(version)
            version.build_zone_maps()
        tables_meta[name] = {
            "columns": [[c.name, c.type.value] for c in version.schema],
            "storage": _write_table(
                version, os.path.join(directory, f"{name}.tbl"), compression
            ),
        }
    meta = {
        "format_version": _FORMAT_VERSION,
        "tables": tables_meta,
        "graph_indices": {
            index_name: list(spec)
            for index_name, spec in db.graph_indices.specs().items()
        },
        "graph_index_files": _write_graph_indices(db, snapshot, directory),
        "stats": _dump_stats(db, snapshot),
    }
    if checkpoint_lsn is not None:
        # recovery skips WAL records at or below this LSN: the image
        # already contains their effects
        meta["wal"] = {"checkpoint_lsn": int(checkpoint_lsn)}
    with open(os.path.join(directory, "catalog.json"), "w") as handle:
        json.dump(meta, handle, indent=2)


# ---------------------------------------------------------------------------
# format-v4 per-column files
# ---------------------------------------------------------------------------
def _strify(values) -> np.ndarray:
    """Object payload → fixed-width unicode; NULL slots store ""."""
    return np.array(["" if v is None else v for v in values], dtype=np.str_)


def _write_table(version, table_dir: str, compression: bool) -> list:
    """Write every column of ``version`` as per-column ``.npy`` files in
    its resting encoding; returns the per-column storage descriptors
    recorded in ``catalog.json`` (the layout the loader rebuilds from).
    """
    os.makedirs(table_dir, exist_ok=True)
    descriptors = []
    for i, column in enumerate(version.columns):
        if column.type == DataType.NESTED_TABLE:  # pragma: no cover
            raise ReproError("nested tables cannot be persisted")
        base = os.path.join(table_dir, f"col{i}")
        is_str = column.type.numpy_dtype == np.dtype(object)
        n = len(column)
        enc = column.encoding if compression else None
        if isinstance(enc, DictEncoding):
            np.save(base + ".codes.npy", enc.codes, allow_pickle=False)
            uniques = _strify(enc.uniques) if is_str else enc.uniques
            np.save(base + ".dict.npy", uniques, allow_pickle=False)
            desc = {
                "kind": "dict", "n": n,
                "has_null": enc.has_null, "str": is_str,
            }
        elif isinstance(enc, RLEEncoding):
            values = _strify(enc.values) if is_str else enc.values
            np.save(base + ".rvals.npy", values, allow_pickle=False)
            np.save(base + ".rlens.npy", enc.lengths, allow_pickle=False)
            if enc.run_mask is not None:
                np.save(base + ".rmask.npy", enc.run_mask, allow_pickle=False)
            desc = {
                "kind": "rle", "n": n,
                "mask": enc.run_mask is not None, "str": is_str,
            }
        elif isinstance(enc, PackedEncoding):
            np.save(base + ".packed.npy", enc.packed, allow_pickle=False)
            mask = enc.null_mask()
            if mask is not None:
                np.save(base + ".mask.npy", mask, allow_pickle=False)
            desc = {
                "kind": "pack", "n": n, "mask": mask is not None,
                "lo": 0 if enc.zone_rows else enc.lo, "span": enc.span,
            }
            if enc.zone_rows:
                # per-zone frame-of-reference minima ride as their own file
                np.save(base + ".lo.npy", np.asarray(enc.lo), allow_pickle=False)
                desc["zone_rows"] = enc.zone_rows
        else:
            data = _strify(column.data) if is_str else column.data
            np.save(base + ".npy", data, allow_pickle=False)
            mask = column.mask
            if mask is not None:
                np.save(base + ".mask.npy", mask, allow_pickle=False)
            desc = {
                "kind": "plain", "n": n,
                "mask": mask is not None, "str": is_str,
            }
        zone_map = (column._zones or {}).get(ZONE_ROWS)
        if compression and zone_map is not None:
            np.savez(
                base + ".zones.npz",
                mins=zone_map.mins,
                maxs=zone_map.maxs,
                null_counts=zone_map.null_counts,
                has_values=zone_map.has_values,
                meta=np.array(
                    [zone_map.granularity, zone_map.n_rows], dtype=np.int64
                ),
            )
            desc["zones"] = True
        descriptors.append(desc)
    return descriptors


def _lazy(path: str):
    """Zero-arg mmap loader thunk for one ``.npy`` payload."""
    return lambda: np.load(path, mmap_mode="r")


def _lazy_str(path: str, mask_path: "str | None" = None):
    """Loader thunk decoding a fixed-width unicode file back to the
    engine's object arrays (None restored from ``mask_path`` slots)."""

    def thunk():
        raw = np.load(path, mmap_mode="r")
        mask = np.load(mask_path) if mask_path is not None else None
        out = np.empty(len(raw), dtype=object)
        for j, value in enumerate(raw):
            out[j] = None if mask is not None and mask[j] else str(value)
        return out

    return thunk


def _load_column_v4(
    type_: DataType, desc: dict, base: str, compression: bool
) -> Column:
    """Rebuild one column from its storage descriptor, lazily.

    Every payload slot holds an ``np.load(mmap_mode="r")`` thunk, so
    nothing is read until the column is first touched; with
    ``compression=False`` the column is materialized eagerly to a plain
    array instead.
    """
    n = int(desc["n"])
    kind = desc["kind"]
    is_str = bool(desc.get("str"))
    has_mask = bool(desc.get("mask"))
    if kind == "dict":
        uniques = (
            _lazy_str(base + ".dict.npy") if is_str else _lazy(base + ".dict.npy")
        )
        enc = DictEncoding(
            n, _lazy(base + ".codes.npy"), uniques,
            bool(desc.get("has_null")), type_.numpy_dtype,
        )
    elif kind == "rle":
        mask_path = base + ".rmask.npy" if has_mask else None
        values = (
            _lazy_str(base + ".rvals.npy", mask_path)
            if is_str
            else _lazy(base + ".rvals.npy")
        )
        enc = RLEEncoding(
            n, values, _lazy(base + ".rlens.npy"),
            _lazy(mask_path) if mask_path else None, type_,
        )
    elif kind == "pack":
        zone_rows = int(desc.get("zone_rows", 0))
        lo = _lazy(base + ".lo.npy") if zone_rows else int(desc["lo"])
        enc = PackedEncoding(
            n, _lazy(base + ".packed.npy"),
            _lazy(base + ".mask.npy") if has_mask else None,
            lo, int(desc["span"]), type_.numpy_dtype, zone_rows,
        )
    else:
        mask_path = base + ".mask.npy" if has_mask else None
        data = (
            _lazy_str(base + ".npy", mask_path) if is_str else _lazy(base + ".npy")
        )
        enc = PlainEncoding(n, data, _lazy(mask_path) if mask_path else None)
    column = Column.from_encoding(type_, enc)
    if compression and desc.get("zones") and os.path.exists(base + ".zones.npz"):
        archive = np.load(base + ".zones.npz")
        granularity, n_rows = (int(v) for v in archive["meta"])
        # stale guard: a zone map recorded against a different version's
        # row count is silently dropped (it rebuilds lazily at scan time)
        if n_rows == n:
            column._zones = {
                granularity: ColumnZoneMap(
                    granularity, n_rows,
                    archive["mins"], archive["maxs"],
                    archive["null_counts"], archive["has_values"],
                )
            }
    if not compression:
        column = Column(type_, column.data, column.mask)
    return column


# ---------------------------------------------------------------------------
# graph index CSRs
# ---------------------------------------------------------------------------
def _write_graph_indices(db: "Database", snapshot: Snapshot, directory: str) -> dict:
    """Persist each *built* graph index's domain + CSR, so ``load()``
    restores prepared indices instead of rebuilding them lazily on the
    first query.  Only libraries already in the cache — and built from
    exactly the table version being saved — are serialized: ``save()``
    never pays a CSR build for an index nobody queried (nor evicts hot
    cache entries doing so); an unbuilt/stale index simply rebuilds
    lazily after load, as in pre-v3 images.  An index carrying a live
    overlay delta is compacted into a canonical CSR first
    (``library_for_save``), so images never contain overlay state —
    a reloaded database starts from a fresh base and re-accumulates
    deltas as DML arrives.  Filenames use a ``-`` that
    no SQL identifier can contain, so they can never collide with a
    ``<table>.npz`` archive.
    """
    files = {}
    for index_name, spec in db.graph_indices.specs().items():
        table = spec[0]
        library = db.graph_indices.library_for_save(
            index_name, snapshot.table_version(table).version_id
        )
        if library is None:
            continue  # never built (or stale): lazy rebuild after load
        values = library.domain.values
        domain_kind = "object" if values.dtype == np.dtype(object) else "numeric"
        if domain_kind == "object":
            values = np.array(
                ["" if v is None else v for v in values], dtype=np.str_
            )
        file_name = f"graphindex-{index_name}.npz"
        np.savez_compressed(
            os.path.join(directory, file_name),
            domain_values=values,
            indptr=library.csr.indptr,
            dst=library.csr.dst,
            src=library.csr.src,
            edge_rows=library.csr.edge_rows,
        )
        files[index_name] = {"file": file_name, "domain_kind": domain_kind}
    return files


def _restore_graph_indices(db: "Database", directory: str, meta: dict) -> None:
    from .graph import GraphLibrary

    for index_name, entry in meta.get("graph_index_files", {}).items():
        path = os.path.join(directory, entry["file"])
        if not os.path.exists(path):  # pragma: no cover - defensive
            continue
        archive = np.load(path)
        values = archive["domain_values"]
        if entry.get("domain_kind") == "object":
            decoded = np.empty(len(values), dtype=object)
            for i, value in enumerate(values):
                decoded[i] = str(value)
            values = decoded
        db.graph_indices.seed(
            index_name,
            GraphLibrary.from_parts(
                values,
                archive["indptr"],
                archive["dst"],
                archive["src"],
                archive["edge_rows"],
            ),
        )


def _swap_into_place(staging: str, target: str, faults=None) -> None:
    """Move the fully-written ``staging`` directory over ``target``.

    POSIX ``rename`` cannot replace a non-empty directory, so an
    existing target is renamed aside first and removed only after the
    new image is in place — at every instant at least one complete
    image exists under some name.  The parent directory is fsynced
    after the renames so the swap itself is durable, and
    :func:`_recover_interrupted_save` can put things right if the
    process dies between the two renames.
    """
    parent = os.path.dirname(target) or os.curdir
    displaced = None
    if os.path.exists(target):
        holding = tempfile.mkdtemp(
            prefix=os.path.basename(target) + ".replaced-", dir=parent
        )
        displaced = os.path.join(holding, "old")
        os.rename(target, displaced)
        if faults is not None:
            faults.fire("save.swap.mid")
    try:
        os.rename(staging, target)
    except OSError:
        if displaced is not None:  # restore the old image, best effort
            os.rename(displaced, target)
            shutil.rmtree(os.path.dirname(displaced), ignore_errors=True)
        _fsync_dir_entry(parent)
        raise
    _fsync_dir_entry(parent)
    if faults is not None:
        faults.fire("save.swap.after")
    if displaced is not None:
        shutil.rmtree(os.path.dirname(displaced), ignore_errors=True)
        _fsync_dir_entry(parent)


def _recover_interrupted_save(target: str) -> None:
    """Clean up the debris of a save that was killed mid-flight.

    ``<base>.saving-*`` staging directories are incomplete by
    construction and are removed.  A ``<base>.replaced-*/old`` entry is
    the previous complete image renamed aside during the swap: if the
    crash landed between the two renames the target itself is missing,
    so the old image is restored; otherwise the holding directory is
    leftover garbage and is dropped.
    """
    parent = os.path.dirname(target) or os.curdir
    base = os.path.basename(target)
    if not os.path.isdir(parent):
        return
    for entry in sorted(os.listdir(parent)):
        path = os.path.join(parent, entry)
        if not os.path.isdir(path):
            continue
        if entry.startswith(base + ".saving-"):
            shutil.rmtree(path, ignore_errors=True)
        elif entry.startswith(base + ".replaced-"):
            displaced = os.path.join(path, "old")
            if not os.path.exists(target) and os.path.isdir(displaced):
                os.rename(displaced, target)
            shutil.rmtree(path, ignore_errors=True)


# ---------------------------------------------------------------------------
# optimizer statistics
# ---------------------------------------------------------------------------
def _dump_stats(db: "Database", snapshot: Snapshot) -> dict:
    """Statistics to persist, made consistent with the *pinned* image:
    row counts come from the snapshot versions being saved (the live
    StatsManager may already describe newer commits), and column stats
    recorded against a different version than the saved one are flagged
    stale so the reloaded database knows to re-ANALYZE."""
    pinned = set(snapshot.table_names())
    dumped = {}
    for name, stats in db.stats.describe().items():
        if name not in pinned:
            continue
        version = snapshot.table_version(name)
        dumped[name] = {
            "row_count": version.num_rows,
            "stale": stats.stale or stats.version != version.version_id,
            "columns": {
                column_name: {
                    "null_count": column.null_count,
                    "distinct": column.distinct,
                    "min_value": column.min_value,
                    "max_value": column.max_value,
                }
                for column_name, column in stats.columns.items()
            },
        }
    return dumped


def _restore_stats(db: "Database", dumped: dict) -> None:
    for name, entry in dumped.items():
        if not db.catalog.has(name):  # pragma: no cover - defensive
            continue
        stats = TableStats(
            table=name,
            row_count=int(entry["row_count"]),
            # rebind to the freshly-loaded table's version so the stats
            # are not spuriously flagged stale by the next write
            version=db.catalog.get(name).version,
            stale=bool(entry.get("stale", False)),
        )
        for column_name, column in entry["columns"].items():
            stats.columns[column_name] = ColumnStats(
                null_count=int(column["null_count"]),
                distinct=int(column["distinct"]),
                min_value=column.get("min_value"),
                max_value=column.get("max_value"),
            )
        db.stats.restore(stats)


def load_database(directory: str, **options) -> "Database":
    """Recreate a Database previously written by :func:`save_database`.

    Keyword ``options`` are forwarded to the :class:`Database`
    constructor.  Format-v4 images load lazily — per-column
    ``np.load(mmap_mode="r")`` thunks materialize on first touch —
    unless ``compression=False``, which decodes everything eagerly to
    plain arrays.  v1–v3 npz images load eagerly, as always.

    If a write-ahead log sits next to the image (or at ``wal_dir``),
    records past the image's checkpoint are replayed, so the reloaded
    database contains every change the log made durable — including
    commits a crash prevented from ever being checkpointed.  Pass
    ``durability="commit"``/``"batch"`` to keep logging after the load
    (:meth:`Database.open` defaults to that); the default here is
    ``durability="off"``: recover, then run in-memory.
    """
    durability = options.pop("durability", "off")
    wal_dir = options.pop("wal_dir", None)
    return _open_database(
        directory,
        durability=durability,
        wal_dir=wal_dir,
        create_missing=False,
        options=options,
    )


def open_database(
    directory: str,
    *,
    durability: str = "commit",
    wal_dir: Optional[str] = None,
    **options,
) -> "Database":
    """Open ``directory`` as a durable database.

    The recovery entry point behind :meth:`Database.open`:

    1. leftover temp directories from a save killed mid-swap are
       cleaned up (the previous complete image is restored if the kill
       landed between the two renames);
    2. the newest checkpoint image — if any — is loaded;
    3. the write-ahead log is scanned, a torn tail (from a crash during
       an append) is truncated, and every intact record past the
       image's checkpoint LSN is replayed through the live write paths,
       in commit order;
    4. a :class:`~repro.storage.wal.WriteAheadLog` continuing at the
       recovered LSN is attached (unless ``durability="off"``), so new
       commits keep being logged.

    Unlike :func:`load_database`, a directory with neither an image nor
    a log is not an error: a fresh empty database is created and its
    log started — ``open`` is idempotent "create or recover".
    ``db.recovery_info`` describes what recovery did.
    """
    return _open_database(
        directory,
        durability=durability,
        wal_dir=wal_dir,
        create_missing=True,
        options=options,
    )


def _open_database(
    directory: str,
    *,
    durability: str,
    wal_dir: Optional[str],
    create_missing: bool,
    options: dict,
) -> "Database":
    from .api import Database
    from .storage.wal import (
        WriteAheadLog,
        apply_record,
        default_wal_directory,
        scan_wal,
        wal_exists,
    )

    if durability not in ("off", "commit", "batch"):
        raise ValueError(
            f"durability must be 'off', 'commit' or 'batch', "
            f"not {durability!r}"
        )
    target = os.path.abspath(directory)
    _recover_interrupted_save(target)
    wal_path = (
        os.path.abspath(wal_dir) if wal_dir else default_wal_directory(target)
    )
    has_image = os.path.exists(os.path.join(target, "catalog.json"))
    has_wal = wal_exists(wal_path)
    if not has_image and not has_wal and not create_missing:
        raise ReproError(f"not a saved database: {directory!r}")
    if has_image:
        db, checkpoint_lsn = _load_image(target, options)
    else:
        db = Database(**options)
        checkpoint_lsn = 0
    scan = scan_wal(wal_path) if has_wal else None
    replayed = skipped = 0
    if scan is not None:
        live = [r for r in scan.records if r.lsn > checkpoint_lsn]
        skipped = len(scan.records) - len(live)
        if live and live[0].lsn > checkpoint_lsn + 1:
            raise WalError(
                f"write-ahead log at {wal_path!r} is missing records: the "
                f"image checkpoints at lsn {checkpoint_lsn} but the first "
                f"surviving log record is lsn {live[0].lsn}"
            )
        # db.wal is still None here, so replay installs versions
        # without re-logging the records it is reading
        for record in live:
            apply_record(db, record)
            replayed += 1
    last_lsn = max(checkpoint_lsn, scan.last_lsn if scan is not None else 0)
    # leftover spill files from a crashed budgeted run are garbage by
    # construction (spills never outlive their query) — sweep them and
    # root this database's spill manager under its own directory
    from .storage.spill import SpillManager

    swept_spill = SpillManager.sweep(target)
    db.spill_manager.close()
    db.spill_manager = SpillManager(
        directory=os.path.join(target, SpillManager.DIR_NAME),
        counters=db.spill_counters,
    )
    db.recovery_info = {
        "directory": target,
        "wal_directory": wal_path,
        "had_image": has_image,
        "had_wal": has_wal,
        "checkpoint_lsn": checkpoint_lsn,
        "last_lsn": last_lsn,
        "replayed": replayed,
        "skipped": skipped,
        "duplicates": scan.duplicates if scan is not None else 0,
        "segments": scan.segments if scan is not None else 0,
        "truncated_bytes": scan.truncated_bytes if scan is not None else 0,
        "truncate_reason": scan.truncate_reason if scan is not None else None,
        "dropped_segments": scan.dropped_segments if scan is not None else 0,
        "swept_spill_files": swept_spill,
    }
    if durability != "off":
        wal = WriteAheadLog(
            wal_path,
            durability=durability,
            faults=db.faults,
            start_lsn=last_lsn,
            start_seq=scan.next_seq if scan is not None else 1,
        )
        wal.paired_target = target
        db.durability = durability
        db.wal = wal
    return db


def _load_image(directory: str, options: dict) -> "tuple[Database, int]":
    """Load one checkpoint image; returns the database plus the
    checkpoint LSN its WAL block recorded (0 for images saved without
    an active log — every log record is then past the checkpoint)."""
    from .api import Database

    meta_path = os.path.join(directory, "catalog.json")
    with open(meta_path) as handle:
        meta = json.load(handle)
    if meta.get("format_version") not in _SUPPORTED_VERSIONS:
        raise ReproError(
            f"unsupported database format {meta.get('format_version')!r}"
        )
    db = Database(**options)
    v4 = meta.get("format_version", 1) >= 4
    for name, table_meta in meta["tables"].items():
        columns_spec = [
            (column_name, DataType(type_name))
            for column_name, type_name in table_meta["columns"]
        ]
        table = db.catalog.create_table(name, Schema(columns_spec))
        if v4:
            table_dir = os.path.join(directory, f"{name}.tbl")
            storage = table_meta.get("storage", [])
            columns = [
                _load_column_v4(
                    type_,
                    storage[i],
                    os.path.join(table_dir, f"col{i}"),
                    db.compression,
                )
                for i, (_, type_) in enumerate(columns_spec)
            ]
        else:
            archive = np.load(os.path.join(directory, f"{name}.npz"))
            columns = []
            for i, (_, type_) in enumerate(columns_spec):
                data = archive[f"col{i}_data"]
                mask = archive[f"col{i}_mask"]
                if type_.numpy_dtype == np.dtype(object):
                    decoded = np.empty(len(data), dtype=object)
                    for j, value in enumerate(data):
                        decoded[j] = None if mask[j] else str(value)
                    data = decoded
                else:
                    data = data.astype(type_.numpy_dtype)
                columns.append(Column(type_, data, mask if mask.any() else None))
        if columns and len(columns[0]):
            table.insert_columns(columns)
    for index_name, spec in meta.get("graph_indices", {}).items():
        db.graph_indices.create(index_name, *spec)
    _restore_graph_indices(db, directory, meta)
    _restore_stats(db, meta.get("stats", {}))
    return db, int(meta.get("wal", {}).get("checkpoint_lsn", 0))
