"""Database persistence: save/load a catalog to a directory.

Layout::

    <dir>/catalog.json        # table schemas + graph index specs
    <dir>/<table>.npz         # one compressed archive per table

Numeric columns are stored as their numpy arrays; VARCHAR columns as
fixed-width unicode arrays (NULLs carried by the mask, their slots store
empty strings).  Nested-table columns never occur in base tables (the
engine rejects storing them), so every column is serializable without
pickle.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING

import numpy as np

from .errors import ReproError
from .storage import Column, DataType, Schema

if TYPE_CHECKING:  # pragma: no cover
    from .api import Database

_FORMAT_VERSION = 1


def save_database(db: "Database", directory: str) -> None:
    """Write all tables and graph-index definitions under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    tables_meta = {}
    for name in db.catalog.table_names():
        table = db.catalog.get(name)
        tables_meta[name] = {
            "columns": [[c.name, c.type.value] for c in table.schema],
        }
        arrays = {}
        for i, column in enumerate(table.columns()):
            if column.type == DataType.NESTED_TABLE:  # pragma: no cover
                raise ReproError("nested tables cannot be persisted")
            if column.type.numpy_dtype == np.dtype(object):
                data = np.array(
                    ["" if v is None else v for v in column.data], dtype=np.str_
                )
            else:
                data = column.data
            arrays[f"col{i}_data"] = data
            arrays[f"col{i}_mask"] = column.null_mask()
        np.savez_compressed(os.path.join(directory, f"{name}.npz"), **arrays)
    meta = {
        "format_version": _FORMAT_VERSION,
        "tables": tables_meta,
        "graph_indices": {
            index_name: list(spec)
            for index_name, spec in db.graph_indices.specs().items()
        },
    }
    with open(os.path.join(directory, "catalog.json"), "w") as handle:
        json.dump(meta, handle, indent=2)


def load_database(directory: str) -> "Database":
    """Recreate a Database previously written by :func:`save_database`."""
    from .api import Database

    meta_path = os.path.join(directory, "catalog.json")
    if not os.path.exists(meta_path):
        raise ReproError(f"not a saved database: {directory!r}")
    with open(meta_path) as handle:
        meta = json.load(handle)
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported database format {meta.get('format_version')!r}"
        )
    db = Database()
    for name, table_meta in meta["tables"].items():
        columns_spec = [
            (column_name, DataType(type_name))
            for column_name, type_name in table_meta["columns"]
        ]
        table = db.catalog.create_table(name, Schema(columns_spec))
        archive = np.load(os.path.join(directory, f"{name}.npz"))
        columns = []
        for i, (_, type_) in enumerate(columns_spec):
            data = archive[f"col{i}_data"]
            mask = archive[f"col{i}_mask"]
            if type_.numpy_dtype == np.dtype(object):
                decoded = np.empty(len(data), dtype=object)
                for j, value in enumerate(data):
                    decoded[j] = None if mask[j] else str(value)
                data = decoded
            else:
                data = data.astype(type_.numpy_dtype)
            columns.append(Column(type_, data, mask if mask.any() else None))
        if columns and len(columns[0]):
            table.insert_columns(columns)
    for index_name, spec in meta.get("graph_indices", {}).items():
        db.graph_indices.create(index_name, *spec)
    return db
