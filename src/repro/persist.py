"""Database persistence: save/load a catalog to a directory.

Layout::

    <dir>/catalog.json        # table schemas + graph index specs + stats
    <dir>/<table>.npz         # one compressed archive per table

Numeric columns are stored as their numpy arrays; VARCHAR columns as
fixed-width unicode arrays (NULLs carried by the mask, their slots store
empty strings).  Nested-table columns never occur in base tables (the
engine rejects storing them), so every column is serializable without
pickle.

Two properties ride on the MVCC refactor:

* **Snapshot-consistent**: ``save_database`` pins one
  :class:`~repro.storage.snapshot.Snapshot` up front and serializes the
  pinned table versions, so the saved image is a point-in-time view even
  while writers keep committing — and the save takes no locks at all.
* **Crash-safe**: everything is written into a temporary sibling
  directory first and atomically swapped over the target, so a crash
  mid-save leaves either the complete old image or the complete new one,
  never a half-written mix.

Optimizer statistics recorded by ``ANALYZE`` are persisted alongside the
schemas and restored on load, so a reloaded database plans with real
selectivities instead of magic-number fallbacks until the next ANALYZE.

Built graph indices are persisted too (format v3): each index's vertex
dictionary and CSR arrays land in ``graphindex-<name>.npz`` and are
seeded straight into the reloaded database's index cache, so the first
graph query after ``load()`` pays no lazy rebuild.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import TYPE_CHECKING, Optional

import numpy as np

from .errors import ReproError
from .storage import Column, ColumnStats, DataType, Schema, Snapshot, TableStats

if TYPE_CHECKING:  # pragma: no cover
    from .api import Database

#: Version 2 added the ``stats`` block; version 3 added persisted graph
#: index CSRs (``graphindex-<name>.npz``).  Both are optional on load,
#: so older images still load (their CSRs rebuild lazily as before).
_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)


def save_database(
    db: "Database", directory: str, snapshot: Optional[Snapshot] = None
) -> None:
    """Write all tables, graph-index definitions and optimizer stats
    under ``directory``, atomically.

    ``snapshot`` pins the state to serialize; by default a fresh
    whole-catalog snapshot is pinned, so the image is point-in-time
    consistent and concurrent writers are never blocked.
    """
    if snapshot is None:
        snapshot = db.pin_snapshot()
    target = os.path.abspath(directory)
    parent = os.path.dirname(target) or os.curdir
    os.makedirs(parent, exist_ok=True)
    staging = tempfile.mkdtemp(
        prefix=os.path.basename(target) + ".saving-", dir=parent
    )
    # mkdtemp creates 0700; restore the umask-derived mode a plain
    # makedirs would have given, so saved images stay as readable as
    # they were before saving became atomic
    umask = os.umask(0)
    os.umask(umask)
    os.chmod(staging, 0o777 & ~umask)
    try:
        _write_image(db, snapshot, staging)
        _swap_into_place(staging, target)
    finally:
        shutil.rmtree(staging, ignore_errors=True)


def _write_image(db: "Database", snapshot: Snapshot, directory: str) -> None:
    tables_meta = {}
    for name in snapshot.table_names():
        version = snapshot.table_version(name)
        tables_meta[name] = {
            "columns": [[c.name, c.type.value] for c in version.schema],
        }
        arrays = {}
        for i, column in enumerate(version.columns):
            if column.type == DataType.NESTED_TABLE:  # pragma: no cover
                raise ReproError("nested tables cannot be persisted")
            if column.type.numpy_dtype == np.dtype(object):
                data = np.array(
                    ["" if v is None else v for v in column.data], dtype=np.str_
                )
            else:
                data = column.data
            arrays[f"col{i}_data"] = data
            arrays[f"col{i}_mask"] = column.null_mask()
        np.savez_compressed(os.path.join(directory, f"{name}.npz"), **arrays)
    meta = {
        "format_version": _FORMAT_VERSION,
        "tables": tables_meta,
        "graph_indices": {
            index_name: list(spec)
            for index_name, spec in db.graph_indices.specs().items()
        },
        "graph_index_files": _write_graph_indices(db, snapshot, directory),
        "stats": _dump_stats(db, snapshot),
    }
    with open(os.path.join(directory, "catalog.json"), "w") as handle:
        json.dump(meta, handle, indent=2)


# ---------------------------------------------------------------------------
# graph index CSRs
# ---------------------------------------------------------------------------
def _write_graph_indices(db: "Database", snapshot: Snapshot, directory: str) -> dict:
    """Persist each *built* graph index's domain + CSR, so ``load()``
    restores prepared indices instead of rebuilding them lazily on the
    first query.  Only libraries already in the cache — and built from
    exactly the table version being saved — are serialized: ``save()``
    never pays a CSR build for an index nobody queried (nor evicts hot
    cache entries doing so); an unbuilt/stale index simply rebuilds
    lazily after load, as in pre-v3 images.  Filenames use a ``-`` that
    no SQL identifier can contain, so they can never collide with a
    ``<table>.npz`` archive.
    """
    files = {}
    for index_name, spec in db.graph_indices.specs().items():
        table = spec[0]
        library = db.graph_indices.cached_library(
            index_name, snapshot.table_version(table).version_id
        )
        if library is None:
            continue  # never built (or stale): lazy rebuild after load
        values = library.domain.values
        domain_kind = "object" if values.dtype == np.dtype(object) else "numeric"
        if domain_kind == "object":
            values = np.array(
                ["" if v is None else v for v in values], dtype=np.str_
            )
        file_name = f"graphindex-{index_name}.npz"
        np.savez_compressed(
            os.path.join(directory, file_name),
            domain_values=values,
            indptr=library.csr.indptr,
            dst=library.csr.dst,
            src=library.csr.src,
            edge_rows=library.csr.edge_rows,
        )
        files[index_name] = {"file": file_name, "domain_kind": domain_kind}
    return files


def _restore_graph_indices(db: "Database", directory: str, meta: dict) -> None:
    from .graph import GraphLibrary

    for index_name, entry in meta.get("graph_index_files", {}).items():
        path = os.path.join(directory, entry["file"])
        if not os.path.exists(path):  # pragma: no cover - defensive
            continue
        archive = np.load(path)
        values = archive["domain_values"]
        if entry.get("domain_kind") == "object":
            decoded = np.empty(len(values), dtype=object)
            for i, value in enumerate(values):
                decoded[i] = str(value)
            values = decoded
        db.graph_indices.seed(
            index_name,
            GraphLibrary.from_parts(
                values,
                archive["indptr"],
                archive["dst"],
                archive["src"],
                archive["edge_rows"],
            ),
        )


def _swap_into_place(staging: str, target: str) -> None:
    """Move the fully-written ``staging`` directory over ``target``.

    POSIX ``rename`` cannot replace a non-empty directory, so an
    existing target is renamed aside first and removed only after the
    new image is in place — at every instant at least one complete
    image exists under some name.
    """
    displaced = None
    if os.path.exists(target):
        holding = tempfile.mkdtemp(
            prefix=os.path.basename(target) + ".replaced-",
            dir=os.path.dirname(target) or os.curdir,
        )
        displaced = os.path.join(holding, "old")
        os.rename(target, displaced)
    try:
        os.rename(staging, target)
    except OSError:
        if displaced is not None:  # restore the old image, best effort
            os.rename(displaced, target)
        raise
    finally:
        if displaced is not None:
            shutil.rmtree(os.path.dirname(displaced), ignore_errors=True)


# ---------------------------------------------------------------------------
# optimizer statistics
# ---------------------------------------------------------------------------
def _dump_stats(db: "Database", snapshot: Snapshot) -> dict:
    """Statistics to persist, made consistent with the *pinned* image:
    row counts come from the snapshot versions being saved (the live
    StatsManager may already describe newer commits), and column stats
    recorded against a different version than the saved one are flagged
    stale so the reloaded database knows to re-ANALYZE."""
    pinned = set(snapshot.table_names())
    dumped = {}
    for name, stats in db.stats.describe().items():
        if name not in pinned:
            continue
        version = snapshot.table_version(name)
        dumped[name] = {
            "row_count": version.num_rows,
            "stale": stats.stale or stats.version != version.version_id,
            "columns": {
                column_name: {
                    "null_count": column.null_count,
                    "distinct": column.distinct,
                    "min_value": column.min_value,
                    "max_value": column.max_value,
                }
                for column_name, column in stats.columns.items()
            },
        }
    return dumped


def _restore_stats(db: "Database", dumped: dict) -> None:
    for name, entry in dumped.items():
        if not db.catalog.has(name):  # pragma: no cover - defensive
            continue
        stats = TableStats(
            table=name,
            row_count=int(entry["row_count"]),
            # rebind to the freshly-loaded table's version so the stats
            # are not spuriously flagged stale by the next write
            version=db.catalog.get(name).version,
            stale=bool(entry.get("stale", False)),
        )
        for column_name, column in entry["columns"].items():
            stats.columns[column_name] = ColumnStats(
                null_count=int(column["null_count"]),
                distinct=int(column["distinct"]),
                min_value=column.get("min_value"),
                max_value=column.get("max_value"),
            )
        db.stats.restore(stats)


def load_database(directory: str) -> "Database":
    """Recreate a Database previously written by :func:`save_database`."""
    from .api import Database

    meta_path = os.path.join(directory, "catalog.json")
    if not os.path.exists(meta_path):
        raise ReproError(f"not a saved database: {directory!r}")
    with open(meta_path) as handle:
        meta = json.load(handle)
    if meta.get("format_version") not in _SUPPORTED_VERSIONS:
        raise ReproError(
            f"unsupported database format {meta.get('format_version')!r}"
        )
    db = Database()
    for name, table_meta in meta["tables"].items():
        columns_spec = [
            (column_name, DataType(type_name))
            for column_name, type_name in table_meta["columns"]
        ]
        table = db.catalog.create_table(name, Schema(columns_spec))
        archive = np.load(os.path.join(directory, f"{name}.npz"))
        columns = []
        for i, (_, type_) in enumerate(columns_spec):
            data = archive[f"col{i}_data"]
            mask = archive[f"col{i}_mask"]
            if type_.numpy_dtype == np.dtype(object):
                decoded = np.empty(len(data), dtype=object)
                for j, value in enumerate(data):
                    decoded[j] = None if mask[j] else str(value)
                data = decoded
            else:
                data = data.astype(type_.numpy_dtype)
            columns.append(Column(type_, data, mask if mask.any() else None))
        if columns and len(columns[0]):
            table.insert_columns(columns)
    for index_name, spec in meta.get("graph_indices", {}).items():
        db.graph_indices.create(index_name, *spec)
    _restore_graph_indices(db, directory, meta)
    _restore_stats(db, meta.get("stats", {}))
    return db
