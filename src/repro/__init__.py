"""repro — a reproduction of De Leo & Boncz, "Extending SQL for Computing
Shortest Paths" (GRADES'17).

A from-scratch columnar SQL engine extended with the paper's REACHES
reachability predicate, CHEAPEST SUM shortest-path function, nested-table
paths, and UNNEST, together with the CSR/BFS/Dijkstra(radix queue) graph
runtime, an LDBC-SNB-like workload generator, and the benchmark harness
that regenerates the paper's tables and figures.
"""

from .api import Appender, Database, Result, connect
from .session import PlanCache, PreparedStatement, Session
from .errors import (
    BackpressureError,
    BindError,
    CatalogError,
    DatabaseClosedError,
    ExecutionError,
    GraphRuntimeError,
    LexError,
    NotSupportedError,
    ParseError,
    ProtocolError,
    ReproError,
    ResourceLimitError,
    ServerError,
    ServerShutdownError,
    SqlError,
    StatementTimeoutError,
    TransactionConflictError,
    TransactionError,
    TypeError_,
    error_from_code,
)
from .nested import NestedTableValue
from .storage import DataType

__version__ = "1.0.0"

__all__ = [
    "Appender",
    "Database",
    "Result",
    "connect",
    "Session",
    "PreparedStatement",
    "PlanCache",
    "NestedTableValue",
    "DataType",
    "ReproError",
    "SqlError",
    "LexError",
    "ParseError",
    "BindError",
    "CatalogError",
    "TypeError_",
    "TransactionError",
    "TransactionConflictError",
    "ExecutionError",
    "ResourceLimitError",
    "GraphRuntimeError",
    "NotSupportedError",
    "DatabaseClosedError",
    "ServerError",
    "ProtocolError",
    "BackpressureError",
    "StatementTimeoutError",
    "ServerShutdownError",
    "error_from_code",
]
