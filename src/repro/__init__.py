"""repro — a reproduction of De Leo & Boncz, "Extending SQL for Computing
Shortest Paths" (GRADES'17).

A from-scratch columnar SQL engine extended with the paper's REACHES
reachability predicate, CHEAPEST SUM shortest-path function, nested-table
paths, and UNNEST, together with the CSR/BFS/Dijkstra(radix queue) graph
runtime, an LDBC-SNB-like workload generator, and the benchmark harness
that regenerates the paper's tables and figures.
"""

from .api import Database, Result, connect
from .session import PlanCache, PreparedStatement, Session
from .errors import (
    BindError,
    CatalogError,
    ExecutionError,
    GraphRuntimeError,
    LexError,
    NotSupportedError,
    ParseError,
    ReproError,
    SqlError,
)
from .nested import NestedTableValue
from .storage import DataType

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Result",
    "connect",
    "Session",
    "PreparedStatement",
    "PlanCache",
    "NestedTableValue",
    "DataType",
    "ReproError",
    "SqlError",
    "LexError",
    "ParseError",
    "BindError",
    "CatalogError",
    "ExecutionError",
    "GraphRuntimeError",
    "NotSupportedError",
]
