"""The physical execution engine.

A recursive interpreter over the *physical* plan produced by
:mod:`repro.plan.optimizer`: every operator fully materializes its
result as a :class:`~repro.exec.batch.Batch` before the parent consumes
it, mirroring the MonetDB/MAL execution model of the paper's prototype.

Join strategy is decided at plan time: :class:`~repro.plan.physical.PHashJoin`
arrives with its equi-key pairs and build side already chosen,
:class:`~repro.plan.physical.PNestedLoopJoin` and
:class:`~repro.plan.physical.PCrossJoin` carry the guarded fallback
paths.

Every key-driven operator (DISTINCT, GROUP BY, equi-join probing, set
operations, ORDER BY, recursive-CTE dedup) runs through the vectorized
kernels of :mod:`repro.exec.kernels` — factorized int64 key codes
instead of per-row Python tuples — whenever the database's
``vectorized`` knob is on and the key columns are codifiable.  Large
inputs additionally run those kernels morsel-parallel on the database's
shared worker pool (:mod:`repro.exec.parallel`, ``exec_workers``), with
results bit-identical to the serial kernels; join/sort payload gathers
are spread column-per-task over the same pool.  The
original row-at-a-time paths are kept verbatim underneath as the
automatic fallback and as the ``Database(vectorized=False)``
correctness oracle: Python hash tables over row keys for grouping and
distinct, a stable multi-pass merge with SQL null ordering (NULLS LAST
ascending, NULLS FIRST descending) for sorting.  Kernel hits and
fallbacks are counted per operation on the database's
:class:`~repro.exec.kernels.KernelCounters` and surfaced by profiler
reports and ``Database.kernel_stats()``.

Graph select / graph join are delegated to :mod:`repro.exec.graph_ops`.

Every cross-product-shaped materialization (cross join, nested-loop
join; the graph join's pair grid lives in graph_ops) is capped by
:data:`MAX_CROSS_ROWS` and fails fast with a typed
:class:`~repro.errors.ResourceLimitError` instead of exhausting memory.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ExecutionError, NotSupportedError, ResourceLimitError
from ..plan import exprs as bx
from ..plan import logical as lp
from ..plan import physical as pp
from ..storage import Column, DataType
from ..storage.zonemap import select_zone_spans
from . import kernels
from .batch import Batch, ZeroColumnBatch
from .evaluator import EvalContext, evaluate
from .kernels import KernelFallback

#: Hard cap on materialized cross products, to fail fast instead of
#: exhausting memory (the MonetDB prototype shares the failure mode).
MAX_CROSS_ROWS = 20_000_000

#: Absolute ceiling for equi-join outputs: a legitimate (selective)
#: join may exceed MAX_CROSS_ROWS, but nothing this engine can finish
#: materializes 4x that many rows.
MAX_JOIN_ROWS = 4 * MAX_CROSS_ROWS

#: Iteration guard for WITH RECURSIVE evaluation.
MAX_RECURSION_STEPS = 100_000

#: Recursive-CTE dedup switches from the vectorized per-iteration
#: re-codification (O(accumulated) per step, unbeatable for the big
#: frontier deltas of graph workloads) to the incremental row-key set
#: (O(delta) per step) once deltas shrink below this fraction of the
#: accumulated result — long thin recursions would otherwise pay a full
#: re-sort per row produced.
DEDUP_DELTA_FRACTION = 8


class ExecContext:
    """Execution-time state shared by all operators of one statement.

    ``snapshot`` is the statement's (or enclosing transaction's) pinned
    :class:`~repro.storage.snapshot.Snapshot`; every base-table scan
    resolves through it, never through the live table, so readers run
    entirely lock-free.  A ``None`` snapshot (bare ``execute_plan``
    callers, tests) falls back to the table's current committed version
    — still a single atomic read.
    """

    def __init__(self, database, params: tuple, profiler=None, snapshot=None):
        self.database = database
        self.catalog = database.catalog
        self.params = params
        self.snapshot = snapshot
        self.cte_tables: dict[str, Batch] = {}
        self.profiler = profiler
        #: Worker-thread budget for the graph runtime's batch solver
        #: (the Database's ``path_workers`` knob; 1 = always serial).
        self.path_workers = getattr(database, "path_workers", 1)
        #: Whether key-driven operators use the vectorized kernels of
        #: :mod:`repro.exec.kernels` (the Database's ``vectorized`` knob;
        #: False preserves the row-at-a-time oracle paths).
        self.vectorized = getattr(database, "vectorized", True)
        self.kernel_counters = getattr(database, "kernel_counters", None)
        #: Morsel-parallel handle on the database's shared kernel worker
        #: pool (:class:`~repro.exec.parallel.ExecPool`); None when the
        #: pool has one worker or the kernels are off — kernels then run
        #: their unchanged serial paths (the ``exec_workers=1`` oracle).
        self.parallel = None
        if self.vectorized:
            pool = getattr(database, "exec_pool", None)
            if pool is not None:
                self.parallel = pool.context()
        #: Whether scans consult per-morsel zone maps (the Database's
        #: ``compression`` knob; False is the plain-storage oracle).
        self.compression = getattr(database, "compression", True)
        self.storage_counters = getattr(database, "storage_counters", None)
        self._eval = EvalContext(params, self.run)

    def kernel_hit(self, op: str) -> None:
        if self.kernel_counters is not None:
            self.kernel_counters.hit(op)

    def kernel_fallback(self, op: str, exc: Optional[Exception] = None) -> None:
        if self.kernel_counters is not None:
            self.kernel_counters.fallback(op, getattr(exc, "reason", None))

    def run(self, plan: pp.PhysicalNode) -> Batch:
        return execute_plan(plan, self)

    def eval(self, expr: bx.BoundExpr, batch: Batch) -> Column:
        return evaluate(expr, batch, self._eval)


def execute_plan(plan: pp.PhysicalNode, ctx: ExecContext) -> Batch:
    if isinstance(plan, lp.LogicalNode):
        # compatibility shim: callers holding a bare logical plan get a
        # trivial (pass-free) lowering
        from ..plan.optimizer import lower_plan

        plan = lower_plan(plan, ctx.catalog)
    handler = _DISPATCH.get(type(plan))
    if handler is None:
        raise NotSupportedError(f"no executor for {type(plan).__name__}")
    if ctx.profiler is not None:
        return ctx.profiler.run(plan, handler, ctx)
    return handler(plan, ctx)


# ---------------------------------------------------------------------------
# leaves
# ---------------------------------------------------------------------------
def _exec_scan(plan: pp.PScan, ctx: ExecContext) -> Batch:
    if ctx.snapshot is not None:
        version = ctx.snapshot.table_version(plan.table)
    else:
        version = ctx.catalog.get(plan.table).current()
    columns = list(version.columns)
    if len(plan.schema) != len(version.schema):
        # narrowed scan (projection pruning): select the kept columns
        columns = [
            columns[version.schema.index_of(c.name)] for c in plan.schema
        ]
    if plan.zone_filters and ctx.compression:
        spans, skipped, total = select_zone_spans(
            version, plan.zone_filters, ctx.params
        )
        if ctx.storage_counters is not None:
            ctx.storage_counters.note_scan(plan.table, total, skipped)
        if spans is not None:
            # whole morsels proven empty by the zone maps are dropped
            # before the residual filter ever touches them; kept morsels
            # stay in row order, so results are bit-identical
            if not spans:
                columns = [c.slice(0, 0) for c in columns]
            elif len(spans) == 1:
                columns = [c.slice(*spans[0]) for c in columns]
            else:
                columns = [
                    Column.concat([c.slice(s, e) for s, e in spans])
                    for c in columns
                ]
    return Batch(plan.schema, columns)


def _exec_single_row(plan: pp.PSingleRow, ctx: ExecContext) -> Batch:
    return ZeroColumnBatch(1)


def _infer_output_type(values: list) -> DataType:
    """Runtime type of a parameter-typed output column (host parameters
    and literal-normalized plans have no static type).  Numeric widths
    are promoted across all values, so mixed INTEGER/DOUBLE inputs land
    on the common supertype instead of failing on the first sample."""
    from ..storage import infer_literal_type, promote

    result = None
    for value in values:
        if value is None:
            continue
        inferred = infer_literal_type(value)
        result = inferred if result is None else promote(result, inferred)
        if result == DataType.VARCHAR or result == DataType.DOUBLE:
            break  # already the top of its promotion chain
    return result if result is not None else DataType.VARCHAR


def _exec_values(plan: pp.PValues, ctx: ExecContext) -> Batch:
    single = ZeroColumnBatch(1)
    width = len(plan.schema)
    values: list[list] = [[] for _ in range(width)]
    for row in plan.rows:
        for j, expr in enumerate(row):
            values[j].append(ctx.eval(expr, single).value(0))
    columns = []
    for col_def, column_values in zip(plan.schema, values):
        type_ = col_def.type or _infer_output_type(column_values)
        columns.append(Column.from_values(type_, column_values))
    return Batch(plan.schema, columns)


def _exec_cte_ref(plan: pp.PCTERef, ctx: ExecContext) -> Batch:
    batch = ctx.cte_tables.get(plan.cte_name)
    if batch is None:
        raise ExecutionError(f"CTE {plan.cte_name!r} is not materialized")
    return batch.relabel(plan.schema)


# ---------------------------------------------------------------------------
# unary
# ---------------------------------------------------------------------------
def _exec_filter(plan: pp.PFilter, ctx: ExecContext) -> Batch:
    batch = execute_plan(plan.input, ctx)
    predicate = ctx.eval(plan.predicate, batch)
    keep = predicate.data.astype(np.bool_)
    if predicate.mask is not None:
        keep = keep & ~predicate.mask
    return batch.filter(keep)


def _exec_project(plan: pp.PProject, ctx: ExecContext) -> Batch:
    batch = execute_plan(plan.input, ctx)
    columns = [ctx.eval(expr, batch) for expr in plan.exprs]
    if not columns:
        return ZeroColumnBatch(batch.num_rows)
    return Batch(plan.schema, columns)


def _exec_limit(plan: pp.PLimit, ctx: ExecContext) -> Batch:
    batch = execute_plan(plan.input, ctx)
    start = plan.offset
    stop = batch.num_rows if plan.limit is None else min(
        batch.num_rows, start + plan.limit
    )
    start = min(start, batch.num_rows)
    indices = np.arange(start, stop, dtype=np.int64)
    return batch.take(indices)


def _row_key(batch: Batch, index: int) -> tuple:
    return tuple(col.value(index) for col in batch.columns)


def _batch_rows(batch: Batch) -> list[tuple]:
    """All row tuples at once — much faster than per-row _row_key."""
    if not batch.columns:
        return [()] * batch.num_rows
    return list(zip(*(col.to_pylist() for col in batch.columns)))


def _take_columns(
    columns: list[Column], indices: np.ndarray, ctx: ExecContext
) -> list[Column]:
    """Gather each column by ``indices``, one pooled task per column when
    the morsel layer is active (payload gathers dominate wide joins and
    sorts; column granularity parallelizes them without any reordering
    concern — each task fills exactly one output column)."""
    par = ctx.parallel
    if par is None or len(columns) <= 1 or not par.active_for(len(indices)):
        return [c.take(indices) for c in columns]
    return par.map("gather", lambda c: c.take(indices), list(columns))


def _distinct_batch(batch: Batch, ctx: Optional[ExecContext] = None) -> Batch:
    if ctx is not None and ctx.vectorized:
        try:
            keep = kernels.distinct_mask(
                batch.columns, batch.num_rows, ctx.parallel
            )
            ctx.kernel_hit("distinct")
            return batch.filter(keep)
        except KernelFallback as exc:
            ctx.kernel_fallback("distinct", exc)
    seen: set = set()
    keep = np.zeros(batch.num_rows, dtype=np.bool_)
    for i, key in enumerate(_batch_rows(batch)):
        if key not in seen:
            seen.add(key)
            keep[i] = True
    return batch.filter(keep)


def _exec_distinct(plan: pp.PDistinct, ctx: ExecContext) -> Batch:
    return _distinct_batch(execute_plan(plan.input, ctx), ctx)


def _exec_sort(plan: pp.PSort, ctx: ExecContext) -> Batch:
    batch = execute_plan(plan.input, ctx)
    keys = [(ctx.eval(key.expr, batch), key.ascending) for key in plan.keys]
    if ctx.vectorized:
        try:
            order = kernels.sort_order(keys, batch.num_rows, ctx.parallel)
            ctx.kernel_hit("sort")
            if not batch.columns:
                return batch.take(order)
            return Batch(batch.schema, _take_columns(batch.columns, order, ctx))
        except KernelFallback as exc:
            ctx.kernel_fallback("sort", exc)
    order = np.arange(batch.num_rows, dtype=np.int64)
    # stable multi-pass: least-significant key first
    for column, ascending in reversed(keys):
        materialized = column.to_pylist()  # one bulk conversion per key
        values = [materialized[int(i)] for i in order]

        def sort_key(pos: int) -> tuple:
            value = values[pos]
            # NULLS LAST ascending; reversing makes them FIRST descending
            return (1, 0) if value is None else (0, value)

        positions = sorted(range(len(order)), key=sort_key, reverse=not ascending)
        order = order[np.asarray(positions, dtype=np.int64)]
    return batch.take(order)


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------
def _exec_aggregate(plan: pp.PAggregate, ctx: ExecContext) -> Batch:
    batch = execute_plan(plan.input, ctx)
    n = batch.num_rows
    key_columns = [ctx.eval(e, batch) for e in plan.group_exprs]
    arg_columns = [
        ctx.eval(a.arg, batch) if a.arg is not None else None for a in plan.aggs
    ]
    if ctx.vectorized:
        try:
            return _vectorized_aggregate(plan, key_columns, arg_columns, n, ctx)
        except KernelFallback as exc:
            ctx.kernel_fallback("group_by", exc)
    groups: dict[tuple, list[int]] = {}
    if key_columns:
        key_lists = [col.to_pylist() for col in key_columns]
        for i, key in enumerate(zip(*key_lists)):
            groups.setdefault(key, []).append(i)
    else:
        groups[()] = list(range(n))  # global aggregate: one group, even empty
    out_keys: list[list] = [[] for _ in key_columns]
    out_aggs: list[list] = [[] for _ in plan.aggs]
    for key, rows in groups.items():
        for j, value in enumerate(key):
            out_keys[j].append(value)
        for j, (spec, arg_col) in enumerate(zip(plan.aggs, arg_columns)):
            out_aggs[j].append(_compute_agg(spec, arg_col, rows))
    columns: list[Column] = []
    for col_def, values in zip(plan.schema, out_keys + out_aggs):
        type_ = col_def.type or _infer_output_type(values)
        columns.append(Column.from_values(type_, values))
    return Batch(plan.schema, columns)


def _vectorized_aggregate(
    plan: pp.PAggregate,
    key_columns: list[Column],
    arg_columns: list[Optional[Column]],
    n: int,
    ctx: ExecContext,
) -> Batch:
    """GROUP BY over factorized group ids: keys come from each group's
    first row; aggregates run through bincount/reduceat kernels, with a
    per-group Python fallback only for aggregates without a kernel."""
    if key_columns:
        ids, n_groups, first_rows = kernels.group_ids(key_columns, n, ctx.parallel)
    else:
        # global aggregate: one group, even over an empty input
        ids = np.zeros(n, dtype=np.int64)
        n_groups, first_rows = 1, None
    ctx.kernel_hit("group_by")
    out_columns: list[Column] = []
    for column in key_columns:
        out_columns.append(column.take(first_rows))
    group_rows = None  # lazily materialized for non-kernel aggregates
    # one ids argsort shared by SUM/MIN/MAX & co. (thread-local entries)
    sort_cache = kernels.ArgsortCache()
    for spec, arg_col in zip(plan.aggs, arg_columns):
        try:
            out_columns.append(
                kernels.grouped_aggregate(
                    spec.func,
                    spec.distinct,
                    arg_col,
                    ids,
                    n_groups,
                    sort_cache,
                    ctx.parallel,
                )
            )
        except KernelFallback as exc:
            ctx.kernel_fallback("aggregate", exc)
            if group_rows is None:
                group_rows = kernels.group_row_lists(ids, n_groups)
            values = [_compute_agg(spec, arg_col, rows) for rows in group_rows]
            position = len(out_columns)
            type_ = plan.schema[position].type or _infer_output_type(values)
            out_columns.append(Column.from_values(type_, values))
    columns = []
    for col_def, column in zip(plan.schema, out_columns):
        if col_def.type is not None and column.type != col_def.type:
            column = column.cast(col_def.type)
        columns.append(column)
    return Batch(plan.schema, columns)


def _compute_agg(spec: lp.AggSpec, arg_col: Optional[Column], rows: list[int]):
    if spec.func == "count_star":
        return len(rows)
    values = [arg_col.value(i) for i in rows]
    values = [v for v in values if v is not None]
    if spec.distinct:
        values = list(dict.fromkeys(values))
    if spec.func == "count":
        return len(values)
    if not values:
        return None
    if spec.func == "sum":
        return sum(values)
    if spec.func == "min":
        return min(values)
    if spec.func == "max":
        return max(values)
    if spec.func == "avg":
        return float(sum(values)) / len(values)
    raise ExecutionError(f"unknown aggregate {spec.func!r}")


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------
def _guard_pair_count(n: int, m: int, what: str) -> None:
    if n * m > MAX_CROSS_ROWS:
        raise ResourceLimitError(
            f"{what} of {n} x {m} rows exceeds the safety limit"
        )


def _guard_degenerate_join(total: int, n: int, m: int) -> None:
    """Two-tier guard for equi-join outputs.  At MAX_CROSS_ROWS the
    join trips only when the output is also cross-product *shaped*
    (within 2x of |L| x |R|) — a genuinely selective join may
    legitimately exceed the cross-product cap, while a degenerate key
    distribution is just the cross-product failure mode wearing an ON
    clause.  MAX_JOIN_ROWS is the absolute ceiling for any shape."""
    if total > MAX_CROSS_ROWS and 2 * total >= n * m:
        raise ResourceLimitError(
            f"hash join would produce {total} rows from {n} x {m} inputs "
            "(degenerate key distribution exceeds the safety limit)"
        )
    if total > MAX_JOIN_ROWS:
        raise ResourceLimitError(
            f"hash join would produce {total} rows, "
            f"exceeding the {MAX_JOIN_ROWS}-row safety limit"
        )


def _exec_hash_join(plan: pp.PHashJoin, ctx: ExecContext) -> Batch:
    left = execute_plan(plan.left, ctx)
    right = execute_plan(plan.right, ctx)
    if plan.build_left:
        # build the hash table on the (estimated) smaller left side, then
        # restore the probe-side output order so results are identical to
        # the build-right plan
        swapped = [(b, a) for a, b in plan.pairs]
        ri, li = _hash_join_indices(right, left, swapped, ctx)
        order = np.argsort(li, kind="stable")
        li, ri = li[order], ri[order]
    else:
        li, ri = _hash_join_indices(left, right, plan.pairs, ctx)
    joined = Batch(
        plan.left.schema + plan.right.schema,
        _take_columns(left.columns, li, ctx) + _take_columns(right.columns, ri, ctx),
    )
    if plan.residual:
        joined, li = _apply_residual(plan.residual, joined, li, ctx)
    if plan.kind == "left":
        joined = _add_unmatched_left(plan, left, joined, li)
    return joined.relabel(plan.schema)


def _apply_residual(residual, joined: Batch, li, ctx: ExecContext):
    keep = np.ones(joined.num_rows, dtype=np.bool_)
    for conjunct in residual:
        col = ctx.eval(conjunct, joined)
        hit = col.data.astype(np.bool_)
        if col.mask is not None:
            hit &= ~col.mask
        keep &= hit
    return joined.filter(keep), li[keep]


def _exec_nested_loop_join(plan: pp.PNestedLoopJoin, ctx: ExecContext) -> Batch:
    left = execute_plan(plan.left, ctx)
    right = execute_plan(plan.right, ctx)
    n, m = left.num_rows, right.num_rows
    _guard_pair_count(n, m, "nested-loop join")
    li = np.repeat(np.arange(n, dtype=np.int64), m)
    ri = np.tile(np.arange(m, dtype=np.int64), n)
    joined = Batch(
        plan.left.schema + plan.right.schema,
        [c.take(li) for c in left.columns] + [c.take(ri) for c in right.columns],
    )
    joined, li = _apply_residual(plan.residual, joined, li, ctx)
    if plan.kind == "left":
        joined = _add_unmatched_left(plan, left, joined, li)
    return joined.relabel(plan.schema)


def _exec_cross_join(plan: pp.PCrossJoin, ctx: ExecContext) -> Batch:
    left = execute_plan(plan.left, ctx)
    right = execute_plan(plan.right, ctx)
    n, m = left.num_rows, right.num_rows
    _guard_pair_count(n, m, "cross product")
    li = np.repeat(np.arange(n, dtype=np.int64), m)
    ri = np.tile(np.arange(m, dtype=np.int64), n)
    columns = [c.take(li) for c in left.columns] + [c.take(ri) for c in right.columns]
    if not columns:
        return ZeroColumnBatch(n * m)
    return Batch(plan.schema, columns)


def _hash_join_indices(left: Batch, right: Batch, pairs, ctx: ExecContext):
    left_keys = [ctx.eval(a, left) for a, _ in pairs]
    right_keys = [ctx.eval(b, right) for _, b in pairs]
    if ctx.vectorized:
        try:
            result = kernels.join_indices(
                left_keys,
                right_keys,
                guard=_guard_degenerate_join,
                par=ctx.parallel,
            )
            ctx.kernel_hit("join")
            return result
        except KernelFallback as exc:
            ctx.kernel_fallback("join", exc)
    if len(pairs) == 1 and (
        left_keys[0].type is not None
        and left_keys[0].type.is_numeric
        and left_keys[0].type != DataType.DOUBLE
        and right_keys[0].type is not None
        and right_keys[0].type.is_numeric
        and right_keys[0].type != DataType.DOUBLE
    ):
        # the PR-2 single-integer-key fast path, part of the
        # vectorized=False oracle's behavior
        return _sorted_join_indices(left_keys[0], right_keys[0])
    table: dict[tuple, list[int]] = {}
    right_tuples = list(zip(*(col.to_pylist() for col in right_keys)))
    for j, key in enumerate(right_tuples):
        if any(v is None for v in key):
            continue
        table.setdefault(key, []).append(j)
    li: list[int] = []
    ri: list[int] = []
    left_tuples = list(zip(*(col.to_pylist() for col in left_keys)))
    for i, key in enumerate(left_tuples):
        if any(v is None for v in key):
            continue
        for j in table.get(key, ()):
            li.append(i)
            ri.append(j)
        if len(li) > MAX_CROSS_ROWS:
            _guard_degenerate_join(len(li), len(left_tuples), len(right_tuples))
    return np.asarray(li, dtype=np.int64), np.asarray(ri, dtype=np.int64)


def _sorted_join_indices(left_key: Column, right_key: Column):
    """Vectorized single-integer-key equi-join via sort + searchsorted.

    Orders of magnitude faster than the per-row dict probe for the large
    intermediate results that recursive CTE evaluation produces.
    """
    lk = left_key.data.astype(np.int64)
    rk = right_key.data.astype(np.int64)
    left_valid = ~left_key.null_mask()
    right_valid = ~right_key.null_mask()
    right_rows = np.flatnonzero(right_valid)
    order = right_rows[np.argsort(rk[right_rows], kind="stable")]
    sorted_rk = rk[order]
    left_rows = np.flatnonzero(left_valid)
    lo = np.searchsorted(sorted_rk, lk[left_rows], side="left")
    hi = np.searchsorted(sorted_rk, lk[left_rows], side="right")
    counts = (hi - lo).astype(np.int64)
    total = int(counts.sum())
    _guard_degenerate_join(total, len(lk), len(rk))
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    li = np.repeat(left_rows, counts)
    cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
    slots = np.repeat(lo - cum, counts) + np.arange(total, dtype=np.int64)
    ri = order[slots]
    return li, ri


def _add_unmatched_left(plan, left: Batch, joined: Batch, li):
    matched = np.zeros(left.num_rows, dtype=np.bool_)
    if len(li):
        matched[li] = True
    missing = np.flatnonzero(~matched)
    if len(missing) == 0:
        return joined
    left_part = [c.take(missing) for c in left.columns]
    null_part = [
        Column.nulls(c.type or DataType.VARCHAR, len(missing))
        for c in plan.right.schema
    ]
    extra = Batch(plan.left.schema + plan.right.schema, left_part + null_part)
    columns = [
        Column.concat([a, b]) for a, b in zip(joined.columns, extra.columns)
    ]
    return Batch(joined.schema, columns)


# ---------------------------------------------------------------------------
# set operations
# ---------------------------------------------------------------------------
def _exec_setop(plan: pp.PSetOp, ctx: ExecContext) -> Batch:
    left = execute_plan(plan.left, ctx)
    right = execute_plan(plan.right, ctx)
    left = _coerce_batch(left, plan.schema)
    right = _coerce_batch(right, plan.schema)
    if plan.op == "union":
        columns = [_concat_promote(a, b) for a, b in zip(left.columns, right.columns)]
        if not columns:
            result = ZeroColumnBatch(left.num_rows + right.num_rows)
        else:
            result = Batch(plan.schema, columns)
        if plan.all:
            return result
        return _distinct_batch(result, ctx)
    if ctx.vectorized:
        try:
            keep = kernels.setop_mask(
                left.columns,
                left.num_rows,
                right.columns,
                right.num_rows,
                keep_members=plan.op == "intersect",
                par=ctx.parallel,
            )
            ctx.kernel_hit("setop")
            return left.filter(keep)
        except KernelFallback as exc:
            ctx.kernel_fallback("setop", exc)
    right_keys = set(_batch_rows(right))
    keep = np.zeros(left.num_rows, dtype=np.bool_)
    seen: set = set()
    for i, key in enumerate(_batch_rows(left)):
        if key in seen:
            continue
        member = key in right_keys
        if (plan.op == "intersect" and member) or (plan.op == "except" and not member):
            keep[i] = True
            seen.add(key)
    return left.filter(keep)


def _concat_promote(left: Column, right: Column) -> Column:
    """Concatenate two columns, promoting numeric widths when they differ
    (host parameters have no static type, so INTEGER/BIGINT mixes are
    only discovered at runtime)."""
    if left.type != right.type:
        from ..storage import promote

        target = promote(left.type, right.type)
        left = left.cast(target)
        right = right.cast(target)
    return Column.concat([left, right])


def _coerce_batch(batch: Batch, schema: tuple[lp.PlanColumn, ...]) -> Batch:
    columns = []
    for col, out in zip(batch.columns, schema):
        if out.type is not None and col.type != out.type:
            col = col.cast(out.type)
        columns.append(col)
    return Batch(schema, columns) if columns else ZeroColumnBatch(batch.num_rows)


# ---------------------------------------------------------------------------
# recursive CTEs
# ---------------------------------------------------------------------------
def _exec_materialize(plan: pp.PMaterialize, ctx: ExecContext) -> Batch:
    result = execute_plan(plan.definition, ctx)
    previous = ctx.cte_tables.get(plan.cte_name)
    ctx.cte_tables[plan.cte_name] = result
    try:
        return execute_plan(plan.body, ctx)
    finally:
        if previous is None:
            ctx.cte_tables.pop(plan.cte_name, None)
        else:
            ctx.cte_tables[plan.cte_name] = previous


def _exec_recursive(plan: pp.PRecursive, ctx: ExecContext) -> Batch:
    accumulated = _coerce_batch(execute_plan(plan.base, ctx), plan.schema)
    seen: Optional[set] = None
    # vectorized dedup carries no row-key set across iterations: each
    # delta is checked against the accumulated batch by codified ids.
    # On the first uncodifiable batch we build the seen-set from the
    # accumulated rows and continue row-at-a-time.
    use_kernels = ctx.vectorized and not plan.union_all
    if not plan.union_all:
        if use_kernels:
            try:
                accumulated = accumulated.filter(
                    kernels.distinct_mask(
                        accumulated.columns, accumulated.num_rows, ctx.parallel
                    )
                )
                ctx.kernel_hit("dedup")
            except KernelFallback as exc:
                ctx.kernel_fallback("dedup", exc)
                use_kernels = False
        if not use_kernels:
            seen = set()
            accumulated = _dedup_batch(accumulated, seen)
    delta = accumulated
    steps = 0
    previous = ctx.cte_tables.get(plan.cte_name)
    try:
        while delta.num_rows:
            steps += 1
            if steps > MAX_RECURSION_STEPS:
                raise ExecutionError(
                    f"recursive CTE {plan.cte_name!r} exceeded "
                    f"{MAX_RECURSION_STEPS} iterations"
                )
            ctx.cte_tables[plan.cte_name] = delta
            produced = execute_plan(plan.recursive, ctx)
            produced = _coerce_batch(produced, plan.schema)
            if plan.union_all:
                delta = produced
            else:
                if use_kernels and (
                    accumulated.num_rows >= 1024
                    and produced.num_rows * DEDUP_DELTA_FRACTION
                    < accumulated.num_rows
                ):
                    # thin deltas: re-codifying the whole accumulated
                    # batch every step no longer pays — build the
                    # incremental seen-set once and stay row-at-a-time
                    use_kernels = False
                    seen = set(_batch_rows(accumulated))
                if use_kernels:
                    try:
                        delta = produced.filter(
                            kernels.new_rows_mask(
                                accumulated.columns,
                                accumulated.num_rows,
                                produced.columns,
                                produced.num_rows,
                                ctx.parallel,
                            )
                        )
                        ctx.kernel_hit("dedup")
                    except KernelFallback as exc:
                        ctx.kernel_fallback("dedup", exc)
                        use_kernels = False
                        seen = set(_batch_rows(accumulated))
                if not use_kernels:
                    delta = _dedup_batch(produced, seen)
            if delta.num_rows:
                accumulated = Batch(
                    plan.schema,
                    [
                        _concat_promote(a, b)
                        for a, b in zip(accumulated.columns, delta.columns)
                    ],
                )
    finally:
        if previous is None:
            ctx.cte_tables.pop(plan.cte_name, None)
        else:
            ctx.cte_tables[plan.cte_name] = previous
    return accumulated


def _dedup_batch(batch: Batch, seen: set) -> Batch:
    keep = np.zeros(batch.num_rows, dtype=np.bool_)
    for i, key in enumerate(_batch_rows(batch)):
        if key not in seen:
            seen.add(key)
            keep[i] = True
    return batch.filter(keep)


# ---------------------------------------------------------------------------
# UNNEST (Section 3.3)
# ---------------------------------------------------------------------------
def _exec_unnest(plan: pp.PUnnest, ctx: ExecContext) -> Batch:
    from ..nested import NestedTableValue

    batch = execute_plan(plan.input, ctx)
    operand = ctx.eval(plan.operand, batch)
    n = batch.num_rows
    repeats = np.zeros(n, dtype=np.int64)
    values: list[Optional[NestedTableValue]] = []
    for i in range(n):
        value = operand.value(i)
        values.append(value)
        count = len(value) if isinstance(value, NestedTableValue) else 0
        repeats[i] = max(count, 1) if plan.outer else count
    input_indices = np.repeat(np.arange(n, dtype=np.int64), repeats)
    input_part = [c.take(input_indices) for c in batch.columns]

    # fast path: every non-empty nested table shares one source batch
    sources = {id(v.source) for v in values if isinstance(v, NestedTableValue) and len(v)}
    total = int(repeats.sum())
    nested_columns: list[Column] = []
    ordinality_values = np.zeros(total, dtype=np.int64)
    ordinality_mask = np.zeros(total, dtype=np.bool_)
    if len(sources) <= 1:
        source = None
        for v in values:
            if isinstance(v, NestedTableValue) and len(v):
                source = v.source
                break
        gather: list[np.ndarray] = []
        null_rows: list[int] = []  # positions (in output) that are padding
        cursor = 0
        for i, value in enumerate(values):
            count = len(value) if isinstance(value, NestedTableValue) else 0
            if count:
                gather.append(value.row_ids)
                ordinality_values[cursor : cursor + count] = np.arange(1, count + 1)
                cursor += count
            elif plan.outer:
                null_rows.append(cursor)
                ordinality_mask[cursor] = True
                cursor += 1
        row_ids = (
            np.concatenate(gather) if gather else np.empty(0, dtype=np.int64)
        )
        # build each nested output column: gathered values with padding holes
        for position, out_col in enumerate(plan.unnested):
            if source is not None:
                base = source.columns[position].take(row_ids)
            else:
                base = Column.empty(out_col.type or DataType.VARCHAR)
            if null_rows:
                nested_columns.append(
                    _scatter_with_nulls(base, total, null_rows, out_col.type)
                )
            else:
                nested_columns.append(base)
    else:
        # mixed sources (e.g. a union of two path columns): per-row gather
        parts_per_column: list[list[Column]] = [[] for _ in plan.unnested]
        cursor = 0
        for value in values:
            count = len(value) if isinstance(value, NestedTableValue) else 0
            if count:
                for position in range(len(plan.unnested)):
                    parts_per_column[position].append(
                        value.source.columns[position].take(value.row_ids)
                    )
                ordinality_values[cursor : cursor + count] = np.arange(1, count + 1)
                cursor += count
            elif plan.outer:
                for position, out_col in enumerate(plan.unnested):
                    parts_per_column[position].append(
                        Column.nulls(out_col.type or DataType.VARCHAR, 1)
                    )
                ordinality_mask[cursor] = True
                cursor += 1
        for position, out_col in enumerate(plan.unnested):
            parts = parts_per_column[position]
            nested_columns.append(
                Column.concat(parts)
                if parts
                else Column.empty(out_col.type or DataType.VARCHAR)
            )
    columns = input_part + nested_columns
    if plan.ordinality is not None:
        columns.append(
            Column(
                DataType.BIGINT,
                ordinality_values,
                ordinality_mask if ordinality_mask.any() else None,
            )
        )
    return Batch(plan.schema, columns)


def _scatter_with_nulls(base: Column, total: int, null_rows: list[int], type_):
    type_ = type_ or base.type
    data = np.empty(total, dtype=base.data.dtype)
    if base.data.dtype != np.dtype(object):
        data[:] = 0
    mask = np.zeros(total, dtype=np.bool_)
    null_set = set(null_rows)
    src_i = 0
    for out_i in range(total):
        if out_i in null_set:
            mask[out_i] = True
        else:
            data[out_i] = base.data[src_i]
            if base.mask is not None and base.mask[src_i]:
                mask[out_i] = True
            src_i += 1
    return Column(base.type, data, mask if mask.any() else None)


# ---------------------------------------------------------------------------
# dispatch table (graph operators registered by graph_ops to avoid cycle)
# ---------------------------------------------------------------------------
_DISPATCH = {
    pp.PScan: _exec_scan,
    pp.PSingleRow: _exec_single_row,
    pp.PValues: _exec_values,
    pp.PCTERef: _exec_cte_ref,
    pp.PFilter: _exec_filter,
    pp.PProject: _exec_project,
    pp.PLimit: _exec_limit,
    pp.PDistinct: _exec_distinct,
    pp.PSort: _exec_sort,
    pp.PAggregate: _exec_aggregate,
    pp.PHashJoin: _exec_hash_join,
    pp.PNestedLoopJoin: _exec_nested_loop_join,
    pp.PCrossJoin: _exec_cross_join,
    pp.PSetOp: _exec_setop,
    pp.PMaterialize: _exec_materialize,
    pp.PRecursive: _exec_recursive,
    pp.PUnnest: _exec_unnest,
}


def register_operator(node_type, handler) -> None:
    """Extension hook used by :mod:`repro.exec.graph_ops`."""
    _DISPATCH[node_type] = handler
