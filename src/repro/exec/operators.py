"""The physical execution engine.

A recursive interpreter over the *physical* plan produced by
:mod:`repro.plan.optimizer`: every operator fully materializes its
result as a :class:`~repro.exec.batch.Batch` before the parent consumes
it, mirroring the MonetDB/MAL execution model of the paper's prototype.

Join strategy is decided at plan time: :class:`~repro.plan.physical.PHashJoin`
arrives with its equi-key pairs and build side already chosen,
:class:`~repro.plan.physical.PNestedLoopJoin` and
:class:`~repro.plan.physical.PCrossJoin` carry the guarded fallback
paths.

Every key-driven operator (DISTINCT, GROUP BY, equi-join probing, set
operations, ORDER BY, recursive-CTE dedup) runs through the vectorized
kernels of :mod:`repro.exec.kernels` — factorized int64 key codes
instead of per-row Python tuples — whenever the database's
``vectorized`` knob is on and the key columns are codifiable.  Large
inputs additionally run those kernels morsel-parallel on the database's
shared worker pool (:mod:`repro.exec.parallel`, ``exec_workers``), with
results bit-identical to the serial kernels; join/sort payload gathers
are spread column-per-task over the same pool.  The
original row-at-a-time paths are kept verbatim underneath as the
automatic fallback and as the ``Database(vectorized=False)``
correctness oracle: Python hash tables over row keys for grouping and
distinct, a stable multi-pass merge with SQL null ordering (NULLS LAST
ascending, NULLS FIRST descending) for sorting.  Kernel hits and
fallbacks are counted per operation on the database's
:class:`~repro.exec.kernels.KernelCounters` and surfaced by profiler
reports and ``Database.kernel_stats()``.

Graph select / graph join are delegated to :mod:`repro.exec.graph_ops`.

Every cross-product-shaped materialization (cross join, nested-loop
join; the graph join's pair grid lives in graph_ops) is capped by
:data:`MAX_CROSS_ROWS` and fails fast with a typed
:class:`~repro.errors.ResourceLimitError` instead of exhausting memory.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ExecutionError, NotSupportedError, ResourceLimitError
from ..plan import exprs as bx
from ..plan import logical as lp
from ..plan import physical as pp
from ..storage import Column, DataType
from ..storage.spill import (
    SPILL_CHUNK_ROWS,
    MemoryAccountant,
    estimate_batch_bytes,
)
from ..storage.types import coerce_python_value
from ..storage.zonemap import ZONE_ROWS, ZonePredicate, select_zone_spans
from . import kernels
from .batch import Batch, ZeroColumnBatch
from .evaluator import EvalContext, evaluate
from .kernels import KernelFallback

#: Hard cap on materialized cross products, to fail fast instead of
#: exhausting memory (the MonetDB prototype shares the failure mode).
MAX_CROSS_ROWS = 20_000_000

#: Absolute ceiling for equi-join outputs: a legitimate (selective)
#: join may exceed MAX_CROSS_ROWS, but nothing this engine can finish
#: materializes 4x that many rows.
MAX_JOIN_ROWS = 4 * MAX_CROSS_ROWS

#: Iteration guard for WITH RECURSIVE evaluation.
MAX_RECURSION_STEPS = 100_000

#: Recursive-CTE dedup switches from the vectorized per-iteration
#: re-codification (O(accumulated) per step, unbeatable for the big
#: frontier deltas of graph workloads) to the incremental row-key set
#: (O(delta) per step) once deltas shrink below this fraction of the
#: accumulated result — long thin recursions would otherwise pay a full
#: re-sort per row produced.
DEDUP_DELTA_FRACTION = 8


class ExecContext:
    """Execution-time state shared by all operators of one statement.

    ``snapshot`` is the statement's (or enclosing transaction's) pinned
    :class:`~repro.storage.snapshot.Snapshot`; every base-table scan
    resolves through it, never through the live table, so readers run
    entirely lock-free.  A ``None`` snapshot (bare ``execute_plan``
    callers, tests) falls back to the table's current committed version
    — still a single atomic read.
    """

    def __init__(self, database, params: tuple, profiler=None, snapshot=None):
        self.database = database
        self.catalog = database.catalog
        self.params = params
        self.snapshot = snapshot
        self.cte_tables: dict[str, Batch] = {}
        self.profiler = profiler
        #: Worker-thread budget for the graph runtime's batch solver
        #: (the Database's ``path_workers`` knob; 1 = always serial).
        self.path_workers = getattr(database, "path_workers", 1)
        #: Whether key-driven operators use the vectorized kernels of
        #: :mod:`repro.exec.kernels` (the Database's ``vectorized`` knob;
        #: False preserves the row-at-a-time oracle paths).
        self.vectorized = getattr(database, "vectorized", True)
        self.kernel_counters = getattr(database, "kernel_counters", None)
        #: Morsel-parallel handle on the database's shared kernel worker
        #: pool (:class:`~repro.exec.parallel.ExecPool`); None when the
        #: pool has one worker or the kernels are off — kernels then run
        #: their unchanged serial paths (the ``exec_workers=1`` oracle).
        self.parallel = None
        if self.vectorized:
            pool = getattr(database, "exec_pool", None)
            if pool is not None:
                self.parallel = pool.context()
        #: Whether scans consult per-morsel zone maps (the Database's
        #: ``compression`` knob; False is the plain-storage oracle).
        self.compression = getattr(database, "compression", True)
        self.storage_counters = getattr(database, "storage_counters", None)
        #: Memory-budgeted execution (the Database's ``memory_budget``
        #: knob; None = unlimited = the fully-materialized oracle).  The
        #: accountant records per-query stream/spill decisions for the
        #: profiler and EXPLAIN footers; the spill manager owns the
        #: temp files partitioned operators write.
        self.spill_manager = getattr(database, "spill_manager", None)
        self.accountant = MemoryAccountant(
            getattr(database, "memory_budget", None),
            getattr(database, "spill_counters", None),
        )
        #: Runtime zone predicates installed for the duration of a
        #: probe-side execution by the hash-join operator
        #: (``id(PScan) -> list[ZonePredicate]``).
        self.dynamic_zones: dict[int, list] = {}
        self._eval = EvalContext(params, self.run)

    def kernel_hit(self, op: str) -> None:
        if self.kernel_counters is not None:
            self.kernel_counters.hit(op)

    def kernel_fallback(self, op: str, exc: Optional[Exception] = None) -> None:
        if self.kernel_counters is not None:
            self.kernel_counters.fallback(op, getattr(exc, "reason", None))

    def run(self, plan: pp.PhysicalNode) -> Batch:
        return execute_plan(plan, self)

    def eval(self, expr: bx.BoundExpr, batch: Batch) -> Column:
        return evaluate(expr, batch, self._eval)


def execute_plan(plan: pp.PhysicalNode, ctx: ExecContext) -> Batch:
    if isinstance(plan, lp.LogicalNode):
        # compatibility shim: callers holding a bare logical plan get a
        # trivial (pass-free) lowering
        from ..plan.optimizer import lower_plan

        plan = lower_plan(plan, ctx.catalog)
    handler = _DISPATCH.get(type(plan))
    if handler is None:
        raise NotSupportedError(f"no executor for {type(plan).__name__}")
    if ctx.profiler is not None:
        return ctx.profiler.run(plan, handler, ctx)
    return handler(plan, ctx)


# ---------------------------------------------------------------------------
# leaves
# ---------------------------------------------------------------------------
def _scan_version(plan: pp.PScan, ctx: ExecContext):
    if ctx.snapshot is not None:
        return ctx.snapshot.table_version(plan.table)
    return ctx.catalog.get(plan.table).current()


def _scan_columns(plan: pp.PScan, ctx: ExecContext, version) -> list[Column]:
    columns = list(version.columns)
    if len(plan.schema) != len(version.schema):
        # narrowed scan (projection pruning): select the kept columns
        columns = [
            columns[version.schema.index_of(c.name)] for c in plan.schema
        ]
    return columns


def _insub_resolver(ctx: ExecContext):
    """The ``select_zone_spans`` resolver for ``insub`` zone predicates:
    runs the IN-subquery's physical plan and reports its values' (lo,
    hi) range, ``()`` when the probe set has no matchable value, or None
    when the result is undecidable (strings, coercion failure, error —
    the residual filter then decides every row, so keeping all zones is
    always safe).  The subquery may run a second time inside the
    residual filter; zone pruning trades that re-execution for skipped
    morsels, which wins exactly when the probed table is large."""

    def resolve(zf, col_type):
        (_, plan), = zf.operands
        try:
            batch = ctx.run(plan)
        except Exception:
            return None
        if not batch.columns:
            return None
        values = []
        for value in batch.columns[0].to_pylist():
            if value is None:
                continue
            try:
                value = coerce_python_value(value, col_type)
            except Exception:
                return None
            if value is None or isinstance(value, str):
                return None
            if isinstance(value, float) and value != value:
                continue  # NaN probe value never equals anything
            values.append(value)
        if ctx.storage_counters is not None:
            ctx.storage_counters.note_dynamic("in_subquery")
        if not values:
            return ()
        return (min(values), max(values))

    return resolve


def _scan_spans(plan: pp.PScan, ctx: ExecContext, version):
    """Surviving row spans after static + dynamic zone filters, or None
    when nothing can be skipped (callers then scan zero-copy)."""
    if not ctx.compression:
        return None
    dynamic = ctx.dynamic_zones.get(id(plan), ())
    zone_filters = tuple(plan.zone_filters) + tuple(dynamic)
    if not zone_filters:
        return None
    spans, skipped, total = select_zone_spans(
        version, zone_filters, ctx.params, resolver=_insub_resolver(ctx)
    )
    if plan.zone_filters and ctx.storage_counters is not None:
        ctx.storage_counters.note_scan(plan.table, total, skipped)
    return spans


def _exec_scan(plan: pp.PScan, ctx: ExecContext) -> Batch:
    version = _scan_version(plan, ctx)
    columns = _scan_columns(plan, ctx, version)
    spans = _scan_spans(plan, ctx, version)
    if spans is not None:
        # whole morsels proven empty by the zone maps are dropped
        # before the residual filter ever touches them; kept morsels
        # stay in row order, so results are bit-identical.  Budgeted
        # execution slices through slice_morsel (same values, bounded
        # decode) instead of the full-column decode of .slice
        if ctx.accountant.active:
            if columns and spans == [(0, len(columns[0]))]:
                # nothing pruned: keep the resting-encoded columns as
                # they are (a [0, n) slice is the identity) so later
                # budgeted operators can decode morsel-wise instead of
                # inheriting a fully decoded copy
                return Batch(plan.schema, columns)
            cut = lambda c, s, e: c.slice_morsel(s, e)  # noqa: E731
        else:
            cut = lambda c, s, e: c.slice(s, e)  # noqa: E731
        if not spans:
            columns = [c.slice(0, 0) for c in columns]
        elif len(spans) == 1:
            columns = [cut(c, *spans[0]) for c in columns]
        else:
            columns = [
                Column.concat([cut(c, s, e) for s, e in spans])
                for c in columns
            ]
    return Batch(plan.schema, columns)


def _exec_single_row(plan: pp.PSingleRow, ctx: ExecContext) -> Batch:
    return ZeroColumnBatch(1)


def _infer_output_type(values: list) -> DataType:
    """Runtime type of a parameter-typed output column (host parameters
    and literal-normalized plans have no static type).  Numeric widths
    are promoted across all values, so mixed INTEGER/DOUBLE inputs land
    on the common supertype instead of failing on the first sample."""
    from ..storage import infer_literal_type, promote

    result = None
    for value in values:
        if value is None:
            continue
        inferred = infer_literal_type(value)
        result = inferred if result is None else promote(result, inferred)
        if result == DataType.VARCHAR or result == DataType.DOUBLE:
            break  # already the top of its promotion chain
    return result if result is not None else DataType.VARCHAR


def _exec_values(plan: pp.PValues, ctx: ExecContext) -> Batch:
    single = ZeroColumnBatch(1)
    width = len(plan.schema)
    values: list[list] = [[] for _ in range(width)]
    for row in plan.rows:
        for j, expr in enumerate(row):
            values[j].append(ctx.eval(expr, single).value(0))
    columns = []
    for col_def, column_values in zip(plan.schema, values):
        type_ = col_def.type or _infer_output_type(column_values)
        columns.append(Column.from_values(type_, column_values))
    return Batch(plan.schema, columns)


def _exec_cte_ref(plan: pp.PCTERef, ctx: ExecContext) -> Batch:
    batch = ctx.cte_tables.get(plan.cte_name)
    if batch is None:
        raise ExecutionError(f"CTE {plan.cte_name!r} is not materialized")
    return batch.relabel(plan.schema)


# ---------------------------------------------------------------------------
# unary
# ---------------------------------------------------------------------------
def _exec_filter(plan: pp.PFilter, ctx: ExecContext) -> Batch:
    if plan.streamable and ctx.accountant.active:
        streamed = _streamed_filter(plan, ctx)
        if streamed is not None:
            return streamed
    batch = execute_plan(plan.input, ctx)
    predicate = ctx.eval(plan.predicate, batch)
    keep = predicate.data.astype(np.bool_)
    if predicate.mask is not None:
        keep = keep & ~predicate.mask
    return batch.filter(keep)


def _stream_chain(plan) -> "tuple[list, pp.PScan] | None":
    """The ``[outermost..innermost]`` streamable-filter chain under
    ``plan`` down to a base-table scan, or None when the shape does not
    stream."""
    filters = []
    node = plan
    while isinstance(node, pp.PFilter) and node.streamable:
        filters.append(node)
        node = node.input
    if not isinstance(node, pp.PScan):
        return None
    return filters, node


def _filter_morsel(filters, morsel: Batch, ctx: ExecContext) -> Batch:
    """Apply a filter chain to one morsel, innermost predicate first —
    the same rows each predicate would see in the materialized plan
    (outer predicates only ever evaluate over inner survivors)."""
    for f in reversed(filters):
        predicate = ctx.eval(f.predicate, morsel)
        keep = predicate.data.astype(np.bool_)
        if predicate.mask is not None:
            keep = keep & ~predicate.mask
        morsel = morsel.filter(keep)
    return morsel


def _streamed_filter(plan: pp.PFilter, ctx: ExecContext) -> "Batch | None":
    """Fused filter chain over a scan, one morsel at a time: each morsel
    is sliced (decoding only its zones), filtered, and the survivors
    concatenated in row order — elementwise predicates commute with
    concatenation, so the result is bit-identical to the materialized
    path while the working set stays one morsel plus survivors."""
    chain = _stream_chain(plan)
    if chain is None:
        return None
    filters, scan = chain
    version = _scan_version(scan, ctx)
    if not version.columns:
        return None
    n = len(version.columns[0])
    if n <= SPILL_CHUNK_ROWS:
        return None  # single morsel: streaming would not bound anything
    columns = _scan_columns(scan, ctx, version)
    spans = _scan_spans(scan, ctx, version)
    if spans is None:
        spans = [(0, n)]
    pieces: list[Batch] = []
    morsels = 0
    for start, stop in spans:
        for ms in range(start, stop, SPILL_CHUNK_ROWS):
            me = min(ms + SPILL_CHUNK_ROWS, stop)
            morsel = Batch(
                scan.schema, [c.slice_morsel(ms, me) for c in columns]
            )
            morsel = _filter_morsel(filters, morsel, ctx)
            morsels += 1
            if morsel.num_rows:
                pieces.append(morsel)
    ctx.accountant.note_stream(morsels)
    if not pieces:
        return Batch(
            plan.schema, [Column.empty(c.type) for c in columns]
        )
    out = [
        Column.concat([piece.columns[i] for piece in pieces])
        for i in range(len(columns))
    ]
    return Batch(plan.schema, out)


def _exec_project(plan: pp.PProject, ctx: ExecContext) -> Batch:
    batch = execute_plan(plan.input, ctx)
    columns = [ctx.eval(expr, batch) for expr in plan.exprs]
    if not columns:
        return ZeroColumnBatch(batch.num_rows)
    return Batch(plan.schema, columns)


def _exec_limit(plan: pp.PLimit, ctx: ExecContext) -> Batch:
    batch = execute_plan(plan.input, ctx)
    start = plan.offset
    stop = batch.num_rows if plan.limit is None else min(
        batch.num_rows, start + plan.limit
    )
    start = min(start, batch.num_rows)
    indices = np.arange(start, stop, dtype=np.int64)
    return batch.take(indices)


def _row_key(batch: Batch, index: int) -> tuple:
    return tuple(col.value(index) for col in batch.columns)


def _batch_rows(batch: Batch) -> list[tuple]:
    """All row tuples at once — much faster than per-row _row_key."""
    if not batch.columns:
        return [()] * batch.num_rows
    return list(zip(*(col.to_pylist() for col in batch.columns)))


def _gather_streamed(column: Column, indices: np.ndarray) -> Column:
    """``column.take(indices)`` with bounded decode: a resting-encoded
    column is gathered zone by zone (sort the indices, decode each
    touched zone once via ``slice_morsel``, then invert the sort), so a
    selective gather never materializes the whole column.  Bit-identical
    to ``take`` — the same values land in the same positions, and the
    per-zone decodes equal the corresponding full-decode slices."""
    if column._data is not None or column.encoding is None or len(indices) == 0:
        return column.take(indices)
    indices = np.asarray(indices, dtype=np.int64)
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    zones = sorted_idx // ZONE_ROWS
    n = len(column)
    bounds = np.concatenate(
        ([0], np.flatnonzero(np.diff(zones)) + 1, [len(sorted_idx)])
    )
    parts = []
    for i in range(len(bounds) - 1):
        s, e = int(bounds[i]), int(bounds[i + 1])
        lo = int(zones[s]) * ZONE_ROWS
        hi = min(lo + ZONE_ROWS, n)
        parts.append(column.slice_morsel(lo, hi).take(sorted_idx[s:e] - lo))
    gathered = Column.concat(parts)
    inverse = np.empty(len(indices), dtype=np.int64)
    inverse[order] = np.arange(len(indices), dtype=np.int64)
    return gathered.take(inverse)


def _take_columns(
    columns: list[Column], indices: np.ndarray, ctx: ExecContext
) -> list[Column]:
    """Gather each column by ``indices``, one pooled task per column when
    the morsel layer is active (payload gathers dominate wide joins and
    sorts; column granularity parallelizes them without any reordering
    concern — each task fills exactly one output column).  Under a
    memory budget, resting-encoded columns gather zone-at-a-time
    instead of decoding whole."""
    if ctx.accountant.active:
        return [_gather_streamed(c, indices) for c in columns]
    par = ctx.parallel
    if par is None or len(columns) <= 1 or not par.active_for(len(indices)):
        return [c.take(indices) for c in columns]
    return par.map("gather", lambda c: c.take(indices), list(columns))


def _distinct_batch(batch: Batch, ctx: Optional[ExecContext] = None) -> Batch:
    if ctx is not None and ctx.vectorized:
        try:
            keep = kernels.distinct_mask(
                batch.columns, batch.num_rows, ctx.parallel
            )
            ctx.kernel_hit("distinct")
            return batch.filter(keep)
        except KernelFallback as exc:
            ctx.kernel_fallback("distinct", exc)
    seen: set = set()
    keep = np.zeros(batch.num_rows, dtype=np.bool_)
    for i, key in enumerate(_batch_rows(batch)):
        if key not in seen:
            seen.add(key)
            keep[i] = True
    return batch.filter(keep)


def _exec_distinct(plan: pp.PDistinct, ctx: ExecContext) -> Batch:
    return _distinct_batch(execute_plan(plan.input, ctx), ctx)


def _exec_sort(plan: pp.PSort, ctx: ExecContext) -> Batch:
    batch = execute_plan(plan.input, ctx)
    keys = [(ctx.eval(key.expr, batch), key.ascending) for key in plan.keys]
    if ctx.vectorized:
        try:
            order = None
            if (
                keys
                and ctx.accountant.active
                and ctx.spill_manager is not None
                and batch.num_rows > SPILL_CHUNK_ROWS
                and ctx.accountant.decide(
                    "sort", estimate_batch_bytes(batch.columns)
                )
            ):
                order = _external_sort_order(keys, batch.num_rows, ctx)
            if order is None:
                order = kernels.sort_order(keys, batch.num_rows, ctx.parallel)
            ctx.kernel_hit("sort")
            if ctx.accountant.active and plan.limit is not None:
                # top-k fusion: the PLimit above slices [offset,
                # offset+limit), which is a prefix of this truncated
                # permutation — identical rows, bounded payload gather
                order = order[: plan.limit]
            if not batch.columns:
                return batch.take(order)
            return Batch(batch.schema, _take_columns(batch.columns, order, ctx))
        except KernelFallback as exc:
            ctx.kernel_fallback("sort", exc)
    order = np.arange(batch.num_rows, dtype=np.int64)
    # stable multi-pass: least-significant key first
    for column, ascending in reversed(keys):
        materialized = column.to_pylist()  # one bulk conversion per key
        values = [materialized[int(i)] for i in order]

        def sort_key(pos: int) -> tuple:
            value = values[pos]
            # NULLS LAST ascending; reversing makes them FIRST descending
            return (1, 0) if value is None else (0, value)

        positions = sorted(range(len(order)), key=sort_key, reverse=not ascending)
        order = order[np.asarray(positions, dtype=np.int64)]
    return batch.take(order)


def _external_sort_order(
    keys, n: int, ctx: ExecContext
) -> "np.ndarray | None":
    """External merge sort: the sort permutation via sorted on-disk runs.

    Every key column folds into one mixed-radix int64 rank whose stable
    argsort equals ``kernels.sort_order`` (ties in the rank are ties in
    every key).  Runs of ``SPILL_CHUNK_ROWS`` rows are stably argsorted
    and spilled as (rank, row) pairs; runs then merge pairwise in
    balanced rounds — each merge combines two *adjacent* runs with
    ``searchsorted``, the earlier run (smaller original row numbers)
    taking the left side on rank ties, and spills the result back
    until one run remains.  Stable two-way merge with that tie rule is
    associative, so the surviving order is the unique stable
    permutation by (rank, original row) regardless of merge shape —
    identical to the one-shot stable argsort — while memory stays two
    runs plus their merge (the final merge drops the rank side
    entirely).  Returns None when the combined key-code space
    overflows int64 (callers then lexsort in memory)."""
    rank = kernels.composite_sort_rank(keys, n, ctx.parallel)
    if rank is None:
        return None
    counters = ctx.accountant.counters
    runs = []
    for ms in range(0, n, SPILL_CHUNK_ROWS):
        me = min(ms + SPILL_CHUNK_ROWS, n)
        local = np.argsort(rank[ms:me], kind="stable").astype(np.int64)
        run = ctx.spill_manager.create_file(f"sortrun{len(runs):03d}")
        run.append_columns(
            [
                Column(DataType.BIGINT, rank[ms:me][local]),
                Column(DataType.BIGINT, local + ms),
            ]
        )
        run.finish()
        runs.append(run)
        if counters is not None:
            counters.note("sort_runs")
    del rank  # the runs carry it now; keep the merge loop's floor low
    if not runs:
        return np.empty(0, dtype=np.int64)
    try:
        while len(runs) > 1:
            next_round = []
            for i in range(0, len(runs) - 1, 2):
                a = runs[i].read_columns()
                runs[i].remove()
                b = runs[i + 1].read_columns()
                runs[i + 1].remove()
                a_rank, a_rows = a[0].data, a[1].data
                b_rank, b_rows = b[0].data, b[1].data
                at_a = np.arange(len(a_rank), dtype=np.int64) + (
                    np.searchsorted(b_rank, a_rank, side="left")
                )
                at_b = np.arange(len(b_rank), dtype=np.int64) + (
                    np.searchsorted(a_rank, b_rank, side="right")
                )
                out_rows = np.empty(len(a_rows) + len(b_rows), dtype=np.int64)
                out_rows[at_a] = a_rows
                out_rows[at_b] = b_rows
                if counters is not None:
                    counters.note("merges")
                if len(runs) == 2:
                    runs = []
                    return out_rows  # final merge: the permutation itself
                out_rank = np.empty_like(out_rows)
                out_rank[at_a] = a_rank
                out_rank[at_b] = b_rank
                merged = ctx.spill_manager.create_file(
                    f"sortmerge{len(next_round):03d}"
                )
                merged.append_columns(
                    [
                        Column(DataType.BIGINT, out_rank),
                        Column(DataType.BIGINT, out_rows),
                    ]
                )
                merged.finish()
                next_round.append(merged)
            if len(runs) % 2:
                next_round.append(runs[-1])  # odd run rides to the next round
            runs = next_round
        columns = runs[0].read_columns()
        runs[0].remove()
        runs = []
        return columns[1].data
    finally:
        for run in runs:
            run.remove()


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------
def _exec_aggregate(plan: pp.PAggregate, ctx: ExecContext) -> Batch:
    if plan.streamable and ctx.accountant.active and ctx.vectorized:
        streamed = _streamed_aggregate(plan, ctx)
        if streamed is not None:
            return streamed
    batch = execute_plan(plan.input, ctx)
    n = batch.num_rows
    key_columns = [ctx.eval(e, batch) for e in plan.group_exprs]
    arg_columns = [
        ctx.eval(a.arg, batch) if a.arg is not None else None for a in plan.aggs
    ]
    if ctx.vectorized:
        if (
            key_columns
            and ctx.accountant.active
            and ctx.spill_manager is not None
            and n > SPILL_CHUNK_ROWS
            and ctx.accountant.decide(
                "group_by", estimate_batch_bytes(batch.columns)
            )
        ):
            try:
                return _spilled_aggregate(plan, key_columns, arg_columns, n, ctx)
            except KernelFallback:
                pass  # the in-memory paths below handle (and count) it
        try:
            return _vectorized_aggregate(plan, key_columns, arg_columns, n, ctx)
        except KernelFallback as exc:
            ctx.kernel_fallback("group_by", exc)
    groups: dict[tuple, list[int]] = {}
    if key_columns:
        key_lists = [col.to_pylist() for col in key_columns]
        for i, key in enumerate(zip(*key_lists)):
            groups.setdefault(key, []).append(i)
    else:
        groups[()] = list(range(n))  # global aggregate: one group, even empty
    out_keys: list[list] = [[] for _ in key_columns]
    out_aggs: list[list] = [[] for _ in plan.aggs]
    for key, rows in groups.items():
        for j, value in enumerate(key):
            out_keys[j].append(value)
        for j, (spec, arg_col) in enumerate(zip(plan.aggs, arg_columns)):
            out_aggs[j].append(_compute_agg(spec, arg_col, rows))
    columns: list[Column] = []
    for col_def, values in zip(plan.schema, out_keys + out_aggs):
        type_ = col_def.type or _infer_output_type(values)
        columns.append(Column.from_values(type_, values))
    return Batch(plan.schema, columns)


def _vectorized_aggregate(
    plan: pp.PAggregate,
    key_columns: list[Column],
    arg_columns: list[Optional[Column]],
    n: int,
    ctx: ExecContext,
) -> Batch:
    """GROUP BY over factorized group ids: keys come from each group's
    first row; aggregates run through bincount/reduceat kernels, with a
    per-group Python fallback only for aggregates without a kernel."""
    if key_columns:
        ids, n_groups, first_rows = kernels.group_ids(key_columns, n, ctx.parallel)
    else:
        # global aggregate: one group, even over an empty input
        ids = np.zeros(n, dtype=np.int64)
        n_groups, first_rows = 1, None
    ctx.kernel_hit("group_by")
    out_columns: list[Column] = []
    for column in key_columns:
        out_columns.append(column.take(first_rows))
    group_rows = None  # lazily materialized for non-kernel aggregates
    # one ids argsort shared by SUM/MIN/MAX & co. (thread-local entries)
    sort_cache = kernels.ArgsortCache()
    for spec, arg_col in zip(plan.aggs, arg_columns):
        try:
            out_columns.append(
                kernels.grouped_aggregate(
                    spec.func,
                    spec.distinct,
                    arg_col,
                    ids,
                    n_groups,
                    sort_cache,
                    ctx.parallel,
                )
            )
        except KernelFallback as exc:
            ctx.kernel_fallback("aggregate", exc)
            if group_rows is None:
                group_rows = kernels.group_row_lists(ids, n_groups)
            values = [_compute_agg(spec, arg_col, rows) for rows in group_rows]
            position = len(out_columns)
            type_ = plan.schema[position].type or _infer_output_type(values)
            out_columns.append(Column.from_values(type_, values))
    columns = []
    for col_def, column in zip(plan.schema, out_columns):
        if col_def.type is not None and column.type != col_def.type:
            column = column.cast(col_def.type)
        columns.append(column)
    return Batch(plan.schema, columns)


def _streamed_aggregate(plan: pp.PAggregate, ctx: ExecContext) -> "Batch | None":
    """Fused scan→filter→aggregate over one morsel at a time.

    Only for plans the optimizer marked streamable: ungrouped,
    non-distinct aggregates whose input is a streamable-filter chain
    over a base scan, with SUM/AVG restricted to integral arguments.
    The accumulators mirror the kernels exactly — int64 wrap-around
    sums (``np.add.reduce`` over any chunking of the same int64 values
    is associative mod 2^64), AVG as ``float64(sum) / float64(count)``,
    MIN/MAX as order-independent folds — so the single output row is
    bit-identical to the materialized kernel path.  Returns None (and
    the caller materializes) whenever the kernels would fall back:
    NaN ordering for float MIN/MAX, uncomparable object values."""
    chain = _stream_chain(plan.input)
    if chain is None:
        return None
    filters, scan = chain
    version = _scan_version(scan, ctx)
    if not version.columns:
        return None
    n = len(version.columns[0])
    if n <= SPILL_CHUNK_ROWS:
        return None  # single morsel: streaming would not bound anything
    columns = _scan_columns(scan, ctx, version)
    spans = _scan_spans(scan, ctx, version)
    if spans is None:
        spans = [(0, n)]
    n_aggs = len(plan.aggs)
    counts = [0] * n_aggs
    sums = [np.zeros(1, dtype=np.int64) for _ in range(n_aggs)]
    mins: list = [None] * n_aggs
    maxs: list = [None] * n_aggs
    total_rows = 0
    morsels = 0
    for start, stop in spans:
        for ms in range(start, stop, SPILL_CHUNK_ROWS):
            me = min(ms + SPILL_CHUNK_ROWS, stop)
            morsel = Batch(
                scan.schema, [c.slice_morsel(ms, me) for c in columns]
            )
            morsel = _filter_morsel(filters, morsel, ctx)
            morsels += 1
            total_rows += morsel.num_rows
            if not morsel.num_rows:
                continue
            for j, spec in enumerate(plan.aggs):
                if spec.func == "count_star":
                    continue
                arg = ctx.eval(spec.arg, morsel)
                data = arg.data
                if arg.mask is not None:
                    data = data[~arg.mask]
                if not len(data):
                    continue
                counts[j] += len(data)
                if spec.func == "count":
                    continue
                if spec.func in ("sum", "avg"):
                    sums[j][0] += data.astype(np.int64, copy=False).sum()
                    continue
                if data.dtype.kind == "f" and np.isnan(data).any():
                    return None  # kernel falls back on NaN ordering
                if data.dtype == np.dtype(object):
                    try:
                        lo, hi = min(data.tolist()), max(data.tolist())
                    except TypeError:
                        return None  # uncomparable: kernel falls back too
                else:
                    lo, hi = data.min().item(), data.max().item()
                if spec.func == "min":
                    mins[j] = lo if mins[j] is None else min(mins[j], lo)
                else:
                    maxs[j] = hi if maxs[j] is None else max(maxs[j], hi)
    values_out: list = []
    for j, spec in enumerate(plan.aggs):
        if spec.func == "count_star":
            values_out.append(total_rows)
        elif spec.func == "count":
            values_out.append(counts[j])
        elif counts[j] == 0:
            values_out.append(None)
        elif spec.func == "sum":
            values_out.append(int(sums[j][0]))
        elif spec.func == "avg":
            values_out.append(
                float(np.float64(sums[j][0]) / np.float64(counts[j]))
            )
        elif spec.func == "min":
            values_out.append(mins[j])
        else:
            values_out.append(maxs[j])
    out_columns = []
    for col_def, value in zip(plan.schema, values_out):
        type_ = col_def.type or _infer_output_type([value])
        column = Column.from_values(type_, [value])
        if col_def.type is not None and column.type != col_def.type:
            column = column.cast(col_def.type)
        out_columns.append(column)
    ctx.accountant.note_stream(morsels)
    ctx.kernel_hit("group_by")
    return Batch(plan.schema, out_columns)


def _spilled_aggregate(
    plan: pp.PAggregate,
    key_columns: list[Column],
    arg_columns: list[Optional[Column]],
    n: int,
    ctx: ExecContext,
) -> Batch:
    """GROUP BY with inputs radix-partitioned into spill files by group
    id, aggregated one partition at a time through the unchanged
    kernels.

    Every group's rows land wholly in one partition (``id % parts`` is
    deterministic) and partition routing preserves row order, so each
    per-partition kernel run sees exactly the global run's value
    sequence for its groups — results scatter back by global group id
    and are bit-identical to the single-shot path, while only one
    partition's rows are ever decoded at once."""
    for column in arg_columns:
        if column is not None and column.type is None:
            raise KernelFallback("spilled aggregate requires typed arguments")
    ids, n_groups, first_rows = kernels.group_ids(key_columns, n, ctx.parallel)
    ctx.kernel_hit("group_by")
    args_idx = [j for j, c in enumerate(arg_columns) if c is not None]
    est = estimate_batch_bytes(
        key_columns + [arg_columns[j] for j in args_idx]
    )
    parts = ctx.accountant.partition_count(est)
    spill = ctx.spill_manager.partitions(parts, "agg")
    try:
        for ms in range(0, n, SPILL_CHUNK_ROWS):
            me = min(ms + SPILL_CHUNK_ROWS, n)
            chunk_ids = ids[ms:me]
            cols = [Column(DataType.BIGINT, chunk_ids)]
            for j in args_idx:
                cols.append(arg_columns[j].slice_morsel(ms, me))
            spill.add(chunk_ids % parts, cols)
        out_aggs: list[list] = [[None] * n_groups for _ in plan.aggs]
        for part in range(parts):
            cols = spill.read_partition(part)
            if cols is None:
                continue
            uniq, local = np.unique(
                cols[0].data, return_inverse=True
            )
            local = local.reshape(-1).astype(np.int64, copy=False)
            part_args = {j: cols[1 + k] for k, j in enumerate(args_idx)}
            sort_cache = kernels.ArgsortCache()
            group_rows = None
            for j, spec in enumerate(plan.aggs):
                arg_col = part_args.get(j)
                try:
                    values = kernels.grouped_aggregate(
                        spec.func,
                        spec.distinct,
                        arg_col,
                        local,
                        len(uniq),
                        sort_cache,
                        ctx.parallel,
                    ).to_pylist()
                except KernelFallback as exc:
                    ctx.kernel_fallback("aggregate", exc)
                    if group_rows is None:
                        group_rows = kernels.group_row_lists(local, len(uniq))
                    values = [
                        _compute_agg(spec, arg_col, rows) for rows in group_rows
                    ]
                out = out_aggs[j]
                for g, value in enumerate(values):
                    out[int(uniq[g])] = value
    finally:
        spill.close()
    out_columns = [_gather_streamed(c, first_rows) for c in key_columns]
    for j, values in enumerate(out_aggs):
        position = len(key_columns) + j
        type_ = plan.schema[position].type or _infer_output_type(values)
        out_columns.append(Column.from_values(type_, values))
    columns = []
    for col_def, column in zip(plan.schema, out_columns):
        if col_def.type is not None and column.type != col_def.type:
            column = column.cast(col_def.type)
        columns.append(column)
    return Batch(plan.schema, columns)


def _compute_agg(spec: lp.AggSpec, arg_col: Optional[Column], rows: list[int]):
    if spec.func == "count_star":
        return len(rows)
    values = [arg_col.value(i) for i in rows]
    values = [v for v in values if v is not None]
    if spec.distinct:
        values = list(dict.fromkeys(values))
    if spec.func == "count":
        return len(values)
    if not values:
        return None
    if spec.func == "sum":
        return sum(values)
    if spec.func == "min":
        return min(values)
    if spec.func == "max":
        return max(values)
    if spec.func == "avg":
        return float(sum(values)) / len(values)
    raise ExecutionError(f"unknown aggregate {spec.func!r}")


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------
def _guard_pair_count(n: int, m: int, what: str) -> None:
    if n * m > MAX_CROSS_ROWS:
        raise ResourceLimitError(
            f"{what} of {n} x {m} rows exceeds the safety limit"
        )


def _guard_degenerate_join(total: int, n: int, m: int) -> None:
    """Two-tier guard for equi-join outputs.  At MAX_CROSS_ROWS the
    join trips only when the output is also cross-product *shaped*
    (within 2x of |L| x |R|) — a genuinely selective join may
    legitimately exceed the cross-product cap, while a degenerate key
    distribution is just the cross-product failure mode wearing an ON
    clause.  MAX_JOIN_ROWS is the absolute ceiling for any shape."""
    if total > MAX_CROSS_ROWS and 2 * total >= n * m:
        raise ResourceLimitError(
            f"hash join would produce {total} rows from {n} x {m} inputs "
            "(degenerate key distribution exceeds the safety limit)"
        )
    if total > MAX_JOIN_ROWS:
        raise ResourceLimitError(
            f"hash join would produce {total} rows, "
            f"exceeding the {MAX_JOIN_ROWS}-row safety limit"
        )


def _exec_hash_join(plan: pp.PHashJoin, ctx: ExecContext) -> Batch:
    if plan.probe_zone and ctx.vectorized and ctx.compression:
        left, right = _exec_join_inputs_zoned(plan, ctx)
    else:
        left = execute_plan(plan.left, ctx)
        right = execute_plan(plan.right, ctx)
    indices = None
    if (
        ctx.vectorized
        and plan.pairs
        and ctx.accountant.active
        and ctx.spill_manager is not None
        and left.num_rows + right.num_rows > SPILL_CHUNK_ROWS
        and ctx.accountant.decide(
            "join",
            estimate_batch_bytes(left.columns)
            + estimate_batch_bytes(right.columns),
        )
    ):
        indices = _spilled_hash_join(plan, left, right, ctx)
    if indices is not None:
        li, ri = indices
    elif plan.build_left:
        # build the hash table on the (estimated) smaller left side, then
        # restore the probe-side output order so results are identical to
        # the build-right plan
        swapped = [(b, a) for a, b in plan.pairs]
        ri, li = _hash_join_indices(right, left, swapped, ctx)
        order = np.argsort(li, kind="stable")
        li, ri = li[order], ri[order]
    else:
        li, ri = _hash_join_indices(left, right, plan.pairs, ctx)
    joined = Batch(
        plan.left.schema + plan.right.schema,
        _take_columns(left.columns, li, ctx) + _take_columns(right.columns, ri, ctx),
    )
    if plan.residual:
        joined, li = _apply_residual(plan.residual, joined, li, ctx)
    if plan.kind == "left":
        joined = _add_unmatched_left(plan, left, joined, li)
    return joined.relabel(plan.schema)


def _exec_join_inputs_zoned(plan: pp.PHashJoin, ctx: ExecContext):
    """Execute the build side first and install its key range as
    dynamic zone predicates on the probe side's base scan — zone maps
    pruning join probes, not only pushed-down filters.  Kept morsels
    stay in row order, so the probe batch is the zone-pruned
    equivalent of the plain scan and the join output is unchanged
    (pruned zones cannot contain a matching key).  When the build side
    is the *right* input, a failing build falls back to executing the
    left input so the materialized plan's left-then-right error
    surfacing is preserved."""
    build_plan, probe_plan = (
        (plan.left, plan.right) if plan.build_left else (plan.right, plan.left)
    )
    base = probe_plan
    while isinstance(base, pp.PFilter):
        base = base.input
    if not isinstance(base, pp.PScan):
        return execute_plan(plan.left, ctx), execute_plan(plan.right, ctx)
    if plan.build_left:
        build = execute_plan(build_plan, ctx)
    else:
        try:
            build = execute_plan(build_plan, ctx)
        except Exception:
            # the materialized plan runs left before right: give the
            # left (probe) input the chance to raise its own error
            # first, as it would have; if it runs clean, the build
            # side's failure is the one the plain order reports too
            execute_plan(probe_plan, ctx)
            raise
    preds = []
    for pair_index, column_name in plan.probe_zone:
        pair = plan.pairs[pair_index]
        build_expr = pair[0] if plan.build_left else pair[1]
        key = ctx.eval(build_expr, build)
        if key.data.dtype.kind not in "iufb":
            continue
        valid = ~key.null_mask()
        if key.data.dtype.kind == "f":
            valid &= ~np.isnan(key.data)
        vals = key.data[valid]
        if not len(vals):
            continue  # empty build side: nothing to bound probes by
        preds.append(
            ZonePredicate(column_name, ">=", (("lit", vals.min().item()),))
        )
        preds.append(
            ZonePredicate(column_name, "<=", (("lit", vals.max().item()),))
        )
    if preds:
        if ctx.storage_counters is not None:
            ctx.storage_counters.note_dynamic("join_probe")
        entry = ctx.dynamic_zones.setdefault(id(base), [])
        entry.extend(preds)
        try:
            probe = execute_plan(probe_plan, ctx)
        finally:
            del entry[-len(preds):]
            if not entry:
                ctx.dynamic_zones.pop(id(base), None)
    else:
        probe = execute_plan(probe_plan, ctx)
    if plan.build_left:
        return build, probe
    return probe, build


def _spilled_hash_join(
    plan: pp.PHashJoin, left: Batch, right: Batch, ctx: ExecContext
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Equi-join with both inputs' (row, key-code) pairs radix-
    partitioned into spill files, joined one partition at a time.

    Key codes come from the kernels' shared dictionary (NULLs excluded
    up front, NaNs coded distinct — never matching, like the in-memory
    probe), so every matching pair falls in exactly one partition and
    the union over partitions is exactly the in-memory pair set; the
    final lexsort restores probe order (ascending left row, ascending
    right row within), the unique order every in-memory path emits.
    Returns None when the keys cannot be codified — the caller then
    runs the unchanged in-memory paths."""
    left_keys = [ctx.eval(a, left) for a, _ in plan.pairs]
    right_keys = [ctx.eval(b, right) for _, b in plan.pairs]
    n_left, n_right = left.num_rows, right.num_rows
    try:
        l_ids, r_ids, _radix = kernels._joint_codes(
            left_keys, right_keys, n_left, n_right, par=ctx.parallel
        )
    except KernelFallback:
        return None
    left_valid = np.ones(n_left, dtype=np.bool_)
    for column in left_keys:
        if column.mask is not None:
            left_valid &= ~column.mask
    right_valid = np.ones(n_right, dtype=np.bool_)
    for column in right_keys:
        if column.mask is not None:
            right_valid &= ~column.mask
    est = estimate_batch_bytes(left.columns) + estimate_batch_bytes(
        right.columns
    )
    parts = ctx.accountant.partition_count(est)
    lparts = ctx.spill_manager.partitions(parts, "joinl")
    rparts = ctx.spill_manager.partitions(parts, "joinr")
    out_li, out_ri = [], []
    running = 0
    try:
        for ids, valid, sink, n in (
            (l_ids, left_valid, lparts, n_left),
            (r_ids, right_valid, rparts, n_right),
        ):
            for ms in range(0, n, SPILL_CHUNK_ROWS):
                me = min(ms + SPILL_CHUNK_ROWS, n)
                sel = np.flatnonzero(valid[ms:me]).astype(np.int64)
                if not len(sel):
                    continue
                codes = ids[ms:me][sel]
                sink.add(
                    codes % parts,
                    [
                        Column(DataType.BIGINT, sel + ms),
                        Column(DataType.BIGINT, codes),
                    ],
                )
        # the codes now live in the spill partitions; drop the full-size
        # id/validity arrays before the per-partition joins allocate
        del l_ids, r_ids, left_valid, right_valid, left_keys, right_keys
        for part in range(parts):
            lcols = lparts.read_partition(part)
            rcols = rparts.read_partition(part)
            if lcols is None or rcols is None:
                continue
            lrows, lcodes = lcols[0].data, lcols[1].data
            rrows, rcodes = rcols[0].data, rcols[1].data

            def _part_guard(total, _n, _m, base=running):
                # cumulative check against the *global* input shape —
                # monotone in the pair total, so it trips iff the
                # in-memory join's one-shot guard would
                _guard_degenerate_join(base + total, n_left, n_right)

            pli, pri = kernels._sorted_equi_join(
                lcodes,
                rcodes,
                np.ones(len(lcodes), dtype=np.bool_),
                np.ones(len(rcodes), dtype=np.bool_),
                _part_guard,
                ctx.parallel,
            )
            running += len(pli)
            if len(pli):
                out_li.append(lrows[pli])
                out_ri.append(rrows[pri])
    finally:
        lparts.close()
        rparts.close()
    if out_li:
        li = np.concatenate(out_li)
        ri = np.concatenate(out_ri)
        order = np.lexsort((ri, li))
        li, ri = li[order], ri[order]
    else:
        li = np.empty(0, dtype=np.int64)
        ri = np.empty(0, dtype=np.int64)
    ctx.kernel_hit("join")
    return li, ri


def _apply_residual(residual, joined: Batch, li, ctx: ExecContext):
    keep = np.ones(joined.num_rows, dtype=np.bool_)
    for conjunct in residual:
        col = ctx.eval(conjunct, joined)
        hit = col.data.astype(np.bool_)
        if col.mask is not None:
            hit &= ~col.mask
        keep &= hit
    return joined.filter(keep), li[keep]


def _exec_nested_loop_join(plan: pp.PNestedLoopJoin, ctx: ExecContext) -> Batch:
    left = execute_plan(plan.left, ctx)
    right = execute_plan(plan.right, ctx)
    n, m = left.num_rows, right.num_rows
    _guard_pair_count(n, m, "nested-loop join")
    li = np.repeat(np.arange(n, dtype=np.int64), m)
    ri = np.tile(np.arange(m, dtype=np.int64), n)
    joined = Batch(
        plan.left.schema + plan.right.schema,
        [c.take(li) for c in left.columns] + [c.take(ri) for c in right.columns],
    )
    joined, li = _apply_residual(plan.residual, joined, li, ctx)
    if plan.kind == "left":
        joined = _add_unmatched_left(plan, left, joined, li)
    return joined.relabel(plan.schema)


def _exec_cross_join(plan: pp.PCrossJoin, ctx: ExecContext) -> Batch:
    left = execute_plan(plan.left, ctx)
    right = execute_plan(plan.right, ctx)
    n, m = left.num_rows, right.num_rows
    _guard_pair_count(n, m, "cross product")
    li = np.repeat(np.arange(n, dtype=np.int64), m)
    ri = np.tile(np.arange(m, dtype=np.int64), n)
    columns = [c.take(li) for c in left.columns] + [c.take(ri) for c in right.columns]
    if not columns:
        return ZeroColumnBatch(n * m)
    return Batch(plan.schema, columns)


def _hash_join_indices(left: Batch, right: Batch, pairs, ctx: ExecContext):
    left_keys = [ctx.eval(a, left) for a, _ in pairs]
    right_keys = [ctx.eval(b, right) for _, b in pairs]
    if ctx.vectorized:
        try:
            result = kernels.join_indices(
                left_keys,
                right_keys,
                guard=_guard_degenerate_join,
                par=ctx.parallel,
            )
            ctx.kernel_hit("join")
            return result
        except KernelFallback as exc:
            ctx.kernel_fallback("join", exc)
    if len(pairs) == 1 and (
        left_keys[0].type is not None
        and left_keys[0].type.is_numeric
        and left_keys[0].type != DataType.DOUBLE
        and right_keys[0].type is not None
        and right_keys[0].type.is_numeric
        and right_keys[0].type != DataType.DOUBLE
    ):
        # the PR-2 single-integer-key fast path, part of the
        # vectorized=False oracle's behavior
        return _sorted_join_indices(left_keys[0], right_keys[0])
    table: dict[tuple, list[int]] = {}
    right_tuples = list(zip(*(col.to_pylist() for col in right_keys)))
    for j, key in enumerate(right_tuples):
        if any(v is None for v in key):
            continue
        table.setdefault(key, []).append(j)
    li: list[int] = []
    ri: list[int] = []
    left_tuples = list(zip(*(col.to_pylist() for col in left_keys)))
    for i, key in enumerate(left_tuples):
        if any(v is None for v in key):
            continue
        for j in table.get(key, ()):
            li.append(i)
            ri.append(j)
        if len(li) > MAX_CROSS_ROWS:
            _guard_degenerate_join(len(li), len(left_tuples), len(right_tuples))
    return np.asarray(li, dtype=np.int64), np.asarray(ri, dtype=np.int64)


def _sorted_join_indices(left_key: Column, right_key: Column):
    """Vectorized single-integer-key equi-join via sort + searchsorted.

    Orders of magnitude faster than the per-row dict probe for the large
    intermediate results that recursive CTE evaluation produces.
    """
    lk = left_key.data.astype(np.int64)
    rk = right_key.data.astype(np.int64)
    left_valid = ~left_key.null_mask()
    right_valid = ~right_key.null_mask()
    right_rows = np.flatnonzero(right_valid)
    order = right_rows[np.argsort(rk[right_rows], kind="stable")]
    sorted_rk = rk[order]
    left_rows = np.flatnonzero(left_valid)
    lo = np.searchsorted(sorted_rk, lk[left_rows], side="left")
    hi = np.searchsorted(sorted_rk, lk[left_rows], side="right")
    counts = (hi - lo).astype(np.int64)
    total = int(counts.sum())
    _guard_degenerate_join(total, len(lk), len(rk))
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    li = np.repeat(left_rows, counts)
    cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
    slots = np.repeat(lo - cum, counts) + np.arange(total, dtype=np.int64)
    ri = order[slots]
    return li, ri


def _add_unmatched_left(plan, left: Batch, joined: Batch, li):
    matched = np.zeros(left.num_rows, dtype=np.bool_)
    if len(li):
        matched[li] = True
    missing = np.flatnonzero(~matched)
    if len(missing) == 0:
        return joined
    left_part = [c.take(missing) for c in left.columns]
    null_part = [
        Column.nulls(c.type or DataType.VARCHAR, len(missing))
        for c in plan.right.schema
    ]
    extra = Batch(plan.left.schema + plan.right.schema, left_part + null_part)
    columns = [
        Column.concat([a, b]) for a, b in zip(joined.columns, extra.columns)
    ]
    return Batch(joined.schema, columns)


# ---------------------------------------------------------------------------
# set operations
# ---------------------------------------------------------------------------
def _exec_setop(plan: pp.PSetOp, ctx: ExecContext) -> Batch:
    left = execute_plan(plan.left, ctx)
    right = execute_plan(plan.right, ctx)
    left = _coerce_batch(left, plan.schema)
    right = _coerce_batch(right, plan.schema)
    if plan.op == "union":
        columns = [_concat_promote(a, b) for a, b in zip(left.columns, right.columns)]
        if not columns:
            result = ZeroColumnBatch(left.num_rows + right.num_rows)
        else:
            result = Batch(plan.schema, columns)
        if plan.all:
            return result
        return _distinct_batch(result, ctx)
    if ctx.vectorized:
        try:
            keep = kernels.setop_mask(
                left.columns,
                left.num_rows,
                right.columns,
                right.num_rows,
                keep_members=plan.op == "intersect",
                par=ctx.parallel,
            )
            ctx.kernel_hit("setop")
            return left.filter(keep)
        except KernelFallback as exc:
            ctx.kernel_fallback("setop", exc)
    right_keys = set(_batch_rows(right))
    keep = np.zeros(left.num_rows, dtype=np.bool_)
    seen: set = set()
    for i, key in enumerate(_batch_rows(left)):
        if key in seen:
            continue
        member = key in right_keys
        if (plan.op == "intersect" and member) or (plan.op == "except" and not member):
            keep[i] = True
            seen.add(key)
    return left.filter(keep)


def _concat_promote(left: Column, right: Column) -> Column:
    """Concatenate two columns, promoting numeric widths when they differ
    (host parameters have no static type, so INTEGER/BIGINT mixes are
    only discovered at runtime)."""
    if left.type != right.type:
        from ..storage import promote

        target = promote(left.type, right.type)
        left = left.cast(target)
        right = right.cast(target)
    return Column.concat([left, right])


def _coerce_batch(batch: Batch, schema: tuple[lp.PlanColumn, ...]) -> Batch:
    columns = []
    for col, out in zip(batch.columns, schema):
        if out.type is not None and col.type != out.type:
            col = col.cast(out.type)
        columns.append(col)
    return Batch(schema, columns) if columns else ZeroColumnBatch(batch.num_rows)


# ---------------------------------------------------------------------------
# recursive CTEs
# ---------------------------------------------------------------------------
def _exec_materialize(plan: pp.PMaterialize, ctx: ExecContext) -> Batch:
    result = execute_plan(plan.definition, ctx)
    previous = ctx.cte_tables.get(plan.cte_name)
    ctx.cte_tables[plan.cte_name] = result
    try:
        return execute_plan(plan.body, ctx)
    finally:
        if previous is None:
            ctx.cte_tables.pop(plan.cte_name, None)
        else:
            ctx.cte_tables[plan.cte_name] = previous


def _exec_recursive(plan: pp.PRecursive, ctx: ExecContext) -> Batch:
    accumulated = _coerce_batch(execute_plan(plan.base, ctx), plan.schema)
    seen: Optional[set] = None
    # vectorized dedup carries no row-key set across iterations: each
    # delta is checked against the accumulated batch by codified ids.
    # On the first uncodifiable batch we build the seen-set from the
    # accumulated rows and continue row-at-a-time.
    use_kernels = ctx.vectorized and not plan.union_all
    if not plan.union_all:
        if use_kernels:
            try:
                accumulated = accumulated.filter(
                    kernels.distinct_mask(
                        accumulated.columns, accumulated.num_rows, ctx.parallel
                    )
                )
                ctx.kernel_hit("dedup")
            except KernelFallback as exc:
                ctx.kernel_fallback("dedup", exc)
                use_kernels = False
        if not use_kernels:
            seen = set()
            accumulated = _dedup_batch(accumulated, seen)
    delta = accumulated
    steps = 0
    previous = ctx.cte_tables.get(plan.cte_name)
    try:
        while delta.num_rows:
            steps += 1
            if steps > MAX_RECURSION_STEPS:
                raise ExecutionError(
                    f"recursive CTE {plan.cte_name!r} exceeded "
                    f"{MAX_RECURSION_STEPS} iterations"
                )
            ctx.cte_tables[plan.cte_name] = delta
            produced = execute_plan(plan.recursive, ctx)
            produced = _coerce_batch(produced, plan.schema)
            if plan.union_all:
                delta = produced
            else:
                if use_kernels and (
                    accumulated.num_rows >= 1024
                    and produced.num_rows * DEDUP_DELTA_FRACTION
                    < accumulated.num_rows
                ):
                    # thin deltas: re-codifying the whole accumulated
                    # batch every step no longer pays — build the
                    # incremental seen-set once and stay row-at-a-time
                    use_kernels = False
                    seen = set(_batch_rows(accumulated))
                if use_kernels:
                    try:
                        delta = produced.filter(
                            kernels.new_rows_mask(
                                accumulated.columns,
                                accumulated.num_rows,
                                produced.columns,
                                produced.num_rows,
                                ctx.parallel,
                            )
                        )
                        ctx.kernel_hit("dedup")
                    except KernelFallback as exc:
                        ctx.kernel_fallback("dedup", exc)
                        use_kernels = False
                        seen = set(_batch_rows(accumulated))
                if not use_kernels:
                    delta = _dedup_batch(produced, seen)
            if delta.num_rows:
                accumulated = Batch(
                    plan.schema,
                    [
                        _concat_promote(a, b)
                        for a, b in zip(accumulated.columns, delta.columns)
                    ],
                )
    finally:
        if previous is None:
            ctx.cte_tables.pop(plan.cte_name, None)
        else:
            ctx.cte_tables[plan.cte_name] = previous
    return accumulated


def _dedup_batch(batch: Batch, seen: set) -> Batch:
    keep = np.zeros(batch.num_rows, dtype=np.bool_)
    for i, key in enumerate(_batch_rows(batch)):
        if key not in seen:
            seen.add(key)
            keep[i] = True
    return batch.filter(keep)


# ---------------------------------------------------------------------------
# UNNEST (Section 3.3)
# ---------------------------------------------------------------------------
def _exec_unnest(plan: pp.PUnnest, ctx: ExecContext) -> Batch:
    from ..nested import NestedTableValue

    batch = execute_plan(plan.input, ctx)
    operand = ctx.eval(plan.operand, batch)
    n = batch.num_rows
    repeats = np.zeros(n, dtype=np.int64)
    values: list[Optional[NestedTableValue]] = []
    for i in range(n):
        value = operand.value(i)
        values.append(value)
        count = len(value) if isinstance(value, NestedTableValue) else 0
        repeats[i] = max(count, 1) if plan.outer else count
    input_indices = np.repeat(np.arange(n, dtype=np.int64), repeats)
    input_part = [c.take(input_indices) for c in batch.columns]

    # fast path: every non-empty nested table shares one source batch
    sources = {id(v.source) for v in values if isinstance(v, NestedTableValue) and len(v)}
    total = int(repeats.sum())
    nested_columns: list[Column] = []
    ordinality_values = np.zeros(total, dtype=np.int64)
    ordinality_mask = np.zeros(total, dtype=np.bool_)
    if len(sources) <= 1:
        source = None
        for v in values:
            if isinstance(v, NestedTableValue) and len(v):
                source = v.source
                break
        gather: list[np.ndarray] = []
        null_rows: list[int] = []  # positions (in output) that are padding
        cursor = 0
        for i, value in enumerate(values):
            count = len(value) if isinstance(value, NestedTableValue) else 0
            if count:
                gather.append(value.row_ids)
                ordinality_values[cursor : cursor + count] = np.arange(1, count + 1)
                cursor += count
            elif plan.outer:
                null_rows.append(cursor)
                ordinality_mask[cursor] = True
                cursor += 1
        row_ids = (
            np.concatenate(gather) if gather else np.empty(0, dtype=np.int64)
        )
        # build each nested output column: gathered values with padding holes
        for position, out_col in enumerate(plan.unnested):
            if source is not None:
                base = source.columns[position].take(row_ids)
            else:
                base = Column.empty(out_col.type or DataType.VARCHAR)
            if null_rows:
                nested_columns.append(
                    _scatter_with_nulls(base, total, null_rows, out_col.type)
                )
            else:
                nested_columns.append(base)
    else:
        # mixed sources (e.g. a union of two path columns): per-row gather
        parts_per_column: list[list[Column]] = [[] for _ in plan.unnested]
        cursor = 0
        for value in values:
            count = len(value) if isinstance(value, NestedTableValue) else 0
            if count:
                for position in range(len(plan.unnested)):
                    parts_per_column[position].append(
                        value.source.columns[position].take(value.row_ids)
                    )
                ordinality_values[cursor : cursor + count] = np.arange(1, count + 1)
                cursor += count
            elif plan.outer:
                for position, out_col in enumerate(plan.unnested):
                    parts_per_column[position].append(
                        Column.nulls(out_col.type or DataType.VARCHAR, 1)
                    )
                ordinality_mask[cursor] = True
                cursor += 1
        for position, out_col in enumerate(plan.unnested):
            parts = parts_per_column[position]
            nested_columns.append(
                Column.concat(parts)
                if parts
                else Column.empty(out_col.type or DataType.VARCHAR)
            )
    columns = input_part + nested_columns
    if plan.ordinality is not None:
        columns.append(
            Column(
                DataType.BIGINT,
                ordinality_values,
                ordinality_mask if ordinality_mask.any() else None,
            )
        )
    return Batch(plan.schema, columns)


def _scatter_with_nulls(base: Column, total: int, null_rows: list[int], type_):
    type_ = type_ or base.type
    data = np.empty(total, dtype=base.data.dtype)
    if base.data.dtype != np.dtype(object):
        data[:] = 0
    mask = np.zeros(total, dtype=np.bool_)
    null_set = set(null_rows)
    src_i = 0
    for out_i in range(total):
        if out_i in null_set:
            mask[out_i] = True
        else:
            data[out_i] = base.data[src_i]
            if base.mask is not None and base.mask[src_i]:
                mask[out_i] = True
            src_i += 1
    return Column(base.type, data, mask if mask.any() else None)


# ---------------------------------------------------------------------------
# dispatch table (graph operators registered by graph_ops to avoid cycle)
# ---------------------------------------------------------------------------
_DISPATCH = {
    pp.PScan: _exec_scan,
    pp.PSingleRow: _exec_single_row,
    pp.PValues: _exec_values,
    pp.PCTERef: _exec_cte_ref,
    pp.PFilter: _exec_filter,
    pp.PProject: _exec_project,
    pp.PLimit: _exec_limit,
    pp.PDistinct: _exec_distinct,
    pp.PSort: _exec_sort,
    pp.PAggregate: _exec_aggregate,
    pp.PHashJoin: _exec_hash_join,
    pp.PNestedLoopJoin: _exec_nested_loop_join,
    pp.PCrossJoin: _exec_cross_join,
    pp.PSetOp: _exec_setop,
    pp.PMaterialize: _exec_materialize,
    pp.PRecursive: _exec_recursive,
    pp.PUnnest: _exec_unnest,
}


def register_operator(node_type, handler) -> None:
    """Extension hook used by :mod:`repro.exec.graph_ops`."""
    _DISPATCH[node_type] = handler
