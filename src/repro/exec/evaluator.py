"""Vectorized expression evaluation over batches.

Implements SQL semantics over the column representation:

* arithmetic/comparisons propagate NULL (result mask = union of operand
  masks);
* AND/OR follow Kleene three-valued logic;
* ``||`` concatenation operates on strings (non-strings are cast);
* host parameters are materialized as constant columns from the values
  supplied at execution time;
* uncorrelated subqueries (scalar / IN / EXISTS) are evaluated once per
  batch through a callback into the plan executor.

Every evaluation returns a full :class:`~repro.storage.Column` of the
batch's length — column-at-a-time, like the MAL plans of the paper's
prototype.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Callable

import numpy as np

from ..errors import ExecutionError, TypeError_
from ..plan import exprs as bx
from ..storage import (
    Column,
    DataType,
    days_to_date,
    infer_literal_type,
    parse_date_literal,
)
from .batch import Batch

#: Callback used for subquery expressions: plan -> Batch.
PlanRunner = Callable[[object], Batch]


class EvalContext:
    """Execution-time environment for expression evaluation."""

    __slots__ = ("params", "run_plan")

    def __init__(self, params: tuple, run_plan: PlanRunner):
        self.params = params
        self.run_plan = run_plan


def evaluate(expr: bx.BoundExpr, batch: Batch, ctx: EvalContext) -> Column:
    """Evaluate ``expr`` for every row of ``batch``."""
    n = batch.num_rows
    if isinstance(expr, bx.BLiteral):
        type_ = expr.type or DataType.INTEGER
        return Column.constant(type_, expr.value, n) if expr.value is not None else Column.nulls(type_, n)
    if isinstance(expr, bx.BParam):
        value = _param_value(ctx, expr.index)
        if value is None:
            return Column.nulls(DataType.INTEGER, n)
        return Column.constant(infer_literal_type(value), value, n)
    if isinstance(expr, bx.BColumn):
        return batch.column_by_id(expr.col_id)
    if isinstance(expr, bx.BAggValue):
        return batch.column_by_id(expr.col_id)
    if isinstance(expr, bx.BCall):
        return _evaluate_call(expr, batch, ctx)
    if isinstance(expr, bx.BCast):
        operand = evaluate(expr.operand, batch, ctx)
        return operand.cast(expr.type)
    if isinstance(expr, bx.BIsNull):
        operand = evaluate(expr.operand, batch, ctx)
        mask = operand.null_mask()
        data = ~mask if expr.negated else mask.copy()
        return Column(DataType.BOOLEAN, data)
    if isinstance(expr, bx.BInList):
        return _evaluate_in_list(expr, batch, ctx)
    if isinstance(expr, bx.BCase):
        return _evaluate_case(expr, batch, ctx)
    if isinstance(expr, bx.BScalarSubquery):
        return _evaluate_scalar_subquery(expr, batch, ctx)
    if isinstance(expr, bx.BInSubquery):
        return _evaluate_in_subquery(expr, batch, ctx)
    if isinstance(expr, bx.BExists):
        inner = ctx.run_plan(expr.plan)
        value = inner.num_rows > 0
        if expr.negated:
            value = not value
        return Column.constant(DataType.BOOLEAN, value, n)
    raise ExecutionError(f"cannot evaluate expression {type(expr).__name__}")


def _param_value(ctx: EvalContext, index: int) -> Any:
    if index >= len(ctx.params):
        raise ExecutionError(
            f"statement requires at least {index + 1} parameters, "
            f"got {len(ctx.params)}"
        )
    value = ctx.params[index]
    if isinstance(value, _dt.date) and not isinstance(value, _dt.datetime):
        return value
    return value


# ---------------------------------------------------------------------------
# calls
# ---------------------------------------------------------------------------
_COMPARE_OPS = {
    "=": "equal",
    "<>": "not_equal",
    "<": "less",
    "<=": "less_equal",
    ">": "greater",
    ">=": "greater_equal",
}


def _evaluate_call(expr: bx.BCall, batch: Batch, ctx: EvalContext) -> Column:
    op = expr.op
    if op == "and" or op == "or":
        return _evaluate_logical(op, expr.args, batch, ctx)
    if op == "not":
        operand = evaluate(expr.args[0], batch, ctx)
        return Column(DataType.BOOLEAN, ~operand.data.astype(np.bool_), operand.mask)
    args = [evaluate(a, batch, ctx) for a in expr.args]
    if op in _COMPARE_OPS:
        return _evaluate_compare(op, args[0], args[1])
    if op == "||":
        return _evaluate_concat(args[0], args[1])
    if op == "neg":
        col = args[0]
        return Column(col.type, -col.data, col.mask)
    if op in ("+", "-", "*", "/", "%"):
        return _evaluate_arith(op, args[0], args[1])
    if op == "like":
        return _evaluate_like(args[0], args[1])
    return _evaluate_scalar_func(op, args, batch.num_rows, expr.type)


def _combine_masks(*columns: Column) -> np.ndarray | None:
    masks = [c.mask for c in columns if c.mask is not None]
    if not masks:
        return None
    out = masks[0].copy()
    for m in masks[1:]:
        out |= m
    return out


def _align_numeric(left: Column, right: Column) -> tuple[np.ndarray, np.ndarray, DataType]:
    """Promote two numeric (or date) columns to a common numpy dtype."""
    lt, rt = left.type, right.type
    if lt == DataType.VARCHAR or rt == DataType.VARCHAR:
        raise TypeError_("expected numeric operands")
    if DataType.DOUBLE in (lt, rt):
        return left.data.astype(np.float64), right.data.astype(np.float64), DataType.DOUBLE
    out_type = DataType.BIGINT
    if lt == rt and lt in (DataType.INTEGER, DataType.BOOLEAN, DataType.DATE):
        out_type = lt if lt != DataType.BOOLEAN else DataType.INTEGER
    return left.data.astype(np.int64), right.data.astype(np.int64), out_type


def _evaluate_compare(op: str, left: Column, right: Column) -> Column:
    mask = _combine_masks(left, right)
    if left.type == DataType.VARCHAR or right.type == DataType.VARCHAR:
        if left.type != right.type:
            # compare strings with dates by decoding, else error
            if {left.type, right.type} == {DataType.VARCHAR, DataType.DATE}:
                string_col = left if left.type == DataType.VARCHAR else right
                date_col = left if left.type == DataType.DATE else right
                encoded = np.fromiter(
                    (
                        parse_date_literal(v) if v is not None else 0
                        for v in string_col.to_pylist()
                    ),
                    dtype=np.int64,
                    count=len(string_col),
                )
                ldata = encoded if left.type == DataType.VARCHAR else left.data
                rdata = encoded if right.type == DataType.VARCHAR else right.data
                return Column(DataType.BOOLEAN, _compare_arrays(op, ldata, rdata), mask)
            raise TypeError_(f"cannot compare {left.type} with {right.type}")
        ldata = left.data
        rdata = right.data
        result = np.empty(len(left), dtype=np.bool_)
        for i in range(len(left)):
            lv, rv = ldata[i], rdata[i]
            if lv is None or rv is None:
                result[i] = False
            else:
                result[i] = _PY_COMPARE[op](lv, rv)
        return Column(DataType.BOOLEAN, result, mask)
    ldata, rdata, _ = _align_numeric(left, right)
    return Column(DataType.BOOLEAN, _compare_arrays(op, ldata, rdata), mask)


_PY_COMPARE = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compare_arrays(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _evaluate_arith(op: str, left: Column, right: Column) -> Column:
    mask = _combine_masks(left, right)
    # DATE ± days
    if left.type == DataType.DATE and right.type.is_integral and op in ("+", "-"):
        data = left.data + right.data.astype(np.int64) * (1 if op == "+" else -1)
        return Column(DataType.DATE, data, mask)
    if left.type == DataType.DATE and right.type == DataType.DATE and op == "-":
        return Column(DataType.BIGINT, left.data - right.data, mask)
    ldata, rdata, out_type = _align_numeric(left, right)
    if op == "+":
        data = ldata + rdata
    elif op == "-":
        data = ldata - rdata
    elif op == "*":
        data = ldata * rdata
    elif op == "/":
        out_type = DataType.DOUBLE
        with np.errstate(divide="ignore", invalid="ignore"):
            data = ldata.astype(np.float64) / rdata.astype(np.float64)
        divzero = rdata == 0
        if divzero.any():
            mask = (mask.copy() if mask is not None else np.zeros(len(ldata), np.bool_))
            mask |= divzero  # SQL: division by zero -> NULL (lenient mode)
            data = np.where(divzero, 0.0, data)
    else:  # %
        divzero = rdata == 0
        safe = np.where(divzero, 1, rdata)
        data = _fmod(ldata, safe)
        if divzero.any():
            mask = (mask.copy() if mask is not None else np.zeros(len(ldata), np.bool_))
            mask |= divzero
    return Column(out_type, data, mask)


def _fmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """SQL MOD truncates toward zero (unlike numpy's floored mod)."""
    if a.dtype.kind == "f":
        return a - b * np.trunc(a / b).astype(a.dtype)
    trunc_div = np.sign(a) * np.sign(b) * (np.abs(a) // np.abs(b))
    return a - b * trunc_div


def _evaluate_concat(left: Column, right: Column) -> Column:
    mask = _combine_masks(left, right)
    lvals = left.cast(DataType.VARCHAR) if left.type != DataType.VARCHAR else left
    rvals = right.cast(DataType.VARCHAR) if right.type != DataType.VARCHAR else right
    data = np.empty(len(left), dtype=object)
    ld, rd = lvals.data, rvals.data
    for i in range(len(left)):
        lv = ld[i] if ld[i] is not None else ""
        rv = rd[i] if rd[i] is not None else ""
        data[i] = lv + rv
    return Column(DataType.VARCHAR, data, mask)


def _evaluate_logical(op: str, args, batch: Batch, ctx: EvalContext) -> Column:
    left = evaluate(args[0], batch, ctx)
    right = evaluate(args[1], batch, ctx)
    lval = left.data.astype(np.bool_)
    rval = right.data.astype(np.bool_)
    lnull = left.null_mask()
    rnull = right.null_mask()
    if op == "and":
        data = lval & rval
        # NULL unless one side is definitely FALSE
        null = (lnull | rnull) & ~((~lval & ~lnull) | (~rval & ~rnull))
    else:
        data = lval | rval
        null = (lnull | rnull) & ~((lval & ~lnull) | (rval & ~rnull))
    data = data & ~null
    return Column(DataType.BOOLEAN, data, null if null.any() else None)


def _evaluate_like(operand: Column, pattern: Column) -> Column:
    import re

    mask = _combine_masks(operand, pattern)
    out = np.zeros(len(operand), dtype=np.bool_)
    null = mask if mask is not None else np.zeros(len(operand), dtype=np.bool_)
    cache: dict[str, re.Pattern] = {}
    for i in range(len(operand)):
        if null[i]:
            continue
        value = operand.data[i]
        pat = pattern.data[i]
        if value is None or pat is None:
            continue
        regex = cache.get(pat)
        if regex is None:
            body = ""
            for ch in pat:
                if ch == "%":
                    body += ".*"
                elif ch == "_":
                    body += "."
                else:
                    body += re.escape(ch)
            regex = re.compile("^" + body + "$", re.DOTALL)
            cache[pat] = regex
        out[i] = regex.match(value) is not None
    return Column(DataType.BOOLEAN, out, mask)


def _evaluate_in_list(expr: bx.BInList, batch: Batch, ctx: EvalContext) -> Column:
    operand = evaluate(expr.operand, batch, ctx)
    result = np.zeros(batch.num_rows, dtype=np.bool_)
    any_null_item = np.zeros(batch.num_rows, dtype=np.bool_)
    for item in expr.items:
        item_col = evaluate(item, batch, ctx)
        eq = _evaluate_compare("=", operand, item_col)
        hits = eq.data.astype(np.bool_)
        if eq.mask is not None:
            any_null_item |= eq.mask
            hits = hits & ~eq.mask
        result |= hits
    # x IN (...) is NULL when no match and some comparison was NULL
    null = any_null_item & ~result
    if operand.mask is not None:
        null |= operand.mask
        result &= ~operand.mask
    if expr.negated:
        result = ~result & ~null
    return Column(DataType.BOOLEAN, result, null if null.any() else None)


def _evaluate_case(expr: bx.BCase, batch: Batch, ctx: EvalContext) -> Column:
    n = batch.num_rows
    result_type = expr.type or DataType.VARCHAR
    taken = np.zeros(n, dtype=np.bool_)
    pieces: list[tuple[np.ndarray, Column]] = []
    for cond, result in expr.whens:
        cond_col = evaluate(cond, batch, ctx)
        hit = cond_col.data.astype(np.bool_)
        if cond_col.mask is not None:
            hit = hit & ~cond_col.mask
        hit = hit & ~taken
        taken |= hit
        result_col = evaluate(result, batch, ctx)
        if result_col.type != result_type and result_col.type is not None:
            result_col = result_col.cast(result_type)
        pieces.append((hit, result_col))
    else_col = None
    if expr.else_ is not None:
        else_col = evaluate(expr.else_, batch, ctx)
        if else_col.type != result_type and else_col.type is not None:
            else_col = else_col.cast(result_type)
    out_data = np.empty(n, dtype=result_type.numpy_dtype)
    if result_type.numpy_dtype != np.dtype(object):
        out_data[:] = 0
    out_mask = np.ones(n, dtype=np.bool_)
    for hit, col in pieces:
        out_data[hit] = col.data[hit]
        out_mask[hit] = col.null_mask()[hit]
    rest = ~taken
    if else_col is not None:
        out_data[rest] = else_col.data[rest]
        out_mask[rest] = else_col.null_mask()[rest]
    return Column(result_type, out_data, out_mask if out_mask.any() else None)


def _evaluate_scalar_subquery(expr: bx.BScalarSubquery, batch: Batch, ctx) -> Column:
    inner = ctx.run_plan(expr.plan)
    if inner.num_rows > 1:
        raise ExecutionError("scalar subquery returned more than one row")
    if inner.num_rows == 0:
        return Column.nulls(expr.type or DataType.INTEGER, batch.num_rows)
    value = inner.columns[0].value(0)
    type_ = expr.type or inner.schema[0].type or DataType.INTEGER
    if value is None:
        return Column.nulls(type_, batch.num_rows)
    return Column.constant(type_, value, batch.num_rows)


def _evaluate_in_subquery(expr: bx.BInSubquery, batch: Batch, ctx) -> Column:
    operand = evaluate(expr.operand, batch, ctx)
    inner = ctx.run_plan(expr.plan)
    inner_col = inner.columns[0]
    values = set()
    has_null = False
    for v in inner_col:
        if v is None:
            has_null = True
        else:
            values.add(v)
    result = np.zeros(batch.num_rows, dtype=np.bool_)
    null = operand.null_mask().copy()
    for i in range(batch.num_rows):
        v = operand.value(i)
        if v is None:
            continue
        if v in values:
            result[i] = True
        elif has_null:
            null[i] = True  # unknown
    if expr.negated:
        result = ~result & ~null
    return Column(DataType.BOOLEAN, result, null if null.any() else None)


# ---------------------------------------------------------------------------
# scalar functions
# ---------------------------------------------------------------------------
def _evaluate_scalar_func(
    name: str, args: list[Column], n: int, static_type: DataType | None = None
) -> Column:
    if name == "abs":
        col = args[0]
        return Column(col.type, np.abs(col.data), col.mask)
    if name == "length":
        col = args[0]
        data = np.fromiter(
            (len(v) if v is not None else 0 for v in col.data),
            dtype=np.int32,
            count=len(col),
        )
        return Column(DataType.INTEGER, data, col.mask)
    if name in ("lower", "upper"):
        col = args[0]
        func = str.lower if name == "lower" else str.upper
        data = np.empty(len(col), dtype=object)
        for i, v in enumerate(col.data):
            data[i] = func(v) if v is not None else None
        return Column(DataType.VARCHAR, data, col.mask)
    if name == "round":
        col, digits = args
        d = digits.value(0) if len(digits) else 0
        return Column(
            DataType.DOUBLE,
            np.round(col.data.astype(np.float64), int(d or 0)),
            col.mask,
        )
    if name == "floor":
        return Column(
            DataType.BIGINT,
            np.floor(args[0].data.astype(np.float64)).astype(np.int64),
            args[0].mask,
        )
    if name == "ceil":
        return Column(
            DataType.BIGINT,
            np.ceil(args[0].data.astype(np.float64)).astype(np.int64),
            args[0].mask,
        )
    if name == "sqrt":
        data = args[0].data.astype(np.float64)
        mask = args[0].null_mask().copy()
        negative = data < 0
        mask |= negative
        with np.errstate(invalid="ignore"):
            out = np.sqrt(np.where(negative, 0, data))
        return Column(DataType.DOUBLE, out, mask if mask.any() else None)
    if name == "mod":
        return _evaluate_arith("%", args[0], args[1])
    if name == "coalesce":
        if not args:
            raise ExecutionError("COALESCE requires arguments")
        result_type = static_type
        if result_type is None:
            candidates = [a.type for a in args if not _all_null(a)]
            result_type = candidates[0] if candidates else DataType.VARCHAR
        out = Column.nulls(result_type, n)
        data, mask = out.data.copy(), np.ones(n, dtype=np.bool_)
        for col in args:
            if col.type != result_type:
                col = col.cast(result_type)
            fill = mask & ~col.null_mask()
            data[fill] = col.data[fill]
            mask[fill] = False
        return Column(result_type, data, mask if mask.any() else None)
    if name == "nullif":
        left, right = args
        eq = _evaluate_compare("=", left, right)
        mask = left.null_mask().copy()
        mask |= eq.data.astype(np.bool_) & ~eq.null_mask()
        return Column(left.type, left.data, mask if mask.any() else None)
    if name == "substr":
        if not 2 <= len(args) <= 3:
            raise ExecutionError("SUBSTR takes 2 or 3 arguments")
        return _string_map(
            args,
            lambda s, start, length=None: s[
                max(int(start) - 1, 0) : (
                    max(int(start) - 1, 0) + int(length)
                    if length is not None
                    else len(s)
                )
            ],
        )
    if name == "replace":
        return _string_map(args, lambda s, old, new: s.replace(old, new))
    if name in ("trim", "ltrim", "rtrim"):
        stripper = {"trim": str.strip, "ltrim": str.lstrip, "rtrim": str.rstrip}[name]
        return _string_map(args, stripper)
    if name in ("year", "month", "day"):
        col = args[0]
        if col.type != DataType.DATE:
            raise ExecutionError(f"{name.upper()} requires a DATE argument")
        attr = name
        data = np.fromiter(
            (
                getattr(days_to_date(int(v)), attr) if not null else 0
                for v, null in zip(col.data, col.null_mask())
            ),
            dtype=np.int32,
            count=len(col),
        )
        return Column(DataType.INTEGER, data, col.mask)
    if name in ("greatest", "least"):
        if len(args) < 2:
            raise ExecutionError(f"{name.upper()} requires at least 2 arguments")
        reducer = np.maximum if name == "greatest" else np.minimum
        result_type = args[0].type
        for col in args[1:]:
            from ..storage import promote

            result_type = promote(result_type, col.type)
        mask = _combine_masks(*args)
        acc = args[0].cast(result_type).data
        for col in args[1:]:
            acc = reducer(acc, col.cast(result_type).data)
        return Column(result_type, acc, mask)
    if name == "sign":
        data = np.sign(args[0].data.astype(np.float64)).astype(np.int32)
        return Column(DataType.INTEGER, data, args[0].mask)
    if name == "power":
        base, exponent = args
        mask = _combine_masks(base, exponent)
        with np.errstate(invalid="ignore", over="ignore"):
            data = np.power(
                base.data.astype(np.float64), exponent.data.astype(np.float64)
            )
        return Column(DataType.DOUBLE, data, mask)
    if name == "ln":
        col = args[0]
        data = col.data.astype(np.float64)
        mask = col.null_mask().copy()
        invalid = data <= 0
        mask |= invalid
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.log(np.where(invalid, 1.0, data))
        return Column(DataType.DOUBLE, out, mask if mask.any() else None)
    if name == "exp":
        with np.errstate(over="ignore"):
            data = np.exp(args[0].data.astype(np.float64))
        return Column(DataType.DOUBLE, data, args[0].mask)
    raise ExecutionError(f"unknown scalar function {name!r}")


def _all_null(column: Column) -> bool:
    return column.mask is not None and bool(column.mask.all())


def _string_map(args: list[Column], func) -> Column:
    """Apply a per-row Python string function; NULL in -> NULL out."""
    first = args[0]
    if first.type != DataType.VARCHAR and not _all_null(first):
        raise ExecutionError("expected a string argument")
    if _all_null(first):
        return Column.nulls(DataType.VARCHAR, len(first))
    mask = _combine_masks(*args)
    n = len(first)
    out = np.empty(n, dtype=object)
    null = mask if mask is not None else np.zeros(n, dtype=np.bool_)
    for i in range(n):
        if null[i]:
            out[i] = None
            continue
        row_args = [col.value(i) for col in args]
        out[i] = func(*row_args)
    return Column(DataType.VARCHAR, out, mask)
