"""Morsel-driven parallel execution (the DORA/Umbra-style layer).

PR 4 collapsed every key-driven operator onto single-threaded numpy
kernels; this module spreads those kernels across a worker pool.  The
unit of work is a **morsel** — a fixed-size contiguous row range of the
input (:data:`MORSEL_ROWS`, Leis et al.'s morsel-driven parallelism):
each kernel splits its arrays into morsels, runs the per-morsel piece on
the shared :class:`ExecPool` (numpy releases the GIL for the sort /
searchsorted / gather / ufunc primitives the kernels are made of), and
combines the partial results deterministically **in morsel order**.

Determinism is the design constraint, not an afterthought: every
parallel primitive here produces *bit-identical* results to its serial
counterpart, for any worker count and any morsel size.

* **Per-partition dictionary merge** — each morsel dictionary-encodes
  its own values (``np.unique``), the local dictionaries are merged into
  one global, value-ordered code space (``np.unique`` over the much
  smaller dictionary concatenation), and each morsel remaps its rows
  into the global space with ``searchsorted``.  The global dictionary is
  exactly what one big ``np.unique`` would have produced, so the codes
  match :meth:`repro.storage.Column.factorize` bit for bit.
* **Parallel stable argsort** — per-morsel stable argsorts merged
  pairwise with the ``searchsorted`` two-run merge (earlier run wins
  ties).  A stable permutation is *unique*, so the result equals
  ``np.argsort(kind="stable")`` exactly — which is what lets grouped
  float SUM/AVG stay bit-identical: the values enter ``np.add.reduceat``
  in exactly the order the serial kernel would have used, instead of
  being re-associated through per-partition partial sums.
* **Partial aggregates merged by group id** — counts are per-morsel
  ``bincount`` partials summed in morsel order (integer addition is
  associative, so this is exact); MIN/MAX partials combine through the
  same ufunc.

Scheduling: :class:`ExecPool` is owned by the :class:`~repro.api.Database`
(``exec_workers``, default the CPU count) and shared by every session,
mirroring a real morsel-driven scheduler's global worker pool.  Kernels
consult :meth:`ParallelContext.active_for` — inputs below
:data:`PARALLEL_MIN_ROWS` (or a 1-worker pool) take the unchanged serial
path, so small queries never pay thread hand-off latency, and
``Database(exec_workers=1)`` *is* the serial engine, preserved as the
oracle for the workers-equivalence fuzz suite.  Tasks submitted by
kernels are always leaves (a morsel task never submits sub-tasks), so
sessions sharing one pool cannot deadlock.

Every morsel execution is timed; :meth:`ExecPool.stats` aggregates
parallel/serial op counts and per-op morsel timings — surfaced by
``Database.parallel_stats()``, profile-report footers and the shell's
``\\workers`` command.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence

import numpy as np

from ..envutil import env_int as _env_int
from ..errors import ExecutionError

#: Rows per morsel: large enough that numpy kernel launch + thread
#: hand-off overhead is amortized, small enough that a 1M-row input
#: yields work for every worker of a desktop-class pool.
MORSEL_ROWS = _env_int("REPRO_MORSEL_ROWS", 65_536)

#: Inputs below this many rows always run the serial kernels — the
#: pool's submit/result latency would exceed the kernel time itself.
PARALLEL_MIN_ROWS = _env_int("REPRO_PARALLEL_MIN_ROWS", 131_072)


def resolve_exec_workers(workers) -> int:
    """Effective kernel worker count: explicit > ``REPRO_EXEC_WORKERS`` >
    CPU count (``os.sched_getaffinity`` where available)."""
    if workers is None or workers == "auto":
        env = _env_int("REPRO_EXEC_WORKERS", 0)
        if env > 0:
            return env
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux fallback
            return os.cpu_count() or 1
    try:
        return max(1, int(workers))
    except (TypeError, ValueError):
        raise ExecutionError(
            f"exec_workers must be a positive integer or 'auto', got {workers!r}"
        ) from None


def morsel_spans(n_rows: int, morsel_rows: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` row ranges covering ``[0, n_rows)``."""
    size = max(1, int(morsel_rows))
    return [(start, min(start + size, n_rows)) for start in range(0, n_rows, size)]


class ParallelStats:
    """Database-wide morsel-execution counters (thread-safe).

    ``parallel_ops`` / ``serial_ops`` count *per-primitive* dispatch
    decisions — one kernel invocation may make several (codify,
    first-occurrence, argsort, probe, emit): a primitive that fanned a
    morsel batch onto the pool vs one that chose the serial path
    because its input was below :data:`PARALLEL_MIN_ROWS` (a 1-worker
    pool counts nothing: kernels never see a context).  ``morsels`` and
    the per-op timing map count the individual pooled tasks.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.parallel_ops: dict[str, int] = {}
        self.serial_ops: dict[str, int] = {}
        self.morsels: dict[str, int] = {}
        self.morsel_seconds: dict[str, float] = {}
        self.morsel_max_seconds: dict[str, float] = {}

    def note_op(self, op: str, parallel: bool) -> None:
        with self._mutex:
            bucket = self.parallel_ops if parallel else self.serial_ops
            bucket[op] = bucket.get(op, 0) + 1

    def note_morsels(self, op: str, timings: Sequence[float]) -> None:
        if not timings:
            return
        with self._mutex:
            self.morsels[op] = self.morsels.get(op, 0) + len(timings)
            self.morsel_seconds[op] = self.morsel_seconds.get(op, 0.0) + sum(
                timings
            )
            self.morsel_max_seconds[op] = max(
                self.morsel_max_seconds.get(op, 0.0), max(timings)
            )

    def snapshot(self) -> dict:
        with self._mutex:
            morsel_total = sum(self.morsels.values())
            seconds_total = sum(self.morsel_seconds.values())
            return {
                "parallel_ops": dict(self.parallel_ops),
                "serial_ops": dict(self.serial_ops),
                "parallel_op_total": sum(self.parallel_ops.values()),
                "serial_op_total": sum(self.serial_ops.values()),
                "morsels": dict(self.morsels),
                "morsel_total": morsel_total,
                "morsel_seconds": {
                    op: round(s, 6) for op, s in self.morsel_seconds.items()
                },
                "morsel_seconds_total": round(seconds_total, 6),
                "morsel_max_ms": {
                    op: round(s * 1000, 3)
                    for op, s in self.morsel_max_seconds.items()
                },
            }


class ExecPool:
    """The shared kernel worker pool of one :class:`~repro.api.Database`.

    The :class:`~concurrent.futures.ThreadPoolExecutor` is created
    lazily on the first parallel kernel (a 1-worker database never
    spawns a thread) and shared by every session — the morsel scheduler
    analogue of one global worker pool per server process.
    """

    def __init__(
        self,
        workers: int | str | None = "auto",
        *,
        morsel_rows: Optional[int] = None,
        min_rows: Optional[int] = None,
    ) -> None:
        self.workers = resolve_exec_workers(workers)
        self.morsel_rows = MORSEL_ROWS if morsel_rows is None else max(1, int(morsel_rows))
        self.min_rows = PARALLEL_MIN_ROWS if min_rows is None else max(0, int(min_rows))
        self.stats = ParallelStats()
        self._mutex = threading.Lock()
        self._closed = False
        self._executor: Optional[ThreadPoolExecutor] = None

    def executor(self) -> Optional[ThreadPoolExecutor]:
        """The lazily-created executor, or None once the pool is shut
        down — statements still holding a retired pool (a concurrent
        ``set_exec_workers``) then run their remaining morsels inline
        instead of resurrecting stray threads on the orphan."""
        with self._mutex:
            if self._executor is None and not self._closed:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-exec",
                )
            return self._executor

    def shutdown(self, wait: bool = False) -> None:
        """Retire the pool.  ``wait=False`` (the ``set_exec_workers``
        resize path) lets in-flight morsels finish on their threads;
        ``wait=True`` (the :meth:`~repro.api.Database.close` teardown
        path) joins every worker thread so nothing dangles at
        interpreter exit."""
        with self._mutex:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def context(self) -> Optional["ParallelContext"]:
        """The per-statement handle kernels receive (None when the pool
        cannot parallelize anything, so serial call sites stay free)."""
        if self.workers <= 1:
            return None
        return ParallelContext(self)


class ParallelContext:
    """What kernels see: the morsel splitter + pooled map of one pool.

    A tiny façade so kernels never touch the executor directly; it is
    also the duck-typed ``runner`` protocol of
    :meth:`repro.storage.Column.factorize` (``active_for`` / ``spans`` /
    ``map``), which keeps :mod:`repro.storage` free of any dependency on
    this module.
    """

    __slots__ = ("pool",)

    def __init__(self, pool: ExecPool) -> None:
        self.pool = pool

    @property
    def workers(self) -> int:
        return self.pool.workers

    def active_for(self, n_rows: int) -> bool:
        """Whether an ``n_rows`` input is worth splitting into morsels."""
        return (
            self.pool.workers > 1
            and n_rows >= self.pool.min_rows
            and n_rows > self.pool.morsel_rows
        )

    def spans(self, n_rows: int) -> list[tuple[int, int]]:
        return morsel_spans(n_rows, self.pool.morsel_rows)

    def note_serial(self, op: str) -> None:
        """Record that a kernel primitive chose the serial path (input
        below the threshold) despite a live multi-worker pool."""
        self.pool.stats.note_op(op, parallel=False)

    def map(self, op: str, fn: Callable, items: Sequence) -> list:
        """Run ``fn(item)`` for every item on the pool; results in input
        order.  Each task is timed into the per-op morsel stats.  A
        single-item batch (or a retired pool, see
        :meth:`ExecPool.executor`) runs inline and counts nothing —
        ``serial_ops`` tracks whole primitives that *chose* the serial
        path, not degenerate dispatches inside a parallel one."""
        executor = self.pool.executor() if len(items) > 1 else None
        if executor is None:
            return [fn(item) for item in items]
        timings = [0.0] * len(items)

        def timed(index: int, item):
            start = time.perf_counter()
            result = fn(item)
            timings[index] = time.perf_counter() - start
            return result

        futures = []
        try:
            for index, item in enumerate(items):
                futures.append(executor.submit(timed, index, item))
        except RuntimeError:
            # the pool was retired mid-submit (a concurrent
            # set_exec_workers): already-queued futures still drain on
            # the old workers; run the rest inline, count nothing
            head = [future.result() for future in futures]
            return head + [fn(item) for item in items[len(head):]]
        results = [future.result() for future in futures]
        self.pool.stats.note_op(op, parallel=True)
        self.pool.stats.note_morsels(op, timings)
        return results


def map_tasks(pool: "ExecPool | None", op: str, fn: Callable, items) -> list:
    """Run ``fn(item)`` for every item on ``pool`` (results in input
    order), inline when the pool cannot parallelize.  The convenience
    entry for callers holding a bare :class:`ExecPool` (COPY's CSV
    chunk parsing) rather than a per-statement context."""
    items = list(items)
    ctx = pool.context() if pool is not None else None
    if ctx is None or len(items) <= 1:
        return [fn(item) for item in items]
    return ctx.map(op, fn, items)


# ---------------------------------------------------------------------------
# deterministic parallel primitives
# ---------------------------------------------------------------------------
def parallel_unique_inverse(
    values: np.ndarray, par: ParallelContext, op: str = "codify"
) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(values, return_inverse=True)`` with per-partition
    dictionaries merged into one global dictionary — bit-identical to
    the serial call (the merged dictionary is the same sorted unique
    set, and ``searchsorted`` against it reproduces the inverse).
    Delegates to the single shared merge implementation next to
    ``Column.factorize`` (one copy to keep bit-identical)."""
    from ..storage.column import unique_inverse_morsels

    return unique_inverse_morsels(values, par, op=op)


def _table_radix_bound(par: ParallelContext) -> int:
    """Largest per-morsel scatter/bincount table the radix-keyed fast
    paths may allocate: every morsel holds one radix-sized table until
    the merge, so bounding radix by the morsel size caps the transient
    memory of the whole batch at ~8 bytes per input row."""
    return max(par.pool.morsel_rows, 1024)


def parallel_bincount(
    ids: np.ndarray,
    n_bins: int,
    par: ParallelContext,
    *,
    valid: Optional[np.ndarray] = None,
    op: str = "aggregate",
) -> np.ndarray:
    """Per-morsel ``bincount`` partials summed in morsel order (exact:
    integer addition is associative).  High-cardinality id spaces run
    one serial ``bincount`` instead — O(morsels x n_bins) partials
    would dwarf the input itself."""
    if n_bins > _table_radix_bound(par):
        chunk = ids if valid is None else ids[valid]
        return np.bincount(chunk, minlength=n_bins).astype(np.int64)

    def count(span: tuple[int, int]) -> np.ndarray:
        start, stop = span
        chunk = ids[start:stop]
        if valid is not None:
            chunk = chunk[valid[start:stop]]
        return np.bincount(chunk, minlength=n_bins)

    partials = par.map(op, count, par.spans(len(ids)))
    if not partials:
        return np.zeros(n_bins, dtype=np.int64)
    total = partials[0].astype(np.int64, copy=True)
    for partial in partials[1:]:
        total += partial
    return total


def _merge_runs(
    a: tuple[np.ndarray, np.ndarray], b: tuple[np.ndarray, np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Stable two-run merge: ``a`` precedes ``b`` on equal keys, so the
    merged run is exactly what one stable sort over both would give."""
    keys_a, rows_a = a
    keys_b, rows_b = b
    pos_a = np.arange(len(keys_a), dtype=np.int64) + np.searchsorted(
        keys_b, keys_a, side="left"
    )
    pos_b = np.arange(len(keys_b), dtype=np.int64) + np.searchsorted(
        keys_a, keys_b, side="right"
    )
    keys = np.empty(len(keys_a) + len(keys_b), dtype=keys_a.dtype)
    rows = np.empty(len(keys), dtype=np.int64)
    keys[pos_a] = keys_a
    keys[pos_b] = keys_b
    rows[pos_a] = rows_a
    rows[pos_b] = rows_b
    return keys, rows


def parallel_stable_argsort(
    keys: np.ndarray,
    par: ParallelContext,
    op: str = "argsort",
    radix: Optional[int] = None,
) -> np.ndarray:
    """``np.argsort(keys, kind="stable")``, morsel-parallel.

    Per-morsel stable argsorts are merged pairwise (tree-shaped, each
    level's merges run concurrently).  The stable permutation of an
    array is unique, so the result is bit-identical to the serial sort —
    the property the grouped-aggregation kernel leans on to keep float
    ``reduceat`` totals reproducible across worker counts.

    When the keys are dense ids with a known small ``radix`` (group
    ids, join codes) the merge tree is replaced by one counting-sort
    placement pass: per-morsel bincounts give every (morsel, id) pair
    its output offset, and each morsel scatters its locally-sorted rows
    straight into the final permutation — the same unique stable order
    (ids ascending; within an id, morsels ascend and rows within a
    morsel ascend) at O(n) merge cost instead of O(n log P).
    """
    spans = par.spans(len(keys))
    if len(spans) <= 1:
        return np.argsort(keys, kind="stable")
    if radix is not None and radix <= _table_radix_bound(par):
        return _counting_argsort(keys, par, op, radix, spans)

    def local(span: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        start, stop = span
        chunk = keys[start:stop]
        order = np.argsort(chunk, kind="stable")
        return chunk[order], order + start

    runs = par.map(op, local, spans)
    while len(runs) > 1:
        pairs = [
            (runs[index], runs[index + 1]) for index in range(0, len(runs) - 1, 2)
        ]
        merged = par.map(op, lambda pair: _merge_runs(*pair), pairs)
        if len(runs) % 2:
            merged.append(runs[-1])
        runs = merged
    return runs[0][1]


def _counting_argsort(
    keys: np.ndarray,
    par: ParallelContext,
    op: str,
    radix: int,
    spans: list[tuple[int, int]],
) -> np.ndarray:
    """The dense-id fast path of :func:`parallel_stable_argsort`."""

    def local(span: tuple[int, int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        start, stop = span
        chunk = keys[start:stop]
        order = np.argsort(chunk, kind="stable")
        return np.bincount(chunk, minlength=radix), chunk[order], order + start

    locals_ = par.map(op, local, spans)
    total = np.zeros(radix, dtype=np.int64)
    for counts, _, _ in locals_:
        total += counts
    starts = np.concatenate(([0], np.cumsum(total)[:-1]))
    out = np.empty(len(keys), dtype=np.int64)
    # base[g] walks forward morsel by morsel: each morsel's rows of
    # group g land right after every earlier morsel's
    base = starts

    def place(
        task: tuple[np.ndarray, tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> None:
        morsel_base, (counts, sorted_ids, sorted_rows) = task
        local_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        targets = (
            morsel_base[sorted_ids]
            + np.arange(len(sorted_ids), dtype=np.int64)
            - local_starts[sorted_ids]
        )
        out[targets] = sorted_rows

    tasks = []
    for counts, sorted_ids, sorted_rows in locals_:
        tasks.append((base, (counts, sorted_ids, sorted_rows)))
        base = base + counts
    par.map(op, place, tasks)
    return out


def parallel_take(
    values: np.ndarray, indices: np.ndarray, par: ParallelContext, op: str = "gather"
) -> np.ndarray:
    """``values[indices]`` with the gather split into index morsels."""
    spans = par.spans(len(indices))
    out = np.empty(len(indices), dtype=values.dtype)

    def gather(span: tuple[int, int]) -> None:
        start, stop = span
        np.take(values, indices[start:stop], out=out[start:stop])

    par.map(op, gather, spans)
    return out


def parallel_first_rows(
    ids: np.ndarray,
    par: ParallelContext,
    op: str = "distinct",
    radix: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(unique ids ascending, first row of each)`` — the merged
    first-occurrence map of the per-morsel dictionaries.

    Each morsel reports its local first-occurrence map; the merge keeps
    the *minimum* first row per id, which is the global first occurrence
    regardless of how rows were partitioned.  With a known small
    ``radix`` the local maps are radix-sized scatter tables (O(morsel)
    each, mirroring the serial kernel's reversed-scatter trick) merged
    by elementwise minimum; otherwise each morsel sorts
    (``np.unique``).  Both merges produce the identical map.
    """
    n_rows = len(ids)
    spans = par.spans(n_rows)
    if radix is not None and radix <= _table_radix_bound(par):

        def table(span: tuple[int, int]) -> np.ndarray:
            start, stop = span
            first = np.full(radix, n_rows, dtype=np.int64)
            first[ids[stop - 1 : (start - 1 if start else None) : -1]] = (
                np.arange(stop - 1, start - 1, -1, dtype=np.int64)
            )
            return first

        tables = par.map(op, table, spans)
        merged = tables[0]
        for other in tables[1:]:
            np.minimum(merged, other, out=merged)
        present = np.flatnonzero(merged < n_rows)
        return present, merged[present]

    def local(span: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        start, stop = span
        uniques, first = np.unique(ids[start:stop], return_index=True)
        return uniques, first + start

    locals_ = par.map(op, local, spans)
    all_ids = np.concatenate([u for u, _ in locals_])
    all_first = np.concatenate([f for _, f in locals_])
    # sort by (id, first row); the first entry per id is the global first
    order = np.lexsort((all_first, all_ids))
    all_ids = all_ids[order]
    all_first = all_first[order]
    keep = np.ones(len(all_ids), dtype=np.bool_)
    keep[1:] = all_ids[1:] != all_ids[:-1]
    return all_ids[keep], all_first[keep]


def parallel_membership(
    probe_ids: np.ndarray,
    key_ids: np.ndarray,
    radix: int,
    small_radix: bool,
    par: ParallelContext,
    op: str = "setop",
) -> np.ndarray:
    """``probe_ids ∈ key_ids`` with the probe side split into morsels
    (the key side is prepared once: a scatter table for small key
    spaces, a sorted unique array + ``searchsorted`` probe otherwise)."""
    out = np.empty(len(probe_ids), dtype=np.bool_)
    if small_radix:
        table = np.zeros(radix, dtype=np.bool_)
        table[key_ids] = True

        def probe(span: tuple[int, int]) -> None:
            start, stop = span
            np.take(table, probe_ids[start:stop], out=out[start:stop])

    else:
        sorted_keys = np.unique(key_ids)

        def probe(span: tuple[int, int]) -> None:
            start, stop = span
            chunk = probe_ids[start:stop]
            slots = np.searchsorted(sorted_keys, chunk)
            slots[slots == len(sorted_keys)] = 0
            found = sorted_keys[slots] == chunk if len(sorted_keys) else (
                np.zeros(len(chunk), dtype=np.bool_)
            )
            out[start:stop] = found

    par.map(op, probe, par.spans(len(probe_ids)))
    return out
