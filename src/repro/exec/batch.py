"""Materialized intermediate results.

A :class:`Batch` is the executor's unit of data flow: an ordered set of
physical :class:`~repro.storage.Column` vectors labelled by the logical
:class:`~repro.plan.logical.PlanColumn` ids of the operator that produced
it.  Every physical operator consumes whole batches and produces whole
batches — the fully-materialized, column-at-a-time model of MonetDB that
the paper's nested tables rely on (Section 3.3).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import ExecutionError
from ..plan.logical import PlanColumn
from ..storage import Column


class Batch:
    """Columns + schema with col_id -> position lookup."""

    __slots__ = ("schema", "columns", "_by_id")

    def __init__(self, schema: tuple[PlanColumn, ...], columns: list[Column]):
        if len(schema) != len(columns):
            raise ExecutionError(
                f"batch schema width {len(schema)} != column count {len(columns)}"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged batch: column lengths {sorted(lengths)}")
        self.schema = schema
        self.columns = columns
        self._by_id = {col.col_id: i for i, col in enumerate(schema)}

    # ------------------------------------------------------------------
    @staticmethod
    def empty(schema: tuple[PlanColumn, ...]) -> "Batch":
        from ..storage import DataType

        return Batch(
            schema,
            [Column.empty(c.type or DataType.VARCHAR) for c in schema],
        )

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else getattr(self, "_rows", 0)

    @property
    def num_rows(self) -> int:
        if self.columns:
            return len(self.columns[0])
        return getattr(self, "_rows", 0)

    def column_by_id(self, col_id: int) -> Column:
        try:
            return self.columns[self._by_id[col_id]]
        except KeyError:
            raise ExecutionError(f"column id {col_id} not present in batch") from None

    def has_column(self, col_id: int) -> bool:
        return col_id in self._by_id

    # ------------------------------------------------------------------
    def filter(self, keep: np.ndarray) -> "Batch":
        return Batch(self.schema, [c.filter(keep) for c in self.columns])

    def take(self, indices: np.ndarray) -> "Batch":
        return Batch(self.schema, [c.take(indices) for c in self.columns])

    def append_columns(
        self, schema: Iterable[PlanColumn], columns: Iterable[Column]
    ) -> "Batch":
        return Batch(self.schema + tuple(schema), self.columns + list(columns))

    def relabel(self, schema: tuple[PlanColumn, ...]) -> "Batch":
        """Same data under new PlanColumn ids (CTE refs, set ops)."""
        if len(schema) != len(self.schema):
            raise ExecutionError("relabel arity mismatch")
        return Batch(schema, self.columns)

    def to_rows(self) -> list[tuple]:
        return [
            tuple(col.value(i) for col in self.columns) for i in range(self.num_rows)
        ]


class ZeroColumnBatch(Batch):
    """A batch with no columns but a definite row count.

    Needed for FROM-less selects (one row, zero columns) and for
    ``SELECT 1 FROM t``-style inputs after projection pruning.
    """

    def __init__(self, rows: int):
        super().__init__((), [])
        self._rows = rows

    __slots__ = ("_rows",)

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self._rows

    @property
    def num_rows(self) -> int:
        return self._rows

    def filter(self, keep: np.ndarray) -> "Batch":
        return ZeroColumnBatch(int(np.count_nonzero(keep)))

    def take(self, indices: np.ndarray) -> "Batch":
        return ZeroColumnBatch(len(indices))
