"""Physical execution: batches, vectorized expressions, operators and the
graph select / graph join runtime glue."""

from .batch import Batch, ZeroColumnBatch
from .evaluator import EvalContext, evaluate
from .operators import ExecContext, execute_plan, register_operator

__all__ = [
    "Batch",
    "ZeroColumnBatch",
    "EvalContext",
    "evaluate",
    "ExecContext",
    "execute_plan",
    "register_operator",
]
