"""Physical execution: batches, vectorized expressions, the factorized-key
operator kernels, operators and the graph select / graph join runtime
glue."""

from .batch import Batch, ZeroColumnBatch
from .evaluator import EvalContext, evaluate
from .kernels import KernelCounters, KernelFallback
from .operators import ExecContext, execute_plan, register_operator

__all__ = [
    "Batch",
    "ZeroColumnBatch",
    "EvalContext",
    "evaluate",
    "ExecContext",
    "execute_plan",
    "register_operator",
    "KernelCounters",
    "KernelFallback",
]
