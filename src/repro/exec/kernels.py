"""Vectorized execution kernels: factorized keys for key-driven operators.

The executor's full-materialization model (every operator produces whole
:class:`~repro.exec.batch.Batch` columns) makes its key-driven operators
— DISTINCT, GROUP BY, multi-key hash joins, UNION/INTERSECT/EXCEPT,
ORDER BY, recursive-CTE dedup — natural targets for column-at-a-time
kernels, yet until this module they all dropped to per-row Python
tuples.  The core primitive here is **key codification**: each key
column is dictionary-encoded into dense ``int64`` codes
(:meth:`repro.storage.Column.factorize`, i.e. ``np.unique`` with SQL
NULL handling), and a multi-column key is combined into one id per row
by mixed-radix arithmetic.  Everything else reduces to integer kernels:

* DISTINCT / dedup    — first-occurrence-of-id masks (``np.unique``);
* GROUP BY            — dense group ids + ``bincount``/``reduceat``;
* multi-key equi-join — sort + ``searchsorted`` over shared-dictionary
  codes (generalizing the single-int-key sorted join of the PR-2
  executor to any number of columns and any key type);
* INTERSECT / EXCEPT  — ``np.isin`` over jointly-codified row ids;
* ORDER BY            — null-aware ``np.lexsort`` over ordered codes.

Key semantics mirror the row-at-a-time paths exactly: NULL keys group
together (Python ``None == None``) but never match in joins; float NaN
keys are each their own key (the row paths materialize a fresh Python
``float`` per row, and ``nan != nan``), so they neither group nor join.

Every kernel raises :class:`KernelFallback` instead of guessing when a
column cannot be codified (unhashable nested-table payloads, untyped
parameter columns in mixed-type positions); the executor then runs the
original row-at-a-time path and counts the fallback, *by reason* —
:data:`REASON_UNCODIFIABLE` (the key/value type has no code space),
:data:`REASON_NO_KERNEL` (the operation itself has no kernel, e.g.
DISTINCT aggregates) or :data:`REASON_NAN_ORDER` (NaN keys have no
total order, only the row comparator reproduces the oracle) — so a
parallel-vs-serial perf regression can be traced to the fallback class
that caused it.  The ``Database(vectorized=False)`` knob disables the
kernels wholesale, preserving the row paths as the correctness oracle
for the on/off fuzz tests and the ``BENCH_exec.json`` baselines.

Morsel-driven parallelism: every kernel accepts an optional ``par``
(:class:`~repro.exec.parallel.ParallelContext`) and, for inputs large
enough to clear :data:`~repro.exec.parallel.PARALLEL_MIN_ROWS`, runs
its per-row passes morsel-parallel on the database's shared worker pool
— per-partition dictionary merge for codification, partial aggregates
merged by group id, per-morsel probe/emit for joins and membership for
setops.  The combines are deterministic in morsel order and the sort
permutations are the (unique) stable ones, so results are
**bit-identical** to the serial kernels for any worker count; a
``None``/inactive ``par`` takes exactly the PR-4 serial code — which is
why ``Database(exec_workers=1)`` stays the oracle for the
workers-equivalence suite.

Known (documented) deviations from the Python paths, all confined to
degenerate or last-ULP territory: integer SUM accumulates in ``int64``
(Python ints are unbounded), float SUM/AVG may differ from the
sequential Python sum in the final ULP because ``reduceat``
reassociates additions (pairwise summation — generally *more*
accurate), and equi-joins comparing huge integers (>2^53) against
DOUBLE keys go through float promotion.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence

import numpy as np

from ..storage import Column, DataType, promote
from ..storage.encoding import DictEncoding, factorize_counters
from . import parallel as mp
from .parallel import ParallelContext

#: Fallback reasons (the profile-report breakdown categories).
REASON_UNCODIFIABLE = "uncodifiable"
REASON_NO_KERNEL = "no-kernel"
REASON_NAN_ORDER = "nan-order"


class KernelFallback(Exception):
    """A kernel cannot handle these columns; run the row-at-a-time path.

    ``reason`` classifies the cause for the per-reason fallback counters
    (:data:`REASON_UNCODIFIABLE` / :data:`REASON_NO_KERNEL` /
    :data:`REASON_NAN_ORDER`).
    """

    def __init__(self, message: str, reason: str = REASON_UNCODIFIABLE):
        super().__init__(message)
        self.reason = reason


class KernelCounters:
    """Database-wide hit/fallback counters per kernel operation.

    Shared by every statement of one :class:`~repro.api.Database` (like
    the plan-cache counters); rendered by the profiler report and the
    shell's ``\\kernels`` command.  Fallbacks are additionally broken
    down by :class:`KernelFallback` reason, so a regression report can
    distinguish "uncodifiable key type" from "kernel-less aggregate"
    from "NaN sort key".  Increments are coarse — one per operator
    execution, never per row — so a lock keeps them exact.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.hits: dict[str, int] = {}
        self.fallbacks: dict[str, int] = {}
        self.fallback_reasons: dict[str, dict[str, int]] = {}

    def hit(self, op: str) -> None:
        with self._mutex:
            self.hits[op] = self.hits.get(op, 0) + 1

    def fallback(self, op: str, reason: Optional[str] = None) -> None:
        with self._mutex:
            self.fallbacks[op] = self.fallbacks.get(op, 0) + 1
            key = reason or REASON_UNCODIFIABLE
            per_op = self.fallback_reasons.setdefault(op, {})
            per_op[key] = per_op.get(key, 0) + 1

    def snapshot(self) -> dict:
        with self._mutex:
            return {
                "hits": dict(self.hits),
                "fallbacks": dict(self.fallbacks),
                "fallback_reasons": {
                    op: dict(reasons)
                    for op, reasons in self.fallback_reasons.items()
                },
                "hit_total": sum(self.hits.values()),
                "fallback_total": sum(self.fallbacks.values()),
            }


class ArgsortCache:
    """Per-thread memo of stable argsorts keyed by array identity.

    One instance is shared by all aggregates of one GROUP BY so
    SUM/MIN/MAX over the same group-id array sort it once.  The PR-4
    version was a plain dict threaded through the kernel calls; today
    every lookup still happens on the statement thread (pool tasks are
    leaf closures that never see the cache), but entries live in
    ``threading.local`` storage as hardening for the scheduled next
    step — evaluating the aggregates of one GROUP BY concurrently on
    the pool — so that change cannot silently corrupt the memo.
    Entries keep the keyed array alive so the ``id()`` key cannot be
    recycled.
    """

    __slots__ = ("_local",)

    def __init__(self) -> None:
        self._local = threading.local()

    def lookup(self, keys: np.ndarray) -> Optional[np.ndarray]:
        entries = getattr(self._local, "entries", None)
        if entries is None:
            return None
        cached = entries.get(id(keys))
        if cached is not None and cached[0] is keys:
            return cached[1]
        return None

    def store(self, keys: np.ndarray, order: np.ndarray) -> None:
        entries = getattr(self._local, "entries", None)
        if entries is None:
            entries = self._local.entries = {}
        entries[id(keys)] = (keys, order)


# ---------------------------------------------------------------------------
# key codification
# ---------------------------------------------------------------------------
#: Headroom bound for the mixed-radix combine: before multiplying the
#: accumulated radix by the next column's cardinality would approach
#: int64 range, the intermediate ids are re-densified through np.unique.
_MAX_RADIX = np.iinfo(np.int64).max // 4


def _use_par(par: Optional[ParallelContext], n_rows: int, op: str) -> bool:
    """One primitive's parallel-vs-serial decision, recorded in the
    pool stats when a live context declines (below-threshold input)."""
    if par is None:
        return False
    if par.active_for(n_rows):
        return True
    par.note_serial(op)
    return False


def _factorize(
    column: Column,
    *,
    nan_distinct: bool = True,
    par: Optional[ParallelContext] = None,
):
    try:
        return column.factorize(nan_distinct=nan_distinct, runner=par)
    except TypeError as exc:
        raise KernelFallback(
            f"cannot factorize key column: {exc}", REASON_UNCODIFIABLE
        ) from None


def _codify(
    columns: Sequence[Column],
    n_rows: int,
    *,
    nan_distinct: bool = True,
    par: Optional[ParallelContext] = None,
) -> tuple[np.ndarray, int]:
    """``(ids, radix)``: one ``int64`` id per row plus the (exclusive)
    upper bound on the id values — the mixed-radix key-space size, which
    downstream kernels use to pick scatter-table strategies over
    sort-based ones when the space is small."""
    if not columns:
        return np.zeros(n_rows, dtype=np.int64), 1
    use_par = _use_par(par, n_rows, "codify")
    codes, radix, _ = _factorize(columns[0], nan_distinct=nan_distinct, par=par)
    ids = codes
    for column in columns[1:]:
        codes, cardinality, _ = _factorize(
            column, nan_distinct=nan_distinct, par=par
        )
        if radix > _MAX_RADIX // cardinality:
            # dictionary overflow: densify the intermediate ids back to
            # a compact code space before the next radix multiply
            if use_par:
                uniques, ids = mp.parallel_unique_inverse(ids, par, op="codify")
            else:
                uniques, inverse = np.unique(ids, return_inverse=True)
                ids = inverse.reshape(-1).astype(np.int64, copy=False)
            radix = max(len(uniques), 1)
            if radix > _MAX_RADIX // cardinality:  # pragma: no cover - 2^62 keys
                raise KernelFallback(
                    "key space exceeds int64 after densify", REASON_UNCODIFIABLE
                )
        if use_par:
            combined = np.empty(n_rows, dtype=np.int64)
            local_codes = codes

            def combine(span: tuple[int, int]) -> None:
                start, stop = span
                np.multiply(
                    ids[start:stop], cardinality, out=combined[start:stop]
                )
                combined[start:stop] += local_codes[start:stop]

            par.map("codify", combine, par.spans(n_rows))
            ids = combined
        else:
            ids = ids * cardinality + codes
        radix *= cardinality
    return ids, radix


def codify(
    columns: Sequence[Column],
    n_rows: int,
    *,
    nan_distinct: bool = True,
    par: Optional[ParallelContext] = None,
) -> np.ndarray:
    """One ``int64`` id per row over the given key columns.

    Two rows get equal ids iff they are equal as keys (NULLs equal,
    NaNs distinct under ``nan_distinct``).  Ids are *not* dense — use
    :func:`group_ids` when dense, first-occurrence-ordered ids are
    needed.  Zero key columns put every row in one group.
    """
    return _codify(columns, n_rows, nan_distinct=nan_distinct, par=par)[0]


def _small_radix(radix: int, n_rows: int) -> bool:
    """Whether a radix-sized scatter table is cheaper than a sort."""
    return radix <= max(4 * n_rows, 1024)


def _first_scatter_table(ids: np.ndarray, radix: int, n_rows: int) -> np.ndarray:
    """Radix-sized table mapping id -> its first row (``n_rows`` for
    absent ids).  Reversed scatter: numpy fancy assignment keeps the
    last write, so writing positions back-to-front leaves each id's
    first row."""
    first = np.full(radix, n_rows, dtype=np.int64)
    first[ids[::-1]] = np.arange(n_rows - 1, -1, -1, dtype=np.int64)
    return first


def _first_rows_of(
    ids: np.ndarray,
    radix: int,
    n_rows: int,
    par: Optional[ParallelContext] = None,
    op: str = "distinct",
) -> np.ndarray:
    """Row index of the first occurrence of every distinct id (in
    ascending id order for the sort/morsel paths, unspecified order
    otherwise — callers treat it as a set or sort it)."""
    if _use_par(par, n_rows, op):
        return mp.parallel_first_rows(ids, par, op=op, radix=radix)[1]
    if _small_radix(radix, n_rows):
        first = _first_scatter_table(ids, radix, n_rows)
        return first[first < n_rows]
    _, first = np.unique(ids, return_index=True)
    return first


def group_ids(
    columns: Sequence[Column],
    n_rows: int,
    par: Optional[ParallelContext] = None,
) -> tuple[np.ndarray, int, np.ndarray]:
    """Dense group ids in first-occurrence order.

    Returns ``(ids, n_groups, first_rows)``: ``ids[i]`` is the group of
    row ``i``, groups are numbered by first appearance (matching the
    insertion-ordered dict of the row-at-a-time GROUP BY), and
    ``first_rows[g]`` is the representative (first) row of group ``g``.
    """
    raw, radix = _codify(columns, n_rows, par=par)
    if _use_par(par, n_rows, "group_by"):
        # merged per-morsel first-occurrence maps give (unique raw ids
        # ascending, global first row each); rank by first row = the
        # first-appearance numbering of the serial paths
        unique_ids, first_rows = mp.parallel_first_rows(
            raw, par, op="group_by", radix=radix
        )
        order = np.argsort(first_rows, kind="stable")
        n_groups = len(unique_ids)
        out = np.empty(n_rows, dtype=np.int64)
        if _small_radix(radix, n_rows):
            lookup = np.empty(radix, dtype=np.int64)
            lookup[unique_ids[order]] = np.arange(n_groups, dtype=np.int64)

            def remap(span: tuple[int, int]) -> None:
                start, stop = span
                np.take(lookup, raw[start:stop], out=out[start:stop])

        else:
            remap_table = np.empty(n_groups, dtype=np.int64)
            remap_table[order] = np.arange(n_groups, dtype=np.int64)

            def remap(span: tuple[int, int]) -> None:
                start, stop = span
                out[start:stop] = remap_table[
                    np.searchsorted(unique_ids, raw[start:stop])
                ]

        par.map("group_by", remap, par.spans(n_rows))
        return out, n_groups, first_rows[order]
    if n_rows and _small_radix(radix, n_rows):
        first = _first_scatter_table(raw, radix, n_rows)
        present = np.flatnonzero(first < n_rows)  # distinct ids, id order
        first_rows = first[present]
        order = np.argsort(first_rows, kind="stable")  # first-appearance rank
        lookup = np.empty(radix, dtype=np.int64)
        lookup[present[order]] = np.arange(len(present), dtype=np.int64)
        return lookup[raw], len(present), first_rows[order]
    uniques, first, inverse = np.unique(
        raw, return_index=True, return_inverse=True
    )
    order = np.argsort(first, kind="stable")
    remap = np.empty(len(uniques), dtype=np.int64)
    remap[order] = np.arange(len(uniques), dtype=np.int64)
    return remap[inverse.reshape(-1)], len(uniques), np.sort(first)


def distinct_mask(
    columns: Sequence[Column],
    n_rows: int,
    par: Optional[ParallelContext] = None,
) -> np.ndarray:
    """Boolean keep-mask selecting the first occurrence of every key."""
    keep = np.zeros(n_rows, dtype=np.bool_)
    if n_rows:
        ids, radix = _codify(columns, n_rows, par=par)
        keep[_first_rows_of(ids, radix, n_rows, par)] = True
    return keep


# ---------------------------------------------------------------------------
# shared dictionaries across two inputs (setops, dedup-against, joins)
# ---------------------------------------------------------------------------
def _aligned_pair(left: Column, right: Column) -> tuple[Column, Column]:
    """Cast a cross-input key-column pair onto one physical representation
    so a shared dictionary can encode both sides consistently."""
    if left.type == right.type:
        return left, right
    if left.type is None or right.type is None:
        # untyped (parameter-derived) columns: only a dtype-identical
        # pairing is safely comparable without the SQL promotion rules;
        # relabel the untyped side so Column.concat accepts the pair
        if left.data.dtype == right.data.dtype and left.data.dtype != np.dtype(
            object
        ):
            if left.type is None:
                left = Column(right.type, left.data, left.mask)
            else:
                right = Column(left.type, right.data, right.mask)
            return left, right
        raise KernelFallback(
            "untyped key column in mixed-type position", REASON_UNCODIFIABLE
        )
    try:
        target = promote(left.type, right.type)
    except Exception:
        raise KernelFallback(
            f"no common key type for {left.type} and {right.type}",
            REASON_UNCODIFIABLE,
        ) from None
    return left.cast(target), right.cast(target)


def _shared_dict_codes(
    left: Column, right: Column
) -> "tuple[np.ndarray, np.ndarray, int] | None":
    """Resting-code fast path: when both sides of a key pair rest in
    dictionary encodings over the *same* dictionary, their stored codes
    are already a shared code space (value-ranked, NULL last) — the
    concat + re-factorize of the general path is skipped entirely.

    Only id *equality* matters to the downstream kernels (joins match,
    setops/dedup test membership), which the shared dictionary gives by
    construction; NULL rows on both sides carry the reserved last code,
    matching the concat path's NULL semantics.  Dict-encoded columns
    never contain NaN, so ``nan_distinct`` cannot bite here.
    """
    enc_l, enc_r = left.encoding, right.encoding
    if not (isinstance(enc_l, DictEncoding) and isinstance(enc_r, DictEncoding)):
        return None
    if left.type != right.type:
        return None
    uniques_l, uniques_r = enc_l.uniques, enc_r.uniques
    if uniques_l is not uniques_r:
        if (
            len(uniques_l) != len(uniques_r)
            or uniques_l.dtype != uniques_r.dtype
            or not np.array_equal(uniques_l, uniques_r)
        ):
            return None
    radix = len(uniques_l) + 1  # reserve the shared NULL-last code
    factorize_counters.note("shared_dict_joins")
    return (
        enc_l.codes.astype(np.int64),
        enc_r.codes.astype(np.int64),
        radix,
    )


def _joint_codes(
    left_columns: Sequence[Column],
    right_columns: Sequence[Column],
    n_left: int,
    n_right: int,
    *,
    nan_distinct: bool = True,
    par: Optional[ParallelContext] = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Codify two inputs' key columns through one shared dictionary:
    ``(left_ids, right_ids, radix)``, where equal ids across the two
    arrays mean equal keys (same semantics as :func:`codify`)."""
    if not left_columns:
        return (
            np.zeros(n_left, dtype=np.int64),
            np.zeros(n_right, dtype=np.int64),
            1,
        )
    if len(left_columns) == 1:
        shared = _shared_dict_codes(left_columns[0], right_columns[0])
        if shared is not None:
            return shared
    joined = []
    for left, right in zip(left_columns, right_columns):
        left, right = _aligned_pair(left, right)
        joined.append(Column.concat([left, right]))
    ids, radix = _codify(
        joined, n_left + n_right, nan_distinct=nan_distinct, par=par
    )
    return ids[:n_left], ids[n_left:], radix


def _membership(
    probe_ids: np.ndarray,
    key_ids: np.ndarray,
    radix: int,
    par: Optional[ParallelContext] = None,
    op: str = "setop",
) -> np.ndarray:
    """``probe_ids ∈ key_ids``, element-wise — a radix-sized boolean
    table when the key space is small, ``np.isin`` (sort-based) else."""
    small = _small_radix(radix, len(probe_ids) + len(key_ids))
    if _use_par(par, len(probe_ids), op):
        return mp.parallel_membership(
            probe_ids, key_ids, radix, small, par, op=op
        )
    if small:
        table = np.zeros(radix, dtype=np.bool_)
        table[key_ids] = True
        return table[probe_ids]
    return np.isin(probe_ids, key_ids)


def setop_mask(
    left_columns: Sequence[Column],
    n_left: int,
    right_columns: Sequence[Column],
    n_right: int,
    *,
    keep_members: bool,
    par: Optional[ParallelContext] = None,
) -> np.ndarray:
    """Keep-mask over the left input for INTERSECT (``keep_members``)
    or EXCEPT (not), with set semantics (first occurrence only)."""
    left_ids, right_ids, radix = _joint_codes(
        left_columns, right_columns, n_left, n_right, par=par
    )
    keep = np.zeros(n_left, dtype=np.bool_)
    if n_left:
        keep[_first_rows_of(left_ids, radix, n_left, par, op="setop")] = True
        member = _membership(left_ids, right_ids, radix, par)
        keep &= member if keep_members else ~member
    return keep


def new_rows_mask(
    seen_columns: Sequence[Column],
    n_seen: int,
    new_columns: Sequence[Column],
    n_new: int,
    par: Optional[ParallelContext] = None,
) -> np.ndarray:
    """Keep-mask over the new input selecting rows not already present
    in the seen input (first occurrence only) — recursive-CTE dedup."""
    seen_ids, new_ids, radix = _joint_codes(
        seen_columns, new_columns, n_seen, n_new, par=par
    )
    keep = np.zeros(n_new, dtype=np.bool_)
    if n_new:
        keep[_first_rows_of(new_ids, radix, n_new, par, op="dedup")] = True
        if n_seen:
            keep &= ~_membership(new_ids, seen_ids, radix, par, op="dedup")
    return keep


# ---------------------------------------------------------------------------
# equi-joins
# ---------------------------------------------------------------------------
def join_indices(
    left_keys: Sequence[Column],
    right_keys: Sequence[Column],
    guard: Optional[Callable[[int, int, int], None]] = None,
    par: Optional[ParallelContext] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Matching ``(left row, right row)`` index pairs of an equi-join.

    NULL keys never match; NaN keys never match (IEEE/Python equality).
    Single-column numeric keys join directly on their values (the PR-2
    sorted-join fast path, extended to DOUBLE with NaN/NULL exclusion);
    everything else joins on shared-dictionary codes.  ``guard`` is
    called with ``(total, n_left, n_right)`` once the output size is
    known, before any output row is materialized.
    """
    left, right = left_keys[0], right_keys[0]
    n_left, n_right = len(left), len(right)
    if len(left_keys) == 1 and left.data.dtype.kind in "iub" and (
        right.data.dtype.kind in "iub"
    ):
        lk = left.data.astype(np.int64, copy=False)
        rk = right.data.astype(np.int64, copy=False)
        left_valid = ~left.null_mask()
        right_valid = ~right.null_mask()
        if n_left and n_right:
            # narrow integer domains probe through bincount tables
            # (value - min as the id) instead of binary search
            lo = min(int(lk.min()), int(rk.min()))
            span = max(int(lk.max()), int(rk.max())) - lo + 1
            if _small_radix(span, n_left + n_right):
                return _equi_join_ids(
                    lk - lo, rk - lo, left_valid, right_valid, span, guard, par
                )
        return _sorted_equi_join(lk, rk, left_valid, right_valid, guard, par)
    if len(left_keys) == 1 and left.data.dtype.kind in "iubf" and (
        right.data.dtype.kind in "iubf"
    ):
        # DOUBLE (or mixed numeric) single key: join on float64 values,
        # excluding NULLs and NaNs — NaN joins nothing, like the probe
        lk = left.data.astype(np.float64, copy=False)
        rk = right.data.astype(np.float64, copy=False)
        return _sorted_equi_join(
            lk,
            rk,
            ~left.null_mask() & ~np.isnan(lk),
            ~right.null_mask() & ~np.isnan(rk),
            guard,
            par,
        )
    left_valid = np.ones(n_left, dtype=np.bool_)
    for column in left_keys:
        if column.mask is not None:
            left_valid &= ~column.mask
    right_valid = np.ones(n_right, dtype=np.bool_)
    for column in right_keys:
        if column.mask is not None:
            right_valid &= ~column.mask
    left_ids, right_ids, radix = _joint_codes(
        left_keys, right_keys, n_left, n_right, par=par
    )
    return _equi_join_ids(
        left_ids, right_ids, left_valid, right_valid, radix, guard, par
    )


def _equi_join_ids(
    lk: np.ndarray,
    rk: np.ndarray,
    left_valid: np.ndarray,
    right_valid: np.ndarray,
    radix: int,
    guard: Optional[Callable[[int, int, int], None]],
    par: Optional[ParallelContext] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join over ids in ``[0, radix)``: when the id space is small,
    probe through radix-sized bincount start/count tables (O(1) per
    probe row) instead of binary-searching the sorted build side."""
    if not _small_radix(radix, len(lk) + len(rk)):
        return _sorted_equi_join(lk, rk, left_valid, right_valid, guard, par)
    right_rows = np.flatnonzero(right_valid)
    rkv = rk[right_rows]
    order = _stable_argsort(rkv, par, op="join", radix=radix)
    sorted_rows = right_rows[order]  # grouped by id; ascending row within
    if _use_par(par, len(rkv), "join"):
        counts_table = mp.parallel_bincount(rkv, radix, par, op="join")
    else:
        counts_table = np.bincount(rkv, minlength=radix)
    starts_table = np.concatenate(([0], np.cumsum(counts_table)[:-1]))
    left_rows = np.flatnonzero(left_valid)
    if _use_par(par, len(left_rows), "join"):
        probe = mp.parallel_take(lk, left_rows, par, op="join")
        counts = mp.parallel_take(
            np.asarray(counts_table, dtype=np.int64), probe, par, op="join"
        )
        lo = mp.parallel_take(
            np.asarray(starts_table, dtype=np.int64), probe, par, op="join"
        )
    else:
        probe = lk[left_rows]
        counts = counts_table[probe]
        lo = starts_table[probe]
    return _emit_pairs(
        left_rows, counts, lo, sorted_rows, len(lk), len(rk), guard, par
    )


def _emit_pairs(
    left_rows: np.ndarray,
    counts: np.ndarray,
    lo: np.ndarray,
    sorted_right: np.ndarray,
    n_left: int,
    n_right: int,
    guard: Optional[Callable[[int, int, int], None]],
    par: Optional[ParallelContext] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-probe-row match ranges (``lo``/``counts`` into the
    key-sorted right side) to the final index pairs, guard first.

    Pairs come out in probe order; the morsel path gives every probe
    morsel its own output slice (offsets from the per-morsel totals), so
    the concatenation is exactly the serial emission.
    """
    counts = counts.astype(np.int64, copy=False)
    total = int(counts.sum())
    if guard is not None:
        guard(total, n_left, n_right)
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if _use_par(par, len(left_rows), "join"):
        spans = par.spans(len(left_rows))
        sums = [int(counts[start:stop].sum()) for start, stop in spans]
        offsets = [0]
        for chunk in sums[:-1]:
            offsets.append(offsets[-1] + chunk)
        li = np.empty(total, dtype=np.int64)
        ri = np.empty(total, dtype=np.int64)

        def emit(task: tuple[tuple[int, int], int, int]) -> None:
            (start, stop), out_start, out_total = task
            if out_total == 0:
                return
            span_counts = counts[start:stop]
            li[out_start : out_start + out_total] = np.repeat(
                left_rows[start:stop], span_counts
            )
            cum = np.concatenate(([0], np.cumsum(span_counts)[:-1]))
            slots = np.repeat(lo[start:stop] - cum, span_counts) + np.arange(
                out_total, dtype=np.int64
            )
            np.take(
                sorted_right, slots, out=ri[out_start : out_start + out_total]
            )

        par.map("join", emit, list(zip(spans, offsets, sums)))
        return li, ri
    li = np.repeat(left_rows, counts)
    cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
    slots = np.repeat(lo - cum, counts) + np.arange(total, dtype=np.int64)
    return li, sorted_right[slots]


def _sorted_equi_join(
    lk: np.ndarray,
    rk: np.ndarray,
    left_valid: np.ndarray,
    right_valid: np.ndarray,
    guard: Optional[Callable[[int, int, int], None]],
    par: Optional[ParallelContext] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort + searchsorted equi-join over comparable key arrays.

    Emits pairs in probe order (ascending left row; equal-key right rows
    ascending), identical to the row-at-a-time dict probe.
    """
    right_rows = np.flatnonzero(right_valid)
    rkv = rk[right_rows]
    order = right_rows[_stable_argsort(rkv, par, op="join")]
    sorted_rk = rk[order]
    left_rows = np.flatnonzero(left_valid)
    if _use_par(par, len(left_rows), "join"):
        probe = mp.parallel_take(lk, left_rows, par, op="join")
        n_probe = len(probe)
        lo = np.empty(n_probe, dtype=np.int64)
        hi = np.empty(n_probe, dtype=np.int64)

        def search(span: tuple[int, int]) -> None:
            start, stop = span
            chunk = probe[start:stop]
            lo[start:stop] = np.searchsorted(sorted_rk, chunk, side="left")
            hi[start:stop] = np.searchsorted(sorted_rk, chunk, side="right")

        par.map("join", search, par.spans(n_probe))
    else:
        probe = lk[left_rows]
        lo = np.searchsorted(sorted_rk, probe, side="left")
        hi = np.searchsorted(sorted_rk, probe, side="right")
    counts = (hi - lo).astype(np.int64)
    return _emit_pairs(
        left_rows, counts, lo, order, len(lk), len(rk), guard, par
    )


def _stable_argsort(
    keys: np.ndarray,
    par: Optional[ParallelContext],
    op: str = "argsort",
    radix: Optional[int] = None,
) -> np.ndarray:
    """``np.argsort(kind="stable")``, morsel-parallel when worthwhile.
    The stable permutation is unique, so both paths agree bitwise."""
    if _use_par(par, len(keys), op):
        return mp.parallel_stable_argsort(keys, par, op=op, radix=radix)
    return np.argsort(keys, kind="stable")


# ---------------------------------------------------------------------------
# ordering
# ---------------------------------------------------------------------------
def ordered_sort_codes(
    column: Column,
    ascending: bool,
    par: Optional[ParallelContext] = None,
) -> tuple[np.ndarray, int]:
    """Value-ordered int64 codes (and their cardinality) for one ORDER BY
    key: NULLs coded last; descending keys flip their codes, which turns
    NULLS LAST ascending into NULLS FIRST descending — exactly the
    row-at-a-time comparator.  Raises :class:`KernelFallback` for NaN
    float keys (no total order; only the row path reproduces Python's
    input-order-dependent result) and unorderable object keys.
    """
    # resting-encoded columns are NaN-free by construction (ANALYZE
    # never adopts an encoding over NaN floats), so the probe — which
    # would decode the whole column just to inspect it — only touches
    # plain storage
    if column.encoding is None and column.data.dtype.kind == "f":
        nan = np.isnan(column.data)
        if column.mask is not None:
            nan &= ~column.mask
        if nan.any():
            raise KernelFallback(
                "NaN sort keys have no total order", REASON_NAN_ORDER
            )
    codes, cardinality, uniques = _factorize(column, nan_distinct=False, par=par)
    # non-object codes are value-ordered by construction; object
    # codes are only ordered when np.unique could sort the payloads.
    # A resting encoding with uniques=None is the integer-pack fast
    # path — never object payloads — so only plain columns need the
    # dtype probe (which would otherwise decode the whole column)
    if (
        uniques is None
        and cardinality > 1
        and column.encoding is None
        and column.data.dtype == np.dtype(object)
    ):
        raise KernelFallback(
            "sort key values are not orderable", REASON_UNCODIFIABLE
        )
    if not ascending:
        codes = (cardinality - 1) - codes
    return codes, cardinality


def composite_sort_rank(
    keys: Sequence[tuple[Column, bool]],
    n_rows: int,
    par: Optional[ParallelContext] = None,
) -> "np.ndarray | None":
    """One mixed-radix int64 rank per row whose *stable argsort* equals
    :func:`sort_order` over the same keys (ties in the rank are exactly
    ties in every key, and the stable permutation of equal keys is
    unique).  The external merge sort runs over this single array, so
    sorted runs can merge with plain ``searchsorted``.  Returns None
    when the combined code space would overflow int64 — callers then
    fall back to the fused in-memory ``np.lexsort``.
    """
    if not keys:
        return np.zeros(n_rows, dtype=np.int64)
    rank: "np.ndarray | None" = None
    total = 1
    for column, ascending in keys:
        codes, cardinality = ordered_sort_codes(column, ascending, par)
        total *= max(cardinality, 1)
        if total > (1 << 62):
            return None
        if rank is None:
            rank = codes
        else:
            rank = rank * cardinality + codes
    return rank


def sort_order(
    keys: Sequence[tuple[Column, bool]],
    n_rows: int,
    par: Optional[ParallelContext] = None,
) -> np.ndarray:
    """Stable sort permutation for multi-key ORDER BY via ``np.lexsort``.

    Each ``(column, ascending)`` key is factorized into ordered codes by
    :func:`ordered_sort_codes`.  Stability across fully-tied rows
    matches the multi-pass stable sort it replaces.  Codification runs
    morsel-parallel under ``par``; the final ``np.lexsort`` is serial
    (it is one fused multi-key sort, already the minority of the time).
    """
    if not keys:
        return np.arange(n_rows, dtype=np.int64)
    code_arrays = [
        ordered_sort_codes(column, ascending, par)[0]
        for column, ascending in keys
    ]
    # np.lexsort treats its *last* key as primary; plan keys are listed
    # primary-first
    return np.lexsort(tuple(reversed(code_arrays))).astype(np.int64, copy=False)


# ---------------------------------------------------------------------------
# grouped aggregation
# ---------------------------------------------------------------------------
def grouped_aggregate(
    func: str,
    distinct: bool,
    arg: Optional[Column],
    ids: np.ndarray,
    n_groups: int,
    sort_cache: Optional[ArgsortCache] = None,
    par: Optional[ParallelContext] = None,
) -> Column:
    """One aggregate over dense group ids, as a column of ``n_groups``.

    Kernels exist for COUNT(*)/COUNT/SUM/MIN/MAX/AVG without DISTINCT;
    MIN/MAX additionally work on strings through ordered codes.  Groups
    with no non-NULL input are NULL (COUNT excepted).  Anything else
    raises :class:`KernelFallback` and is computed per group in Python
    by the executor.

    Counts are morsel-parallel ``bincount`` partials merged by group id
    (exact — integer addition).  SUM/MIN/MAX/AVG reduce the values in
    stable group order: the permutation comes from the (parallel) stable
    argsort and the gather from morsel-parallel ``take``, so the serial
    ``reduceat`` sees bit-for-bit the array the serial kernel would —
    float totals do not depend on the worker count.
    """
    if distinct:
        raise KernelFallback(
            "no kernel for DISTINCT aggregates", REASON_NO_KERNEL
        )
    use_par = _use_par(par, len(ids), "aggregate")
    if func == "count_star":
        if use_par:
            data = mp.parallel_bincount(ids, n_groups, par)
        else:
            data = np.bincount(ids, minlength=n_groups).astype(np.int64)
        return Column(DataType.BIGINT, data)
    if func not in ("count", "sum", "min", "max", "avg") or arg is None:
        raise KernelFallback(
            f"no kernel for aggregate {func!r}", REASON_NO_KERNEL
        )
    valid = None if arg.mask is None else ~arg.mask
    vids = ids if valid is None else ids[valid]
    if sort_cache is None:
        sort_cache = ArgsortCache()
    if use_par:
        counts = mp.parallel_bincount(ids, n_groups, par, valid=valid)
    else:
        counts = np.bincount(vids, minlength=n_groups).astype(np.int64)
    if func == "count":
        return Column(DataType.BIGINT, counts)
    present = counts > 0
    mask = ~present
    if arg.data.dtype == np.dtype(object):
        return _grouped_object_minmax(
            func, arg, vids, valid, counts, mask, sort_cache, par
        )
    if arg.type is None:
        raise KernelFallback("untyped aggregate argument", REASON_UNCODIFIABLE)
    values = arg.data
    if func in ("sum", "avg"):
        # accumulate exactly like the Python path: float64 for DOUBLE,
        # int64 otherwise (Python ints are unbounded; int64 is the
        # documented kernel deviation for astronomically large sums)
        acc_dtype = np.float64 if values.dtype.kind == "f" else np.int64
        vals = values.astype(acc_dtype, copy=False)
        vals = vals if valid is None else vals[valid]
        sums = np.zeros(n_groups, dtype=acc_dtype)
        sums[present] = _segment_reduce(
            vals, vids, counts, np.add, sort_cache, par
        )
        if func == "avg":
            data = np.zeros(n_groups, dtype=np.float64)
            data[present] = sums[present].astype(np.float64) / counts[present]
            return Column(DataType.DOUBLE, data, mask)
        type_ = DataType.DOUBLE if acc_dtype == np.float64 else DataType.BIGINT
        return Column(type_, sums, mask)
    # min / max keep the argument's type and physical dtype
    vals = values if valid is None else values[valid]
    if vals.dtype.kind == "f" and np.isnan(vals).any():
        # np.minimum/np.maximum propagate NaN; Python min()/max() (the
        # oracle) compare it as un-ordered — only the per-group row
        # fallback reproduces that
        raise KernelFallback(
            "NaN aggregate values have no total order", REASON_NAN_ORDER
        )
    ufunc = np.minimum if func == "min" else np.maximum
    data = np.zeros(n_groups, dtype=values.dtype)
    data[present] = _segment_reduce(vals, vids, counts, ufunc, sort_cache, par)
    return Column(arg.type, data, mask)


def _grouped_object_minmax(
    func, arg, vids, valid, counts, mask, sort_cache, par=None
):
    """MIN/MAX over strings: reduce ordered codes, map back to values."""
    if func not in ("min", "max"):
        raise KernelFallback(
            f"no kernel for {func!r} over object values", REASON_NO_KERNEL
        )
    codes, _, uniques = _factorize(arg, par=par)
    if uniques is None:
        raise KernelFallback(
            "aggregate values are not orderable", REASON_UNCODIFIABLE
        )
    vals = codes if valid is None else codes[valid]
    ufunc = np.minimum if func == "min" else np.maximum
    present = ~mask
    data = np.empty(len(counts), dtype=object)
    if present.any():
        data[present] = uniques[
            _segment_reduce(vals, vids, counts, ufunc, sort_cache, par)
        ]
    return Column(arg.type or DataType.VARCHAR, data, mask)


def _segment_reduce(
    vals, vids, counts, ufunc, sort_cache=None, par=None
) -> np.ndarray:
    """Per-group reduction: stable sort by group id, then ``reduceat``.

    Returns one value per *non-empty* group, in group-id order.  The
    stable sort keeps each group's values in row order; note that
    ``np.add.reduceat`` sums segments pairwise, so float totals can
    differ from the sequential Python sum in the final ULP (see the
    module docstring).

    ``sort_cache`` (an :class:`ArgsortCache`) shares the argsort of
    ``vids`` between the aggregates of one GROUP BY (SUM/MIN/MAX over
    the same group-id array sort it once).  Under ``par`` the argsort
    and the value gather run morsel-parallel; the ``reduceat`` itself
    stays serial over the fully sorted array, which is what keeps float
    reductions bit-identical to the serial kernel.
    """
    order = None
    if sort_cache is not None:
        order = sort_cache.lookup(vids)
    if order is None:
        # group ids are dense: len(counts) == n_groups is the radix
        order = _stable_argsort(vids, par, op="aggregate", radix=len(counts))
        if sort_cache is not None:
            sort_cache.store(vids, order)
    if par is not None and par.active_for(len(order)):  # decision already counted by the argsort
        svals = mp.parallel_take(vals, order, par, op="aggregate")
    else:
        svals = vals[order]
    present_counts = counts[counts > 0]
    if len(present_counts) == 0:
        return np.empty(0, dtype=vals.dtype)
    starts = np.concatenate(
        ([0], np.cumsum(present_counts)[:-1])
    ).astype(np.int64)
    return ufunc.reduceat(svals, starts)


def group_row_lists(ids: np.ndarray, n_groups: int) -> list[np.ndarray]:
    """Row indices per group (group-id order) — the bridge that lets
    unsupported aggregates run per group in Python while grouping itself
    stays vectorized."""
    order = np.argsort(ids, kind="stable")
    counts = np.bincount(ids, minlength=n_groups)
    return np.split(order, np.cumsum(counts)[:-1])
