"""Physical graph select / graph join.

This module is the executor counterpart of the paper's code-generation
stage (Section 3.1):

1. the edge-table expression is executed and fully materialized;
2. the vertex set ``V = S ∪ D`` is computed and the X/Y endpoint values
   are joined with it ("an initial filtering on the values that are not
   vertices");
3. the weights attached to each CHEAPEST SUM are materialized by
   evaluating the weight expression over the edge batch (strictly
   positive, or a runtime exception);
4. all keys are translated into the dense domain ``H = {0..|V|-1}`` and
   the external graph library is invoked;
5. the result set is materialized back: connected tuples are kept, cost
   columns appended, and paths wrapped as nested-table values pointing
   into the edge batch (Section 3.3).

The graph-index cache (the paper's Section 6 future work) keys a
prepared, *unweighted* domain+CSR on (table, S, D, table version); a
weighted query re-attaches its weight vector through the CSR's stored
edge permutation, skipping the sort and dictionary build.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import GraphRuntimeError, ResourceLimitError
from ..graph import GraphLibrary
from ..graph.csr import CSRGraph
from ..nested import NestedTableValue
from ..plan import logical as lp
from ..plan import physical as pp
from ..storage import Column, DataType
from .batch import Batch
from .operators import ExecContext, execute_plan, register_operator

#: Guard for the pair matrix materialized by a graph join.
MAX_JOIN_CELLS = 200_000_000


# ---------------------------------------------------------------------------
# building the prepared graph (with the §6 index cache)
# ---------------------------------------------------------------------------
def _composite_array(columns: list) -> np.ndarray:
    """One key array from one or more columns.

    Single-attribute keys pass the raw data through; composite keys (the
    paper's multi-attribute extension) become object arrays of tuples,
    which the vertex domain dictionary-encodes like any other key.
    """
    if len(columns) == 1:
        return columns[0].data
    n = len(columns[0])
    datas = [c.data for c in columns]
    out = np.empty(n, dtype=object)
    for i in range(n):
        out[i] = tuple(d[i] for d in datas)
    return out


def _edge_keys(edge_batch: Batch, spec: lp.GraphSpec):
    """Raw S/D key arrays plus the row filter removing NULL endpoints."""
    src_columns = [edge_batch.column_by_id(c.col_id) for c in spec.src_cols]
    dst_columns = [edge_batch.column_by_id(c.col_id) for c in spec.dst_cols]
    valid = np.ones(edge_batch.num_rows, dtype=np.bool_)
    for column in src_columns + dst_columns:
        valid &= ~column.null_mask()
    return _composite_array(src_columns), _composite_array(dst_columns), valid


def _encode_endpoints(
    ctx: ExecContext, exprs, batch: Batch, library: GraphLibrary
) -> np.ndarray:
    """Evaluate the X/Y endpoint expression tuple and encode it into H.

    NULL endpoints can reach nothing: their slots are forced to
    NOT_A_VERTEX after encoding (a NULL never joins with V).
    """
    from ..graph import NOT_A_VERTEX

    columns = [ctx.eval(e, batch) for e in exprs]
    keys = _composite_array(columns)
    ids = library.domain.encode(keys)
    for column in columns:
        if column.mask is not None:
            ids[column.mask] = NOT_A_VERTEX
    return ids


def _materialize_weights(
    ctx: ExecContext, edge_batch: Batch, cheapest: lp.CheapestSpec, valid: np.ndarray
) -> Optional[np.ndarray]:
    """Weight vector for one CHEAPEST SUM (None for the unweighted case)."""
    if cheapest.constant_one:
        return None
    column = ctx.eval(cheapest.weight, edge_batch)
    if column.mask is not None and (column.mask & valid).any():
        raise GraphRuntimeError("CHEAPEST SUM weight must not be NULL")
    if column.type is not None and not column.type.is_numeric:
        raise GraphRuntimeError("CHEAPEST SUM weight must be numeric")
    weights = column.data
    if weights.dtype.kind not in "iuf":
        raise GraphRuntimeError("CHEAPEST SUM weight must be numeric")
    return weights[valid]


def _library_from_cache(ctx: ExecContext, edge_plan, spec: lp.GraphSpec):
    """Reuse a prepared domain+CSR when a graph index covers this edge plan.

    The lookup is pinned to the statement's snapshot version of the edge
    table, so a cached CSR built from a newer committed state is never
    served to an older snapshot (and vice versa).
    """
    database = ctx.database
    if database is None or not isinstance(edge_plan, pp.PScan):
        return None
    if len(spec.src_cols) != 1:
        return None  # graph indices cover single-attribute keys only
    table_version = (
        ctx.snapshot.table_version(edge_plan.table)
        if ctx.snapshot is not None
        else None
    )
    return database.lookup_graph_index(
        edge_plan.table,
        spec.src_cols[0].name,
        spec.dst_cols[0].name,
        table_version=table_version,
    )


def _prepare_libraries(
    ctx: ExecContext, edge_plan, edge_batch: Batch, spec: lp.GraphSpec
):
    """One GraphLibrary per distinct weighting (plus the unweighted base).

    Returns (base_library, [(cheapest_spec, library)]).  ``base_library``
    answers the pure reachability question and is unweighted; per-spec
    libraries share its vertex domain and CSR ordering.
    """
    src, dst, valid = _edge_keys(edge_batch, spec)
    src_keys = src[valid]
    dst_keys = dst[valid]
    base = _library_from_cache(ctx, edge_plan, spec)
    if base is None:
        base = GraphLibrary(src_keys, dst_keys)
    weighted: list[tuple[lp.CheapestSpec, GraphLibrary]] = []
    for cheapest in spec.cheapest:
        weights = _materialize_weights(ctx, edge_batch, cheapest, valid)
        if weights is None:
            weighted.append((cheapest, base))
        else:
            weighted.append((cheapest, _attach_weights(base, weights)))
    # map positions in the filtered edge set back to edge-batch rows
    original_rows = np.flatnonzero(valid).astype(np.int64)
    return base, weighted, original_rows


def _attach_weights(base: GraphLibrary, weights: np.ndarray) -> GraphLibrary:
    """A weighted view sharing the base library's domain and CSR order."""
    if len(weights) and weights.min() <= 0:
        raise GraphRuntimeError(
            "CHEAPEST SUM weights must be strictly greater than 0"
        )
    if weights.dtype.kind in "iu":
        weights = weights.astype(np.int64)
    else:
        weights = weights.astype(np.float64)
    csr = base.csr
    library = GraphLibrary.__new__(GraphLibrary)
    library.domain = base.domain
    library.csr = CSRGraph(
        num_vertices=csr.num_vertices,
        indptr=csr.indptr,
        dst=csr.dst,
        src=csr.src,
        weights=weights[csr.edge_rows],
        edge_rows=csr.edge_rows,
    )
    library.weighted = True
    return library


def _path_column(
    edge_batch: Batch,
    original_rows: np.ndarray,
    paths: list[Optional[np.ndarray]],
    keep: np.ndarray,
) -> Column:
    """Wrap per-pair path row ids (filtered-edge positions) as values."""
    data = np.empty(int(keep.sum()), dtype=object)
    cursor = 0
    for position in np.flatnonzero(keep):
        path = paths[position]
        rows = original_rows[path] if path is not None else np.empty(0, np.int64)
        data[cursor] = NestedTableValue(edge_batch, rows)
        cursor += 1
    return Column(DataType.NESTED_TABLE, data)


def _cost_column(costs: np.ndarray, keep: np.ndarray, type_) -> Column:
    values = costs[keep]
    if type_ == DataType.DOUBLE:
        return Column(DataType.DOUBLE, values.astype(np.float64))
    return Column(DataType.BIGINT, values.astype(np.int64))


# ---------------------------------------------------------------------------
# graph select
# ---------------------------------------------------------------------------
def _exec_graph_select(plan: pp.PGraphSelect, ctx: ExecContext) -> Batch:
    edge_batch = execute_plan(plan.edge, ctx)
    input_batch = execute_plan(plan.input, ctx)
    spec = plan.spec
    base, weighted, original_rows = _prepare_libraries(
        ctx, plan.edge, edge_batch, spec
    )
    sources = _encode_endpoints(ctx, spec.source, input_batch, base)
    dests = _encode_endpoints(ctx, spec.dest, input_batch, base)

    if not spec.cheapest:
        result = base.solve_encoded(sources, dests, workers=ctx.path_workers)
        return input_batch.filter(result.connected)

    keep: Optional[np.ndarray] = None
    extra_schema: list[lp.PlanColumn] = []
    extra_columns: list[Column] = []
    for cheapest, library in weighted:
        want_path = cheapest.path is not None
        result = library.solve_encoded(
            sources,
            dests,
            want_cost=True,
            want_path=want_path,
            workers=ctx.path_workers,
        )
        if keep is None:
            keep = result.connected
        extra_schema.append(cheapest.cost)
        extra_columns.append(_cost_column(result.costs, keep, cheapest.cost.type))
        if want_path:
            extra_schema.append(cheapest.path)
            extra_columns.append(
                _path_column(edge_batch, original_rows, result.paths, keep)
            )
    filtered = input_batch.filter(keep)
    return filtered.append_columns(extra_schema, extra_columns)


# ---------------------------------------------------------------------------
# graph join
# ---------------------------------------------------------------------------
def _exec_graph_join(plan: pp.PGraphJoin, ctx: ExecContext) -> Batch:
    edge_batch = execute_plan(plan.edge, ctx)
    left_batch = execute_plan(plan.left, ctx)
    right_batch = execute_plan(plan.right, ctx)
    spec = plan.spec
    base, weighted, original_rows = _prepare_libraries(
        ctx, plan.edge, edge_batch, spec
    )
    left_ids = _encode_endpoints(ctx, spec.source, left_batch, base)
    right_ids = _encode_endpoints(ctx, spec.dest, right_batch, base)
    n, m = len(left_ids), len(right_ids)
    if n * m > MAX_JOIN_CELLS:
        raise ResourceLimitError(
            f"graph join over {n} x {m} candidate pairs exceeds the safety limit"
        )

    # deduplicate endpoint *ids*: traversals run once per distinct pair
    uniq_left, inv_left = np.unique(left_ids, return_inverse=True)
    uniq_right, inv_right = np.unique(right_ids, return_inverse=True)
    ul, ur = len(uniq_left), len(uniq_right)
    grid_src = np.repeat(uniq_left, ur)
    grid_dst = np.tile(uniq_right, ul)

    solutions = []
    if not spec.cheapest:
        solutions.append(
            (None, base.solve_encoded(grid_src, grid_dst, workers=ctx.path_workers))
        )
    else:
        for cheapest, library in weighted:
            solutions.append(
                (
                    cheapest,
                    library.solve_encoded(
                        grid_src,
                        grid_dst,
                        want_cost=True,
                        want_path=cheapest.path is not None,
                        workers=ctx.path_workers,
                    ),
                )
            )
    connected_grid = solutions[0][1].connected.reshape(ul, ur)
    pair_matrix = connected_grid[inv_left][:, inv_right]
    li, ri = np.nonzero(pair_matrix)
    flat = inv_left[li] * ur + inv_right[ri]

    columns = [c.take(li) for c in left_batch.columns] + [
        c.take(ri) for c in right_batch.columns
    ]
    schema = plan.left.schema + plan.right.schema
    out = Batch(schema, columns)
    extra_schema: list[lp.PlanColumn] = []
    extra_columns: list[Column] = []
    for cheapest, solution in solutions:
        if cheapest is None:
            continue
        extra_schema.append(cheapest.cost)
        cost_values = solution.costs[flat]
        extra_columns.append(
            Column(
                DataType.DOUBLE
                if cheapest.cost.type == DataType.DOUBLE
                else DataType.BIGINT,
                cost_values.astype(
                    np.float64 if cheapest.cost.type == DataType.DOUBLE else np.int64
                ),
            )
        )
        if cheapest.path is not None:
            data = np.empty(len(flat), dtype=object)
            for out_i, grid_i in enumerate(flat):
                path = solution.paths[grid_i]
                rows = (
                    original_rows[path] if path is not None else np.empty(0, np.int64)
                )
                data[out_i] = NestedTableValue(edge_batch, rows)
            extra_schema.append(cheapest.path)
            extra_columns.append(Column(DataType.NESTED_TABLE, data))
    out = out.append_columns(extra_schema, extra_columns)
    return out.relabel(plan.schema)


register_operator(pp.PGraphSelect, _exec_graph_select)
register_operator(pp.PGraphJoin, _exec_graph_join)
