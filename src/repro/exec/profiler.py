"""Per-operator execution profiling.

``Database.profile(sql)`` runs a query with timing instrumentation and
renders the physical plan annotated with inclusive/exclusive wall time
and output cardinality per operator — plus the optimizer's *estimated*
cardinality next to the actual one, so estimation errors are visible at
operator granularity.  This is the tool behind the paper's central
observation that graph construction dominates query time (our A2
ablation, at operator granularity).

Operators whose actual output cardinality deviates from the optimizer's
estimate by :data:`MISESTIMATE_FACTOR` (10x) or more in either direction
are flagged ``MISESTIMATE`` in the report and collected in
:attr:`Profiler.misestimates` — the hook adaptive re-optimization will
build on (a flagged plan is a re-planning candidate).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..plan import physical as pp

#: Estimated-vs-actual cardinality ratio (either direction) at which an
#: operator is flagged as misestimated.
MISESTIMATE_FACTOR = 10.0


def misestimate_ratio(estimated: float, actual: float) -> float:
    """How far off an estimate was, as a symmetric >=1 factor.

    Both sides are floored at one row so empty results compare against
    "one row", not zero — an estimate of 3 rows that produced 0 is fine,
    an estimate of 5000 that produced 0 is a 5000x miss.
    """
    estimated = max(float(estimated), 1.0)
    actual = max(float(actual), 1.0)
    return max(estimated, actual) / min(estimated, actual)


def _per_op(counts: dict) -> str:
    """`` (group_by=3 join=1)`` detail for the kernel-counter line."""
    if not counts:
        return ""
    body = " ".join(f"{op}={counts[op]}" for op in sorted(counts))
    return f" ({body})"


def _per_reason(reasons: dict) -> str:
    """`` (sort:nan-order=1 group_by:uncodifiable=2)`` — fallbacks broken
    down by operation *and* cause, so a parallel-vs-serial regression is
    attributable to the fallback class that produced it."""
    if not reasons:
        return ""
    parts = []
    for op in sorted(reasons):
        for reason in sorted(reasons[op]):
            parts.append(f"{op}:{reason}={reasons[op][reason]}")
    return f" ({' '.join(parts)})"


@dataclass
class NodeStats:
    """Timing record of one plan-node execution."""

    inclusive: float = 0.0
    children: float = 0.0
    rows: int = 0
    calls: int = 0

    @property
    def exclusive(self) -> float:
        return max(self.inclusive - self.children, 0.0)


class Profiler:
    """Collects per-node stats during one statement execution."""

    def __init__(self) -> None:
        self.stats: dict[int, NodeStats] = {}
        self._stack: list[int] = []
        #: Set by Database.profile(): whether this statement's plan came
        #: from the plan cache, and the cache counters to report.
        self.plan_cache_hit: bool | None = None
        self.cache_stats: dict | None = None
        #: Vectorized-kernel hit/fallback counters (cumulative, like the
        #: cache counters) — set by Database.profile().
        self.kernel_stats: dict | None = None
        #: Morsel-parallel execution counters (worker pool config,
        #: parallel/serial op decisions, per-morsel timings) — set by
        #: Database.profile().
        self.parallel_stats: dict | None = None
        #: Compressed-storage counters (zone-map morsel skipping,
        #: factorize resting-code hits) — set by Database.profile().
        self.storage_stats: dict | None = None
        #: Memory-budget counters (budget, spill decisions, streamed
        #: morsels, external-sort runs) — set by Database.profile().
        self.memory_stats: dict | None = None
        #: ``(operator name, estimated rows, actual rows-per-call)`` for
        #: every operator flagged by :func:`misestimate_ratio` — filled
        #: by :meth:`render`; groundwork for adaptive re-optimization.
        self.misestimates: list[tuple[str, float, float]] = []

    def run(self, plan: pp.PhysicalNode, handler, ctx):
        """Execute ``handler(plan, ctx)`` under timing instrumentation."""
        key = id(plan)
        self._stack.append(key)
        start = time.perf_counter()
        try:
            batch = handler(plan, ctx)
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
        stats = self.stats.setdefault(key, NodeStats())
        stats.inclusive += elapsed
        stats.calls += 1
        stats.rows += batch.num_rows
        if self._stack:
            parent = self.stats.setdefault(self._stack[-1], NodeStats())
            parent.children += elapsed
        return batch

    # ------------------------------------------------------------------
    def render(self, plan: pp.PhysicalNode) -> str:
        """The plan tree annotated with times and cardinalities, plus a
        cache footer when the statement ran through the plan cache."""
        lines: list[str] = []
        self.misestimates = []
        self._render_node(plan, 0, lines)
        if self.plan_cache_hit is not None:
            lines.append(
                "plan cache: " + ("HIT" if self.plan_cache_hit else "MISS")
            )
        if self.cache_stats is not None:
            plan_stats = self.cache_stats.get("plan_cache", {})
            graph_stats = self.cache_stats.get("graph_index_cache", {})
            lines.append(
                f"plan cache counters: hits={plan_stats.get('hits', 0)} "
                f"misses={plan_stats.get('misses', 0)}"
            )
            lines.append(
                f"graph index cache counters: hits={graph_stats.get('hits', 0)} "
                f"misses={graph_stats.get('misses', 0)}"
            )
        if self.kernel_stats is not None:
            lines.append(
                "vectorized kernels: "
                f"hits={self.kernel_stats.get('hit_total', 0)}"
                f"{_per_op(self.kernel_stats.get('hits', {}))} "
                f"fallbacks={self.kernel_stats.get('fallback_total', 0)}"
                f"{_per_reason(self.kernel_stats.get('fallback_reasons', {}))}"
            )
        if self.parallel_stats is not None:
            stats = self.parallel_stats
            morsels = stats.get("morsel_total", 0)
            seconds = stats.get("morsel_seconds_total", 0.0)
            avg_ms = (seconds / morsels * 1000) if morsels else 0.0
            max_ms = max(stats.get("morsel_max_ms", {}).values(), default=0.0)
            lines.append(
                f"parallel kernels: workers={stats.get('workers', 1)} "
                f"parallel_ops={stats.get('parallel_op_total', 0)}"
                f"{_per_op(stats.get('parallel_ops', {}))} "
                f"serial_ops={stats.get('serial_op_total', 0)} "
                f"morsels={morsels}{_per_op(stats.get('morsels', {}))} "
                f"avg_morsel={avg_ms:.2f}ms max_morsel={max_ms:.2f}ms"
            )
        if self.storage_stats is not None:
            stats = self.storage_stats
            fact = stats.get("factorize", {})
            lines.append(
                "storage: "
                f"compression={'on' if stats.get('compression') else 'off'} "
                f"zone_scans={stats.get('zone_scans', 0)} "
                f"morsels_skipped={stats.get('morsels_skipped', 0)}/"
                f"{stats.get('morsels_total', 0)} "
                f"factorize_encodes={fact.get('encodes', 0)} "
                f"resting_hits={fact.get('resting_hits', 0)}"
            )
        if self.memory_stats is not None:
            stats = self.memory_stats
            budget = stats.get("memory_budget")
            decisions = stats.get("decisions", ())
            spilled = sum(1 for d in decisions if d.get("spill"))
            lines.append(
                "memory: "
                f"budget={'unlimited' if budget is None else budget} "
                f"query_decisions={len(decisions)} query_spills={spilled} "
                f"spills={stats.get('spills', 0)} "
                f"partitions={stats.get('partitions', 0)} "
                f"streams={stats.get('streams', 0)} "
                f"stream_morsels={stats.get('stream_morsels', 0)} "
                f"sort_runs={stats.get('sort_runs', 0)} "
                f"spill_bytes={stats.get('bytes_written', 0)}"
            )
        return "\n".join(lines)

    def _render_node(self, node: pp.PhysicalNode, depth: int, lines: list[str]):
        name = pp.node_name(node)
        detail = pp.node_detail(node)  # one format shared with EXPLAIN
        stats = self.stats.get(id(node))
        if stats is None:
            annotation = "(not executed)"
        else:
            # estimated vs actual cardinality, per operator
            annotation = (
                f"self={stats.exclusive * 1000:.2f}ms "
                f"total={stats.inclusive * 1000:.2f}ms "
                f"rows={stats.rows} est_rows={node.est_rows:.0f}"
                + (f" calls={stats.calls}" if stats.calls > 1 else "")
            )
            actual = stats.rows / stats.calls  # per-call, like est_rows
            ratio = misestimate_ratio(node.est_rows, actual)
            if ratio >= MISESTIMATE_FACTOR:
                annotation += f" MISESTIMATE({ratio:.0f}x)"
                self.misestimates.append((name, node.est_rows, actual))
        lines.append(f"{'  ' * depth}{name}{detail}  {annotation}")
        for child in node.children:
            self._render_node(child, depth + 1, lines)
