"""Semantic analysis: AST → typed logical plan.

This is the analogue of the changes the paper made to MonetDB's SQL
front-end (Section 3.1):

* a ``REACHES`` predicate found in the WHERE conjunction always becomes a
  **graph select** over the FROM result ("the semantic stage of the
  compiler always creates a graph select when detecting a reachability
  predicate"); the graph-join unfolding happens later, in the rewriter;
* ``CHEAPEST SUM`` projection items are matched to their reachability
  predicate through the tuple variable (the explicit binding is mandatory
  only when several predicates exist), type-checked (weights numeric; the
  cost type follows the weight expression), and turned into columns
  *produced by* the graph select;
* the REACHES endpoint/edge-key types must match, "otherwise a semantic
  error arises";
* paths are typed as nested tables whose attributes "are the same as the
  attributes of the EDGE table expression" (Section 2), which is what
  UNNEST later expands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import BindError, NotSupportedError
from ..sql import ast
from ..storage import Catalog, DataType, parse_type_name, promote
from . import exprs as bx
from . import logical as lp

_AGG_FUNCS = frozenset({"count", "sum", "min", "max", "avg"})

_SCALAR_FUNCS: dict[str, tuple[int, Optional[DataType]]] = {
    # name -> (arity, fixed result type or None=follows args);
    # arity -1 means variadic
    "abs": (1, None),
    "length": (1, DataType.INTEGER),
    "lower": (1, DataType.VARCHAR),
    "upper": (1, DataType.VARCHAR),
    "round": (2, DataType.DOUBLE),
    "floor": (1, DataType.BIGINT),
    "ceil": (1, DataType.BIGINT),
    "coalesce": (-1, None),
    "nullif": (2, None),
    "sqrt": (1, DataType.DOUBLE),
    "mod": (2, None),
    "substr": (-1, DataType.VARCHAR),  # substr(s, start [, length])
    "replace": (3, DataType.VARCHAR),
    "trim": (1, DataType.VARCHAR),
    "ltrim": (1, DataType.VARCHAR),
    "rtrim": (1, DataType.VARCHAR),
    "year": (1, DataType.INTEGER),
    "month": (1, DataType.INTEGER),
    "day": (1, DataType.INTEGER),
    "greatest": (-1, None),
    "least": (-1, None),
    "sign": (1, DataType.INTEGER),
    "power": (2, DataType.DOUBLE),
    "ln": (1, DataType.DOUBLE),
    "exp": (1, DataType.DOUBLE),
}


# ---------------------------------------------------------------------------
# bound statements
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BoundQuery:
    plan: lp.LogicalNode


@dataclass(frozen=True)
class BoundExplain:
    plan: lp.LogicalNode


@dataclass(frozen=True)
class BoundCreateTable:
    name: str
    columns: tuple[tuple[str, DataType], ...]


@dataclass(frozen=True)
class BoundDropTable:
    name: str


@dataclass(frozen=True)
class BoundInsert:
    table: str
    columns: tuple[str, ...]
    plan: lp.LogicalNode


@dataclass(frozen=True)
class BoundCreateTableAs:
    name: str
    plan: lp.LogicalNode


@dataclass(frozen=True)
class BoundCopy:
    """``COPY table [(cols)] FROM 'file'``: one-batch columnar ingest."""

    table: str
    columns: tuple[str, ...]
    path: str
    format: str  # 'csv' | 'npz'
    header: bool
    delimiter: str


@dataclass(frozen=True)
class BoundDelete:
    table: str
    scan: lp.LogicalNode
    predicate: Optional[bx.BoundExpr]


@dataclass(frozen=True)
class BoundUpdate:
    table: str
    scan: lp.LogicalNode
    #: (column position in the table schema, bound value expression)
    assignments: tuple[tuple[int, bx.BoundExpr], ...]
    predicate: Optional[bx.BoundExpr]


@dataclass(frozen=True)
class BoundCreateGraphIndex:
    name: str
    table: str
    src_col: str
    dst_col: str


@dataclass(frozen=True)
class BoundDropGraphIndex:
    name: str


@dataclass(frozen=True)
class BoundAnalyze:
    """``ANALYZE [table]``: None analyzes every table."""

    table: Optional[str]


@dataclass(frozen=True)
class BoundBegin:
    """``BEGIN``: open a session-level transaction."""


@dataclass(frozen=True)
class BoundCommit:
    """``COMMIT``: publish the session transaction's buffered writes."""


@dataclass(frozen=True)
class BoundRollback:
    """``ROLLBACK``: discard the session transaction's buffered writes."""


# ---------------------------------------------------------------------------
# scopes
# ---------------------------------------------------------------------------
class Scope:
    """Name-resolution scope: an ordered list of (alias, columns)."""

    def __init__(self) -> None:
        self.tables: list[tuple[Optional[str], tuple[lp.PlanColumn, ...]]] = []

    def add(self, alias: Optional[str], columns: tuple[lp.PlanColumn, ...]) -> None:
        if alias is not None:
            alias = alias.lower()
            if any(a == alias for a, _ in self.tables):
                raise BindError(f"duplicate table alias {alias!r} in FROM")
        self.tables.append((alias, columns))

    def all_columns(self) -> tuple[lp.PlanColumn, ...]:
        out: list[lp.PlanColumn] = []
        for _, cols in self.tables:
            out.extend(cols)
        return tuple(out)

    def columns_of(self, alias: str) -> tuple[lp.PlanColumn, ...]:
        alias = alias.lower()
        for a, cols in self.tables:
            if a == alias:
                return cols
        raise BindError(f"unknown table alias {alias!r}")

    def resolve(self, table: Optional[str], name: str) -> lp.PlanColumn:
        name = name.lower()
        matches: list[lp.PlanColumn] = []
        if table is not None:
            for col in self.columns_of(table):
                if col.name == name:
                    matches.append(col)
        else:
            for _, cols in self.tables:
                for col in cols:
                    if col.name == name:
                        matches.append(col)
        if not matches:
            qualified = f"{table}.{name}" if table else name
            raise BindError(f"unknown column {qualified!r}")
        if len(matches) > 1:
            raise BindError(f"ambiguous column reference {name!r}")
        return matches[0]


@dataclass
class _CTEDef:
    """A visible CTE: either inlined (AST) or a recursive working table."""

    name: str
    query: Optional[ast.QueryNode]  # non-recursive: rebound per reference
    column_names: tuple[str, ...]
    recursive_schema: Optional[tuple[lp.PlanColumn, ...]] = None  # templates
    materialized: bool = False  # True once LRecursive produced it


class Binder:
    """Binds one statement; col_ids are unique within the statement."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._next_id = 0

    # ------------------------------------------------------------------
    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _fresh_column(
        self,
        name: str,
        type_: Optional[DataType],
        nested: Optional[tuple[lp.PlanColumn, ...]] = None,
    ) -> lp.PlanColumn:
        return lp.PlanColumn(self._fresh_id(), name.lower(), type_, nested)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def bind_statement(self, stmt: ast.Statement):
        if isinstance(stmt, ast.QueryStatement):
            return BoundQuery(self.bind_query(stmt.query, {}))
        if isinstance(stmt, ast.Explain):
            return BoundExplain(self.bind_query(stmt.query, {}))
        if isinstance(stmt, ast.CreateTable):
            columns = tuple(
                (spec.name.lower(), parse_type_name(spec.type_name))
                for spec in stmt.columns
            )
            return BoundCreateTable(stmt.name.lower(), columns)
        if isinstance(stmt, ast.DropTable):
            return BoundDropTable(stmt.name.lower())
        if isinstance(stmt, ast.InsertValues):
            return self._bind_insert_values(stmt)
        if isinstance(stmt, ast.InsertSelect):
            plan = self.bind_query(stmt.query, {})
            return BoundInsert(stmt.table.lower(), stmt.columns, plan)
        if isinstance(stmt, ast.Copy):
            return self._bind_copy(stmt)
        if isinstance(stmt, ast.CreateTableAs):
            return BoundCreateTableAs(stmt.name.lower(), self.bind_query(stmt.query, {}))
        if isinstance(stmt, ast.Delete):
            return self._bind_delete(stmt)
        if isinstance(stmt, ast.Update):
            return self._bind_update(stmt)
        if isinstance(stmt, ast.CreateGraphIndex):
            return BoundCreateGraphIndex(
                stmt.name.lower(), stmt.table.lower(), stmt.src_col.lower(), stmt.dst_col.lower()
            )
        if isinstance(stmt, ast.DropGraphIndex):
            return BoundDropGraphIndex(stmt.name.lower())
        if isinstance(stmt, ast.Analyze):
            if stmt.table is not None:
                self.catalog.get(stmt.table)  # raises CatalogError if unknown
                return BoundAnalyze(stmt.table.lower())
            return BoundAnalyze(None)
        if isinstance(stmt, ast.Begin):
            return BoundBegin()
        if isinstance(stmt, ast.Commit):
            return BoundCommit()
        if isinstance(stmt, ast.Rollback):
            return BoundRollback()
        raise NotSupportedError(f"unsupported statement: {type(stmt).__name__}")

    def _bind_insert_values(self, stmt: ast.InsertValues) -> BoundInsert:
        table = self.catalog.get(stmt.table)
        width = len(stmt.columns) if stmt.columns else len(table.schema)
        scope = Scope()
        bound_rows = []
        for row in stmt.rows:
            if len(row) != width:
                raise BindError(
                    f"INSERT row has {len(row)} values, expected {width}"
                )
            bound_rows.append(
                tuple(self._bind_expr(e, scope, allow_agg=False) for e in row)
            )
        # promote across ALL rows (mirrors _bind_values_query): VALUES
        # (1), (2.5) is a DOUBLE column, not an INTEGER one
        column_types: list[Optional[DataType]] = [None] * width
        for row_exprs in bound_rows:
            for j, expr in enumerate(row_exprs):
                if expr.type is not None:
                    column_types[j] = (
                        expr.type
                        if column_types[j] is None
                        else promote(column_types[j], expr.type)
                    )
        schema = tuple(
            self._fresh_column(f"col{j}", column_types[j]) for j in range(width)
        )
        return BoundInsert(
            stmt.table.lower(), stmt.columns, lp.LValues(tuple(bound_rows), schema)
        )

    def _bind_copy(self, stmt: ast.Copy) -> BoundCopy:
        table = self.catalog.get(stmt.table)
        columns = tuple(c.lower() for c in stmt.columns)
        seen: set[str] = set()
        for name in columns:
            table.schema.index_of(name)  # raises CatalogError if unknown
            if name in seen:
                raise BindError(f"column {name!r} listed twice in COPY")
            seen.add(name)
        fmt: Optional[str] = None
        header = True
        delimiter = ","
        for name, value in stmt.options:
            key = name.lower()
            if key == "format":
                fmt = str(value).lower()
                if fmt not in ("csv", "npz"):
                    raise BindError(f"unsupported COPY format {value!r}")
            elif key == "header":
                if isinstance(value, bool):
                    header = value
                else:
                    header = str(value).lower() not in (
                        "false",
                        "0",
                        "off",
                        "no",
                    )
            elif key == "no_header":
                header = False
            elif key == "delimiter":
                if not isinstance(value, str) or len(value) != 1:
                    raise BindError("COPY delimiter must be a single character")
                delimiter = value
            else:
                raise BindError(f"unknown COPY option {name!r}")
        if fmt is None:
            fmt = "npz" if str(stmt.path).lower().endswith(".npz") else "csv"
        return BoundCopy(table.name, columns, stmt.path, fmt, header, delimiter)

    def _table_scan_scope(self, table_name: str) -> tuple[lp.LScan, Scope]:
        table = self.catalog.get(table_name)
        columns = tuple(self._fresh_column(c.name, c.type) for c in table.schema)
        scope = Scope()
        scope.add(table.name, columns)
        return lp.LScan(table.name, columns), scope

    def _bind_delete(self, stmt: ast.Delete) -> BoundDelete:
        scan, scope = self._table_scan_scope(stmt.table)
        predicate = None
        if stmt.where is not None:
            predicate = self._bind_expr(stmt.where, scope, allow_agg=False)
            _require_boolean(predicate, "DELETE ... WHERE")
        return BoundDelete(scan.table, scan, predicate)

    def _bind_update(self, stmt: ast.Update) -> BoundUpdate:
        scan, scope = self._table_scan_scope(stmt.table)
        table = self.catalog.get(stmt.table)
        assignments = []
        seen: set[int] = set()
        for column_name, value_ast in stmt.assignments:
            position = table.schema.index_of(column_name)
            if position in seen:
                raise BindError(f"column {column_name!r} assigned twice in UPDATE")
            seen.add(position)
            value = self._bind_expr(value_ast, scope, allow_agg=False)
            declared = table.schema.columns[position].type
            if (
                value.type is not None
                and value.type != declared
                and not (value.type.is_numeric and declared.is_numeric)
                and not (declared == DataType.DATE and value.type == DataType.VARCHAR)
            ):
                raise BindError(
                    f"cannot assign {value.type} to column "
                    f"{column_name!r} of type {declared}"
                )
            assignments.append((position, value))
        predicate = None
        if stmt.where is not None:
            predicate = self._bind_expr(stmt.where, scope, allow_agg=False)
            _require_boolean(predicate, "UPDATE ... WHERE")
        return BoundUpdate(scan.table, scan, tuple(assignments), predicate)

    def _bind_values_query(self, node: ast.ValuesQuery) -> lp.LValues:
        scope = Scope()
        width = len(node.rows[0])
        bound_rows = []
        for row in node.rows:
            if len(row) != width:
                raise BindError("VALUES rows differ in arity")
            bound_rows.append(
                tuple(self._bind_expr(e, scope, allow_agg=False) for e in row)
            )
        column_types: list[Optional[DataType]] = [None] * width
        for row in bound_rows:
            for j, expr in enumerate(row):
                if expr.type is not None:
                    column_types[j] = (
                        expr.type
                        if column_types[j] is None
                        else promote(column_types[j], expr.type)
                    )
        schema = tuple(
            self._fresh_column(f"col{j + 1}", column_types[j]) for j in range(width)
        )
        return lp.LValues(tuple(bound_rows), schema)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def bind_query(
        self, node: ast.QueryNode, ctes: dict[str, _CTEDef]
    ) -> lp.LogicalNode:
        if isinstance(node, ast.ValuesQuery):
            return self._bind_values_query(node)
        ctes = dict(ctes)  # local shadowing
        pending_recursive: list[tuple[_CTEDef, lp.LogicalNode]] = []
        for cte in node.ctes:
            if node.recursive and self._is_self_referencing(cte):
                definition, cte_def = self._bind_recursive_cte(cte, ctes)
                ctes[cte.name.lower()] = cte_def
                pending_recursive.append((cte_def, definition))
            else:
                ctes[cte.name.lower()] = _CTEDef(
                    cte.name.lower(), cte.query, cte.column_names
                )
        from dataclasses import replace as _replace

        if isinstance(node, ast.ValuesQuery):
            return self._bind_values_query(node)
        if isinstance(node, ast.Select):
            if node.ctes:
                node = _replace(node, ctes=(), recursive=False)
            plan = self._bind_select(node, ctes)
        else:
            if node.ctes:
                node = _replace(node, ctes=(), recursive=False)
            plan = self._bind_setop(node, ctes)
            plan = self._apply_order_limit(
                plan, node.order_by, node.limit, node.offset, ctes
            )
        # wrap recursive CTE definitions (innermost last) so the executor
        # materializes them before the body runs
        for cte_def, definition in reversed(pending_recursive):
            plan = lp.LMaterialize(cte_def.name, definition, plan, plan.schema)
        return plan

    @staticmethod
    def _is_self_referencing(cte: ast.CommonTableExpr) -> bool:
        """True when the CTE's query references its own name (recursion)."""
        target = cte.name.lower()

        def in_query(q: ast.QueryNode) -> bool:
            if isinstance(q, ast.SetOp):
                return in_query(q.left) or in_query(q.right)
            return any(in_ref(r) for r in q.from_refs)

        def in_ref(ref: ast.TableRef) -> bool:
            if isinstance(ref, ast.NamedTableRef):
                return ref.name.lower() == target
            if isinstance(ref, ast.DerivedTableRef):
                return in_query(ref.query)
            if isinstance(ref, ast.JoinRef):
                return in_ref(ref.left) or in_ref(ref.right)
            return False

        return in_query(cte.query)

    def _bind_recursive_cte(self, cte: ast.CommonTableExpr, ctes):
        query = cte.query
        if not isinstance(query, ast.SetOp) or query.op != "union":
            raise BindError(
                f"recursive CTE {cte.name!r} must be 'base UNION [ALL] recursive'"
            )
        base_plan = self.bind_query(query.left, ctes)
        names = [c.lower() for c in cte.column_names] or [
            c.name for c in base_plan.schema
        ]
        if len(names) != len(base_plan.schema):
            raise BindError(f"CTE {cte.name!r} column list arity mismatch")
        template = tuple(
            lp.PlanColumn(0, name, col.type, col.nested)
            for name, col in zip(names, base_plan.schema)
        )
        cte_def = _CTEDef(cte.name.lower(), None, tuple(names), template)
        inner_ctes = dict(ctes)
        inner_ctes[cte_def.name] = cte_def
        recursive_plan = self.bind_query(query.right, inner_ctes)
        if len(recursive_plan.schema) != len(base_plan.schema):
            raise BindError(f"recursive CTE {cte.name!r} arity mismatch")
        schema = tuple(
            self._fresh_column(name, col.type, col.nested)
            for name, col in zip(names, base_plan.schema)
        )
        definition = lp.LRecursive(
            cte_def.name, base_plan, recursive_plan, query.all, schema
        )
        cte_def.materialized = True
        return definition, cte_def

    def _bind_setop(self, node: ast.SetOp, ctes) -> lp.LogicalNode:
        def branch(child: ast.QueryNode) -> lp.LogicalNode:
            if isinstance(child, ast.ValuesQuery):
                return self._bind_values_query(child)
            if isinstance(child, ast.Select):
                return self._bind_select(child, ctes)
            return self._bind_setop(child, ctes)

        left = branch(node.left)
        right = branch(node.right)
        if len(left.schema) != len(right.schema):
            raise BindError(f"{node.op.upper()} operands differ in column count")
        out_cols = []
        for lcol, rcol in zip(left.schema, right.schema):
            type_ = lcol.type
            if lcol.type is not None and rcol.type is not None and lcol.type != rcol.type:
                type_ = promote(lcol.type, rcol.type)
            elif lcol.type is None:
                type_ = rcol.type
            out_cols.append(self._fresh_column(lcol.name, type_, lcol.nested))
        if node.op != "union" and node.all:
            raise NotSupportedError(f"{node.op.upper()} ALL is not supported")
        return lp.LSetOp(node.op, node.all, left, right, tuple(out_cols))

    # ------------------------------------------------------------------
    # SELECT core
    # ------------------------------------------------------------------
    def _bind_select(self, node: ast.Select, ctes) -> lp.LogicalNode:
        if node.ctes:
            # a nested WITH inside a set-operation branch
            return self.bind_query(node, ctes)
        scope = Scope()
        plan = self._bind_from(node.from_refs, scope, ctes)

        # --- WHERE: split REACHES predicates from ordinary conjuncts ----
        reaches_nodes: list[ast.Reaches] = []
        plain_conjuncts: list[ast.Expr] = []
        if node.where is not None:
            for conjunct in _split_conjuncts(node.where):
                if isinstance(conjunct, ast.Reaches):
                    reaches_nodes.append(conjunct)
                else:
                    _reject_nested_reaches(conjunct)
                    plain_conjuncts.append(conjunct)
        for conjunct in plain_conjuncts:
            predicate = self._bind_expr(conjunct, scope, allow_agg=False)
            _require_boolean(predicate, "WHERE")
            plan = lp.LFilter(plan, predicate, plan.schema)

        # --- match CHEAPEST SUM items to their REACHES predicate --------
        cheapest_items = self._collect_cheapest(node.items, reaches_nodes)

        # --- bind each REACHES into a graph select -----------------------
        #: binding name -> (cost/path columns per CheapestSum, in order)
        cheapest_columns: dict[int, list[tuple[lp.PlanColumn, Optional[lp.PlanColumn]]]] = {}
        for ridx, reaches in enumerate(reaches_nodes):
            plan = self._bind_graph_select(
                plan, scope, ctes, reaches,
                cheapest_items.get(ridx, ()),
                cheapest_columns.setdefault(ridx, []),
            )

        # --- projection / aggregation ------------------------------------
        has_aggregates = bool(node.group_by) or any(
            _contains_aggregate(item.expr)
            for item in node.items
            if not isinstance(item.expr, (ast.Star, ast.CheapestSum))
        )
        plan = self._bind_projection(
            node, plan, scope, ctes, cheapest_items, cheapest_columns
        )
        if node.distinct:
            plan = lp.LDistinct(plan, plan.schema)
        plan = self._apply_select_order_limit(
            node, plan, scope, allow_hidden=not (node.distinct or has_aggregates)
        )
        return plan

    def _apply_select_order_limit(
        self, node: ast.Select, plan: lp.LogicalNode, scope: Scope, *, allow_hidden: bool
    ) -> lp.LogicalNode:
        """ORDER BY over a SELECT may reference input columns that are not
        in the select list; those are carried as hidden sort columns and
        projected away afterwards (not available under DISTINCT or
        aggregation, per standard SQL)."""
        if node.order_by:
            keys: list[lp.SortKey] = []
            hidden_exprs: list[bx.BoundExpr] = []
            hidden_cols: list[lp.PlanColumn] = []
            for item in node.order_by:
                try:
                    bound = self._bind_order_expr(item.expr, plan)
                except BindError:
                    is_positional = isinstance(item.expr, ast.Literal) and isinstance(
                        item.expr.value, int
                    )
                    if is_positional or not (
                        allow_hidden and isinstance(plan, lp.LProject)
                    ):
                        raise
                    from_bound = self._bind_expr(item.expr, scope, allow_agg=False)
                    hidden = self._fresh_column("_order", from_bound.type)
                    hidden_exprs.append(from_bound)
                    hidden_cols.append(hidden)
                    bound = bx.BColumn(hidden.col_id, hidden.type, hidden.name)
                keys.append(lp.SortKey(bound, item.ascending))
            if hidden_exprs:
                visible = plan.schema
                widened = lp.LProject(
                    plan.input,
                    plan.exprs + tuple(hidden_exprs),
                    visible + tuple(hidden_cols),
                )
                sorted_plan = lp.LSort(widened, tuple(keys), widened.schema)
                plan = lp.LProject(
                    sorted_plan,
                    tuple(bx.BColumn(c.col_id, c.type, c.name) for c in visible),
                    visible,
                )
            else:
                plan = lp.LSort(plan, tuple(keys), plan.schema)
        if node.limit is not None or node.offset is not None:
            plan = lp.LLimit(plan, node.limit, node.offset or 0, plan.schema)
        return plan

    # ------------------------------------------------------------------
    def _bind_from(
        self, refs: tuple[ast.TableRef, ...], scope: Scope, ctes
    ) -> lp.LogicalNode:
        if not refs:
            return lp.LSingleRow()
        plan: Optional[lp.LogicalNode] = None
        for ref in refs:
            plan = self._combine_from_item(plan, ref, scope, ctes)
        return plan

    def _combine_from_item(
        self, left: Optional[lp.LogicalNode], ref: ast.TableRef, scope: Scope, ctes
    ) -> lp.LogicalNode:
        if isinstance(ref, ast.UnnestRef):
            if left is None:
                raise BindError("UNNEST cannot be the first FROM item")
            return self._bind_unnest(left, ref, scope, outer=False)
        if isinstance(ref, ast.JoinRef):
            return self._bind_join_tree(left, ref, scope, ctes)
        plan, alias, columns = self._bind_table_primary(ref, scope, ctes)
        scope.add(alias, columns)
        if left is None:
            return plan
        schema = left.schema + plan.schema
        return lp.LJoin(left, plan, "cross", None, schema)

    def _bind_join_tree(
        self, left: Optional[lp.LogicalNode], ref: ast.JoinRef, scope: Scope, ctes
    ) -> lp.LogicalNode:
        # left-deep: bind ref.left first (possibly another JoinRef)
        if isinstance(ref.left, ast.JoinRef):
            left_plan = self._bind_join_tree(left, ref.left, scope, ctes)
        else:
            left_plan = self._combine_from_item(left, ref.left, scope, ctes)
        if isinstance(ref.right, ast.UnnestRef):
            if ref.kind not in ("left", "inner", "cross"):
                raise BindError("UNNEST join must be INNER or LEFT")
            if ref.condition is not None and not (
                isinstance(ref.condition, ast.Literal) and ref.condition.value is True
            ):
                raise BindError("a join with UNNEST only supports ON TRUE")
            return self._bind_unnest(
                left_plan, ref.right, scope, outer=(ref.kind == "left")
            )
        right_plan, alias, columns = self._bind_table_primary(ref.right, scope, ctes)
        scope.add(alias, columns)
        schema = left_plan.schema + right_plan.schema
        if ref.kind == "cross":
            return lp.LJoin(left_plan, right_plan, "cross", None, schema)
        if ref.kind == "left":
            out = left_plan.schema + tuple(
                lp.PlanColumn(c.col_id, c.name, c.type, c.nested)
                for c in right_plan.schema
            )
            schema = out
        condition = None
        if ref.condition is not None:
            condition = self._bind_expr(ref.condition, scope, allow_agg=False)
            _require_boolean(condition, "JOIN ... ON")
        elif ref.kind != "cross":
            raise BindError("JOIN requires an ON condition")
        if ref.kind == "right":
            # A RIGHT JOIN B == B LEFT JOIN A, re-projected to the
            # original column order (left's columns first)
            swapped_schema = right_plan.schema + left_plan.schema
            swapped = lp.LJoin(
                right_plan, left_plan, "left", condition, swapped_schema
            )
            exprs = tuple(
                bx.BColumn(c.col_id, c.type, c.name) for c in schema
            )
            return lp.LProject(swapped, exprs, schema)
        return lp.LJoin(left_plan, right_plan, ref.kind, condition, schema)

    def _bind_table_primary(self, ref: ast.TableRef, scope: Scope, ctes):
        """Returns (plan, alias, scope columns)."""
        if isinstance(ref, ast.NamedTableRef):
            name = ref.name.lower()
            if name in ctes:
                return self._bind_cte_reference(ctes[name], ref.alias)
            table = self.catalog.get(name)
            columns = tuple(
                self._fresh_column(c.name, c.type) for c in table.schema
            )
            plan = lp.LScan(name, columns)
            return plan, (ref.alias or name), columns
        if isinstance(ref, ast.DerivedTableRef):
            plan = self.bind_query(ref.query, ctes)
            columns = plan.schema
            if ref.column_aliases:
                if len(ref.column_aliases) != len(columns):
                    raise BindError("derived table column alias arity mismatch")
                columns = tuple(
                    lp.PlanColumn(c.col_id, a.lower(), c.type, c.nested)
                    for c, a in zip(columns, ref.column_aliases)
                )
            return plan, ref.alias, columns
        raise BindError(f"unsupported FROM item: {type(ref).__name__}")

    def _bind_cte_reference(self, cte_def: _CTEDef, alias: Optional[str]):
        name = cte_def.name
        if cte_def.recursive_schema is not None and not cte_def.materialized:
            # reference to the working table inside the recursive branch
            columns = tuple(
                self._fresh_column(c.name, c.type, c.nested)
                for c in cte_def.recursive_schema
            )
            return lp.LCTERef(name, columns), (alias or name), columns
        if cte_def.materialized:
            # reference to the completed recursive CTE in the outer body
            columns = tuple(
                self._fresh_column(c.name, c.type, c.nested)
                for c in cte_def.recursive_schema
            )
            return lp.LCTERef(name, columns), (alias or name), columns
        # ordinary CTE: inline by re-binding its AST (fresh col ids per use)
        plan = self.bind_query(cte_def.query, {})
        columns = plan.schema
        if cte_def.column_names:
            if len(cte_def.column_names) != len(columns):
                raise BindError(f"CTE {name!r} column list arity mismatch")
            columns = tuple(
                lp.PlanColumn(c.col_id, a.lower(), c.type, c.nested)
                for c, a in zip(columns, cte_def.column_names)
            )
        return plan, (alias or name), columns

    # ------------------------------------------------------------------
    # UNNEST (Section 3.3)
    # ------------------------------------------------------------------
    def _bind_unnest(
        self, input_plan: lp.LogicalNode, ref: ast.UnnestRef, scope: Scope, outer: bool
    ) -> lp.LogicalNode:
        operand = self._bind_expr(ref.operand, scope, allow_agg=False)
        if operand.type != DataType.NESTED_TABLE:
            raise BindError("UNNEST requires a nested-table expression")
        if not isinstance(operand, bx.BColumn):
            raise BindError("UNNEST operand must be a nested-table column")
        nested = self._nested_schema_of(input_plan.schema, operand.col_id)
        unnested = tuple(
            self._fresh_column(c.name, c.type, c.nested) for c in nested
        )
        ordinality = None
        if ref.with_ordinality:
            ordinality = self._fresh_column("ordinality", DataType.BIGINT)
        out_cols = unnested + ((ordinality,) if ordinality else ())
        schema = input_plan.schema + out_cols
        scope.add(ref.alias, out_cols)
        return lp.LUnnest(
            input_plan, operand, ordinality, outer or ref.outer, unnested, schema
        )

    @staticmethod
    def _nested_schema_of(
        schema: tuple[lp.PlanColumn, ...], col_id: int
    ) -> tuple[lp.PlanColumn, ...]:
        for col in schema:
            if col.col_id == col_id:
                if not col.nested:
                    raise BindError(
                        "nested-table column lost its row schema (internal)"
                    )
                return col.nested
        raise BindError("UNNEST operand is not available in this scope")

    # ------------------------------------------------------------------
    # REACHES + CHEAPEST SUM (Section 2)
    # ------------------------------------------------------------------
    def _collect_cheapest(
        self,
        items: tuple[ast.SelectItem, ...],
        reaches_nodes: list[ast.Reaches],
    ) -> dict[int, tuple[tuple[ast.SelectItem, int], ...]]:
        """Map REACHES index -> ordered (select item, item position) pairs."""
        bindings: dict[Optional[str], int] = {}
        for i, r in enumerate(reaches_nodes):
            if r.binding is not None:
                key = r.binding.lower()
                if key in bindings:
                    raise BindError(f"duplicate edge-table binding {r.binding!r}")
                bindings[key] = i
        out: dict[int, list[tuple[ast.SelectItem, int]]] = {}
        for pos, item in enumerate(items):
            if isinstance(item.expr, ast.CheapestSum):
                cheapest = item.expr
                if not reaches_nodes:
                    raise BindError(
                        "CHEAPEST SUM requires a REACHES predicate in WHERE"
                    )
                if cheapest.binding is not None:
                    key = cheapest.binding.lower()
                    if key not in bindings:
                        raise BindError(
                            f"CHEAPEST SUM refers to unknown edge binding "
                            f"{cheapest.binding!r}"
                        )
                    ridx = bindings[key]
                elif len(reaches_nodes) == 1:
                    ridx = 0
                else:
                    raise BindError(
                        "CHEAPEST SUM must name its edge binding when the "
                        "query has multiple REACHES predicates"
                    )
                out.setdefault(ridx, []).append((item, pos))
            else:
                _reject_nested_cheapest(item.expr)
        return {k: tuple(v) for k, v in out.items()}

    def _bind_graph_select(
        self,
        plan: lp.LogicalNode,
        scope: Scope,
        ctes,
        reaches: ast.Reaches,
        cheapest_items: tuple[tuple[ast.SelectItem, int], ...],
        out_columns: list[tuple[lp.PlanColumn, Optional[lp.PlanColumn]]],
    ) -> lp.LogicalNode:
        source = tuple(
            self._bind_expr(e, scope, allow_agg=False) for e in reaches.source
        )
        dest = tuple(self._bind_expr(e, scope, allow_agg=False) for e in reaches.dest)
        # bind the edge table expression in its own scope
        edge_scope = Scope()
        edge_ref = reaches.edge
        if isinstance(edge_ref, ast.DerivedTableRef):
            edge_ref = ast.DerivedTableRef(
                edge_ref.query, alias=(reaches.binding or "edge")
            )
        edge_plan, edge_alias, edge_columns = self._bind_table_primary(
            edge_ref, edge_scope, ctes
        )
        if reaches.binding:
            edge_alias = reaches.binding
        edge_scope.add(edge_alias, edge_columns)
        src_cols = tuple(
            _find_edge_column(edge_columns, name) for name in reaches.src_cols
        )
        dst_cols = tuple(
            _find_edge_column(edge_columns, name) for name in reaches.dst_cols
        )
        # "The types for the attributes E.S, E.D, VP.X, VP.Y must match,
        # otherwise a semantic error arises."  (checked per key attribute)
        for x, y, s, d in zip(source, dest, src_cols, dst_cols):
            _check_endpoint_types(x, y, s, d)

        cheapest_specs: list[lp.CheapestSpec] = []
        for item, _pos in cheapest_items:
            cheapest_ast: ast.CheapestSum = item.expr
            weight = self._bind_expr(cheapest_ast.weight, edge_scope, allow_agg=False)
            if weight.type is not None and not weight.type.is_numeric:
                raise BindError("CHEAPEST SUM weight expression must be numeric")
            constant_one = isinstance(weight, bx.BLiteral) and weight.value == 1
            cost_type = weight.type or DataType.BIGINT
            if constant_one:
                cost_type = DataType.BIGINT  # hop count
            names = _cheapest_output_names(item)
            cost_col = self._fresh_column(names[0], cost_type)
            path_col = None
            if len(names) > 1:
                path_col = self._fresh_column(
                    names[1], DataType.NESTED_TABLE, nested=edge_columns
                )
            cheapest_specs.append(
                lp.CheapestSpec(weight, constant_one, cost_col, path_col)
            )
            out_columns.append((cost_col, path_col))

        spec = lp.GraphSpec(
            source=source,
            dest=dest,
            src_cols=src_cols,
            dst_cols=dst_cols,
            binding=reaches.binding,
            cheapest=tuple(cheapest_specs),
        )
        extra = tuple(
            col
            for cs in cheapest_specs
            for col in ((cs.cost,) if cs.path is None else (cs.cost, cs.path))
        )
        return lp.LGraphSelect(plan, edge_plan, spec, plan.schema + extra)

    # ------------------------------------------------------------------
    # projection and aggregation
    # ------------------------------------------------------------------
    def _bind_projection(
        self,
        node: ast.Select,
        plan: lp.LogicalNode,
        scope: Scope,
        ctes,
        cheapest_items,
        cheapest_columns,
    ) -> lp.LogicalNode:
        # positions of select items that are CHEAPEST SUM, mapped to their
        # already-created graph columns
        cheapest_by_pos: dict[int, tuple[lp.PlanColumn, Optional[lp.PlanColumn]]] = {}
        for ridx, items in cheapest_items.items():
            for (item, pos), cols in zip(items, cheapest_columns[ridx]):
                cheapest_by_pos[pos] = cols

        # expand stars and gather (expr_ast, name) for every output column
        output_items: list[tuple[Optional[ast.Expr], str, Optional[lp.PlanColumn]]] = []
        for pos, item in enumerate(node.items):
            if isinstance(item.expr, ast.Star):
                columns = (
                    scope.columns_of(item.expr.table)
                    if item.expr.table
                    else scope.all_columns()
                )
                if not columns:
                    raise BindError("SELECT * with no FROM clause")
                for col in columns:
                    output_items.append((None, col.name, col))
            elif pos in cheapest_by_pos:
                cost_col, path_col = cheapest_by_pos[pos]
                output_items.append((None, cost_col.name, cost_col))
                if path_col is not None:
                    output_items.append((None, path_col.name, path_col))
            else:
                name = item.alias or _default_name(item.expr)
                output_items.append((item.expr, name.lower(), None))

        has_aggregates = any(
            expr is not None and _contains_aggregate(expr)
            for expr, _, _ in output_items
        ) or (node.having is not None and _contains_aggregate(node.having))
        if node.group_by or has_aggregates:
            return self._bind_aggregate_projection(node, plan, scope, output_items)

        exprs: list[bx.BoundExpr] = []
        out_schema: list[lp.PlanColumn] = []
        for expr_ast, name, precomputed in output_items:
            if precomputed is not None:
                exprs.append(
                    bx.BColumn(precomputed.col_id, precomputed.type, precomputed.name)
                )
                out_schema.append(
                    lp.PlanColumn(
                        self._fresh_id(), name, precomputed.type, precomputed.nested
                    )
                )
            else:
                bound = self._bind_expr(expr_ast, scope, allow_agg=False)
                exprs.append(bound)
                out_schema.append(self._fresh_column(name, bound.type))
        if node.having is not None:
            raise BindError("HAVING requires GROUP BY or aggregates")
        return lp.LProject(plan, tuple(exprs), tuple(out_schema))

    def _bind_aggregate_projection(self, node, plan, scope, output_items):
        group_bound: list[bx.BoundExpr] = []
        group_cols: list[lp.PlanColumn] = []
        for expr_ast in node.group_by:
            bound = self._bind_expr(expr_ast, scope, allow_agg=False)
            group_bound.append(bound)
            group_cols.append(self._fresh_column(_default_name(expr_ast), bound.type))
        aggs: list[lp.AggSpec] = []

        def lower(expr: ast.Expr) -> bx.BoundExpr:
            """Replace aggregate calls with BAggValue; bind the rest."""
            if isinstance(expr, ast.FuncCall) and expr.name in _AGG_FUNCS:
                return self._bind_aggregate(expr, scope, aggs)
            # group expression matching: an outer expression identical to a
            # group-by expression becomes a reference to its column
            bound_maybe = self._try_bind(expr, scope)
            if bound_maybe is not None:
                for gb_expr, gb_col in zip(group_bound, group_cols):
                    if bound_maybe == gb_expr:
                        return bx.BColumn(gb_col.col_id, gb_col.type, gb_col.name)
            return self._lower_composite(expr, scope, lower)

        exprs: list[bx.BoundExpr] = []
        out_schema: list[lp.PlanColumn] = []
        for expr_ast, name, precomputed in output_items:
            if precomputed is not None:
                raise BindError(
                    "CHEAPEST SUM cannot be combined with GROUP BY aggregation"
                )
            bound = lower(expr_ast)
            _validate_grouped(bound, group_cols, aggs)
            exprs.append(bound)
            out_schema.append(self._fresh_column(name, bound.type))
        having = None
        if node.having is not None:
            # lower HAVING before building the aggregate so any aggregates
            # it introduces are part of the LAggregate's spec list
            having = lower(node.having)
            _require_boolean(having, "HAVING")
            _validate_grouped(having, group_cols, aggs)
        agg_schema = tuple(group_cols) + tuple(a.output for a in aggs)
        result: lp.LogicalNode = lp.LAggregate(
            plan, tuple(group_bound), tuple(aggs), agg_schema
        )
        if having is not None:
            result = lp.LFilter(result, having, result.schema)
        return lp.LProject(result, tuple(exprs), tuple(out_schema))

    def _bind_aggregate(self, call: ast.FuncCall, scope: Scope, aggs) -> bx.BAggValue:
        func = call.name
        if len(call.args) != 1:
            raise BindError(f"{func}() takes exactly one argument")
        arg_ast = call.args[0]
        if isinstance(arg_ast, ast.Star):
            if func != "count":
                raise BindError(f"{func}(*) is not valid")
            output = self._fresh_column("count", DataType.BIGINT)
            aggs.append(lp.AggSpec("count_star", None, False, output))
            return bx.BAggValue(output.col_id, output.type, output.name)
        if _contains_aggregate(arg_ast):
            raise BindError("aggregate calls cannot be nested")
        arg = self._bind_expr(arg_ast, scope, allow_agg=False)
        if func == "count":
            result_type = DataType.BIGINT
        elif func == "avg":
            result_type = DataType.DOUBLE
        elif func == "sum":
            if arg.type is not None and not arg.type.is_numeric:
                raise BindError("SUM requires a numeric argument")
            result_type = (
                DataType.DOUBLE
                if arg.type == DataType.DOUBLE
                else DataType.BIGINT
            )
        else:  # min / max
            result_type = arg.type
        output = self._fresh_column(func, result_type)
        aggs.append(lp.AggSpec(func, arg, call.distinct, output))
        return bx.BAggValue(output.col_id, output.type, output.name)

    def _lower_composite(self, expr: ast.Expr, scope: Scope, lower):
        """Bind a non-aggregate AST node whose children may hold aggregates."""
        if isinstance(expr, ast.Binary):
            left = lower(expr.left)
            right = lower(expr.right)
            return self._make_call(expr.op, (left, right))
        if isinstance(expr, ast.Unary):
            operand = lower(expr.operand)
            op = "neg" if expr.op == "-" else expr.op
            return self._make_call(op, (operand,))
        if isinstance(expr, ast.Cast):
            operand = lower(expr.operand)
            return bx.BCast(operand, parse_type_name(expr.type_name))
        if isinstance(expr, ast.IsNull):
            return bx.BIsNull(lower(expr.operand), expr.negated)
        if isinstance(expr, ast.Case):
            return self._bind_case(expr, scope, lower)
        return self._bind_expr(expr, scope, allow_agg=False)

    # ------------------------------------------------------------------
    # ORDER BY / LIMIT
    # ------------------------------------------------------------------
    def _apply_order_limit(self, plan, order_by, limit, offset, ctes):
        if order_by:
            keys = []
            for item in order_by:
                keys.append(
                    lp.SortKey(self._bind_order_expr(item.expr, plan), item.ascending)
                )
            plan = lp.LSort(plan, tuple(keys), plan.schema)
        if limit is not None or offset is not None:
            plan = lp.LLimit(plan, limit, offset or 0, plan.schema)
        return plan

    def _bind_order_expr(self, expr: ast.Expr, plan: lp.LogicalNode) -> bx.BoundExpr:
        """ORDER BY resolves positions and names against the output schema."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(plan.schema):
                raise BindError(f"ORDER BY position {position} out of range")
            col = plan.schema[position - 1]
            return bx.BColumn(col.col_id, col.type, col.name)
        output_scope = Scope()
        output_scope.add(None, plan.schema)
        try:
            return self._bind_expr(expr, output_scope, allow_agg=False)
        except BindError:
            # a qualified reference (R.s) matches the output column `s`
            # when the bare name is unambiguous in the select list
            if isinstance(expr, ast.ColumnRef) and expr.table is not None:
                return self._bind_expr(
                    ast.ColumnRef(None, expr.name), output_scope, allow_agg=False
                )
            raise

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _try_bind(self, expr: ast.Expr, scope: Scope) -> Optional[bx.BoundExpr]:
        try:
            return self._bind_expr(expr, scope, allow_agg=False)
        except BindError:
            return None

    def _bind_expr(self, expr: ast.Expr, scope: Scope, *, allow_agg: bool) -> bx.BoundExpr:
        if isinstance(expr, ast.Literal):
            value = expr.value
            if value is None:
                return bx.BLiteral(None, None)
            from ..storage import infer_literal_type

            return bx.BLiteral(value, infer_literal_type(value))
        if isinstance(expr, ast.Param):
            return bx.BParam(expr.index)
        if isinstance(expr, ast.ColumnRef):
            col = scope.resolve(expr.table, expr.name)
            return bx.BColumn(col.col_id, col.type, col.name)
        if isinstance(expr, ast.Star):
            raise BindError("'*' is only valid in SELECT lists or COUNT(*)")
        if isinstance(expr, ast.Unary):
            operand = self._bind_expr(expr.operand, scope, allow_agg=allow_agg)
            op = "neg" if expr.op == "-" else expr.op
            return self._make_call(op, (operand,))
        if isinstance(expr, ast.Binary):
            left = self._bind_expr(expr.left, scope, allow_agg=allow_agg)
            right = self._bind_expr(expr.right, scope, allow_agg=allow_agg)
            return self._make_call(expr.op, (left, right))
        if isinstance(expr, ast.IsNull):
            return bx.BIsNull(
                self._bind_expr(expr.operand, scope, allow_agg=allow_agg), expr.negated
            )
        if isinstance(expr, ast.Between):
            operand = self._bind_expr(expr.operand, scope, allow_agg=allow_agg)
            low = self._bind_expr(expr.low, scope, allow_agg=allow_agg)
            high = self._bind_expr(expr.high, scope, allow_agg=allow_agg)
            test = self._make_call(
                "and",
                (self._make_call(">=", (operand, low)),
                 self._make_call("<=", (operand, high))),
            )
            return self._make_call("not", (test,)) if expr.negated else test
        if isinstance(expr, ast.InList):
            operand = self._bind_expr(expr.operand, scope, allow_agg=allow_agg)
            items = tuple(
                self._bind_expr(e, scope, allow_agg=allow_agg) for e in expr.items
            )
            return bx.BInList(operand, items, expr.negated)
        if isinstance(expr, ast.Like):
            operand = self._bind_expr(expr.operand, scope, allow_agg=allow_agg)
            pattern = self._bind_expr(expr.pattern, scope, allow_agg=allow_agg)
            call = self._make_call("like", (operand, pattern))
            return self._make_call("not", (call,)) if expr.negated else call
        if isinstance(expr, ast.Cast):
            operand = self._bind_expr(expr.operand, scope, allow_agg=allow_agg)
            return bx.BCast(operand, parse_type_name(expr.type_name))
        if isinstance(expr, ast.Case):
            return self._bind_case(
                expr, scope, lambda e: self._bind_expr(e, scope, allow_agg=allow_agg)
            )
        if isinstance(expr, ast.FuncCall):
            return self._bind_func(expr, scope, allow_agg=allow_agg)
        if isinstance(expr, ast.ScalarSubquery):
            plan = self.bind_query(expr.query, {})
            if len(plan.schema) != 1:
                raise BindError("scalar subquery must return exactly one column")
            return bx.BScalarSubquery(plan, plan.schema[0].type)
        if isinstance(expr, ast.InSubquery):
            operand = self._bind_expr(expr.operand, scope, allow_agg=allow_agg)
            plan = self.bind_query(expr.query, {})
            if len(plan.schema) != 1:
                raise BindError("IN subquery must return exactly one column")
            return bx.BInSubquery(operand, plan, expr.negated)
        if isinstance(expr, ast.Exists):
            plan = self.bind_query(expr.query, {})
            return bx.BExists(plan)
        if isinstance(expr, ast.TupleExpr):
            raise BindError(
                "tuple expressions are only valid as REACHES endpoints"
            )
        if isinstance(expr, ast.CheapestSum):
            raise BindError(
                "CHEAPEST SUM is only allowed as a top-level projection item"
            )
        if isinstance(expr, ast.Reaches):
            raise BindError(
                "REACHES must be a top-level conjunct of the WHERE clause"
            )
        raise NotSupportedError(f"unsupported expression: {type(expr).__name__}")

    def _bind_case(self, expr: ast.Case, scope: Scope, bind) -> bx.BCase:
        whens: list[tuple[bx.BoundExpr, bx.BoundExpr]] = []
        operand = bind(expr.operand) if expr.operand is not None else None
        for cond_ast, result_ast in expr.whens:
            cond = bind(cond_ast)
            if operand is not None:
                cond = self._make_call("=", (operand, cond))
            else:
                _require_boolean(cond, "CASE WHEN")
            whens.append((cond, bind(result_ast)))
        else_ = bind(expr.else_) if expr.else_ is not None else None
        result_type = None
        for _, result in whens:
            if result.type is not None:
                result_type = (
                    result.type
                    if result_type is None
                    else promote(result_type, result.type)
                )
        if else_ is not None and else_.type is not None:
            result_type = (
                else_.type if result_type is None else promote(result_type, else_.type)
            )
        return bx.BCase(tuple(whens), else_, result_type)

    def _bind_func(self, call: ast.FuncCall, scope: Scope, *, allow_agg: bool):
        name = call.name
        if name in _AGG_FUNCS:
            raise BindError(
                f"aggregate {name}() is not allowed here"
            )
        if name not in _SCALAR_FUNCS:
            raise BindError(f"unknown function {name!r}")
        arity, fixed_type = _SCALAR_FUNCS[name]
        if arity >= 0 and len(call.args) != arity:
            raise BindError(f"{name}() takes {arity} argument(s)")
        args = tuple(
            self._bind_expr(a, scope, allow_agg=allow_agg) for a in call.args
        )
        if fixed_type is not None:
            return bx.BCall(name, args, fixed_type)
        # result type follows the (promoted) argument types
        result = None
        for arg in args:
            if arg.type is not None:
                result = arg.type if result is None else promote(result, arg.type)
        return bx.BCall(name, args, result)

    def _make_call(self, op: str, args: tuple[bx.BoundExpr, ...]) -> bx.BCall:
        type_ = _infer_call_type(op, args)
        return bx.BCall(op, args, type_)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _split_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.Binary) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _reject_nested_reaches(expr: ast.Expr) -> None:
    """REACHES under OR/NOT etc. has no graph-select form; reject early."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Reaches):
            raise NotSupportedError(
                "REACHES may only appear as a top-level AND conjunct"
            )
        if isinstance(node, ast.Binary):
            stack.extend((node.left, node.right))
        elif isinstance(node, ast.Unary):
            stack.append(node.operand)


def _reject_nested_cheapest(expr: ast.Expr) -> None:
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.CheapestSum):
            raise BindError(
                "CHEAPEST SUM must be a whole projection item, not a sub-expression"
            )
        if isinstance(node, ast.Binary):
            stack.extend((node.left, node.right))
        elif isinstance(node, ast.Unary):
            stack.append(node.operand)
        elif isinstance(node, ast.FuncCall):
            stack.extend(node.args)
        elif isinstance(node, ast.Cast):
            stack.append(node.operand)


def _contains_aggregate(expr: ast.Expr) -> bool:
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.FuncCall):
            if node.name in _AGG_FUNCS:
                return True
            stack.extend(node.args)
        elif isinstance(node, ast.Binary):
            stack.extend((node.left, node.right))
        elif isinstance(node, ast.Unary):
            stack.append(node.operand)
        elif isinstance(node, ast.Cast):
            stack.append(node.operand)
        elif isinstance(node, ast.IsNull):
            stack.append(node.operand)
        elif isinstance(node, ast.Case):
            for cond, result in node.whens:
                stack.extend((cond, result))
            if node.else_ is not None:
                stack.append(node.else_)
    return False


def _validate_grouped(expr: bx.BoundExpr, group_cols, aggs) -> None:
    """Outer expressions may reference only group keys and aggregates."""
    allowed = {c.col_id for c in group_cols} | {a.output.col_id for a in aggs}
    for node in bx.walk(expr):
        if isinstance(node, bx.BColumn) and node.col_id not in allowed:
            raise BindError(
                f"column {node.name!r} must appear in GROUP BY or inside an aggregate"
            )


def _require_boolean(expr: bx.BoundExpr, where: str) -> None:
    if expr.type is not None and expr.type != DataType.BOOLEAN:
        raise BindError(f"{where} predicate must be boolean, got {expr.type}")


def _find_edge_column(columns: tuple[lp.PlanColumn, ...], name: str) -> lp.PlanColumn:
    name = name.lower()
    for col in columns:
        if col.name == name:
            return col
    raise BindError(f"edge table has no column {name!r}")


def _check_endpoint_types(source, dest, src_col, dst_col) -> None:
    types = [src_col.type, dst_col.type, source.type, dest.type]
    known = [t for t in types if t is not None]
    for a in known:
        for b in known:
            # numeric endpoints may mix widths; everything else must match
            if not (a == b or (a.is_numeric and b.is_numeric)):
                raise BindError(
                    f"REACHES endpoint/edge types do not match: {a} vs {b}"
                )
    if src_col.type == DataType.NESTED_TABLE or dst_col.type == DataType.NESTED_TABLE:
        raise BindError("edge keys cannot be nested tables")


def _cheapest_output_names(item: ast.SelectItem) -> tuple[str, ...]:
    """Output name(s) of a CHEAPEST SUM item.

    ``AS (cost, path)`` yields two names (cost and path); a single alias
    names the cost; the default name is ``cheapest_sum``.
    """
    if item.alias_list:
        if len(item.alias_list) > 2:
            raise BindError(
                "CHEAPEST SUM AS (...) takes at most two identifiers (cost, path)"
            )
        return tuple(a.lower() for a in item.alias_list)
    if item.alias:
        return (item.alias.lower(),)
    return ("cheapest_sum",)


def _default_name(expr: ast.Expr) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        return expr.name
    if isinstance(expr, ast.CheapestSum):
        return "cheapest_sum"
    if isinstance(expr, ast.Cast):
        return _default_name(expr.operand)
    return "expr"


def _infer_call_type(op: str, args: tuple[bx.BoundExpr, ...]) -> Optional[DataType]:
    from ..storage import comparable

    types = [a.type for a in args]
    if op in ("and", "or", "not", "like"):
        return DataType.BOOLEAN
    if op in ("=", "<>", "<", "<=", ">", ">="):
        left, right = types
        if left is not None and right is not None and not comparable(left, right):
            # a date literal written as a string compares against DATE
            if {left, right} != {DataType.DATE, DataType.VARCHAR}:
                raise BindError(f"cannot compare {left} with {right}")
        return DataType.BOOLEAN
    if op == "||":
        return DataType.VARCHAR
    if op == "neg":
        return types[0]
    if op in ("+", "-", "*", "/", "%"):
        left, right = types
        if left is None or right is None:
            return left or right
        if not (left.is_numeric and right.is_numeric):
            # DATE ± INTEGER arithmetic
            if op in ("+", "-") and left == DataType.DATE and right.is_integral:
                return DataType.DATE
            if op == "-" and left == DataType.DATE and right == DataType.DATE:
                return DataType.BIGINT
            raise BindError(f"operator {op!r} requires numeric operands")
        if op == "/":
            # like the evaluator, division always yields a double
            return DataType.DOUBLE
        return promote(left, right)
    return None
