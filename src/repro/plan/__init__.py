"""Query planning: bound expressions, logical operators (including the
paper's graph select / graph join), semantic binder, the cost-based
optimizer and the physical plan layer it lowers into."""

from . import exprs, logical, physical
from .binder import (
    Binder,
    BoundAnalyze,
    BoundBegin,
    BoundCommit,
    BoundCopy,
    BoundCreateGraphIndex,
    BoundCreateTable,
    BoundCreateTableAs,
    BoundDelete,
    BoundDropGraphIndex,
    BoundDropTable,
    BoundExplain,
    BoundInsert,
    BoundQuery,
    BoundRollback,
    BoundUpdate,
)
from .logical import explain
from .optimizer import Estimator, lower_plan, optimize
from .physical import PhysicalNode, explain as explain_physical
from .rewriter import rewrite

__all__ = [
    "exprs",
    "logical",
    "physical",
    "Binder",
    "BoundAnalyze",
    "BoundBegin",
    "BoundCommit",
    "BoundRollback",
    "BoundCopy",
    "BoundCreateGraphIndex",
    "BoundCreateTable",
    "BoundCreateTableAs",
    "BoundDelete",
    "BoundUpdate",
    "BoundDropGraphIndex",
    "BoundDropTable",
    "BoundExplain",
    "BoundInsert",
    "BoundQuery",
    "Estimator",
    "PhysicalNode",
    "explain",
    "explain_physical",
    "lower_plan",
    "optimize",
    "rewrite",
]
