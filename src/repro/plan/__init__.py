"""Query planning: bound expressions, logical operators (including the
paper's graph select / graph join), semantic binder and rewriter."""

from . import exprs, logical
from .binder import (
    Binder,
    BoundCreateGraphIndex,
    BoundCreateTable,
    BoundCreateTableAs,
    BoundDelete,
    BoundDropGraphIndex,
    BoundDropTable,
    BoundExplain,
    BoundInsert,
    BoundQuery,
    BoundUpdate,
)
from .logical import explain
from .rewriter import rewrite

__all__ = [
    "exprs",
    "logical",
    "Binder",
    "BoundCreateGraphIndex",
    "BoundCreateTable",
    "BoundCreateTableAs",
    "BoundDelete",
    "BoundUpdate",
    "BoundDropGraphIndex",
    "BoundDropTable",
    "BoundExplain",
    "BoundInsert",
    "BoundQuery",
    "explain",
    "rewrite",
]
