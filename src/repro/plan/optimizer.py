"""The cost-based optimizer: logical rewriting, statistics-driven join
ordering and lowering to the physical plan.

The pipeline replaces the old ``parse → bind → rewrite →
interpret-logical`` stack with ``parse → bind → optimize →
physical-plan → execute``:

1. **Pushdown passes** (fixpoint, on the logical plan) generalize the
   paper's Section-3.1 rewriter: filters move through inner joins and
   cross products, below set operations, sorts, DISTINCT, projections
   and aggregations, and — the paper-specific payoff — into the inputs
   of graph select / graph join, so the graph runtime solves shortest
   paths only for pre-filtered endpoint rows.  The legacy graph-join
   unfolding rule ("a cross product plus a graph select") runs in the
   same fixpoint.
2. **Join reordering**: maximal inner/cross-join regions of three or
   more relations are flattened and rebuilt greedily, smallest
   estimated intermediate first, using table statistics
   (:mod:`repro.storage.stats`) for equi-join selectivities.
3. **Lowering** produces :mod:`repro.plan.physical` operators: hash
   joins carry their key pairs and a build side chosen by estimated
   input size; scans are narrowed to the referenced columns (projection
   pruning); every node gets an estimated cardinality and cumulative
   cost.  Subquery plans inside expressions are optimized recursively.

``optimize(plan, catalog, stats)`` is the only entry point the engine
uses; ``enabled=False`` lowers through the legacy rewriter only (same
physical execution, no statistics-driven decisions), which the
equivalence oracle and the benchmarks use as the baseline.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import replace
from typing import Callable, Optional

from ..storage import DataType
from ..storage.zonemap import ZonePredicate
from . import exprs as bx
from . import logical as lp
from . import physical as pp
from .rewriter import rewrite as legacy_rewrite

#: Fallback selectivities when statistics cannot answer.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Join regions of at least this many relations are reordered.
MIN_REORDER_RELATIONS = 3

#: Shared cardinality heuristics — used by BOTH the logical estimator
#: (join reordering) and the physical lowering (est_rows in EXPLAIN /
#: the profiler), so the two cost models cannot drift apart.
GRAPH_SELECT_SELECTIVITY = 0.5
GRAPH_JOIN_SELECTIVITY = 0.25
RECURSIVE_FANOUT = 8.0
UNNEST_FANOUT = 4.0
CTE_REF_DEFAULT_ROWS = 100.0


# ---------------------------------------------------------------------------
# expression utilities
# ---------------------------------------------------------------------------
def split_conjuncts(expr: bx.BoundExpr) -> list[bx.BoundExpr]:
    """Flatten a conjunction into its parts."""
    if isinstance(expr, bx.BCall) and expr.op == "and":
        out: list[bx.BoundExpr] = []
        for arg in expr.args:
            out.extend(split_conjuncts(arg))
        return out
    return [expr]


def and_all(conjuncts: list[bx.BoundExpr]) -> bx.BoundExpr:
    result = conjuncts[0]
    for part in conjuncts[1:]:
        result = bx.BCall("and", (result, part), DataType.BOOLEAN)
    return result


def map_expr(
    expr: bx.BoundExpr,
    col_map: Optional[dict[int, bx.BoundExpr]] = None,
    plan_fn: Optional[Callable[[object], object]] = None,
) -> bx.BoundExpr:
    """Rebuild an expression, substituting column references through
    ``col_map`` and/or transforming subquery plans through ``plan_fn``."""

    def go(e: bx.BoundExpr) -> bx.BoundExpr:
        if isinstance(e, (bx.BColumn, bx.BAggValue)):
            if col_map is not None and e.col_id in col_map:
                return col_map[e.col_id]
            return e
        if isinstance(e, bx.BCall):
            args = tuple(go(a) for a in e.args)
            return e if args == e.args else replace(e, args=args)
        if isinstance(e, bx.BIsNull):
            operand = go(e.operand)
            return e if operand is e.operand else replace(e, operand=operand)
        if isinstance(e, bx.BInList):
            operand = go(e.operand)
            items = tuple(go(i) for i in e.items)
            if operand is e.operand and items == e.items:
                return e
            return replace(e, operand=operand, items=items)
        if isinstance(e, bx.BCase):
            whens = tuple((go(c), go(r)) for c, r in e.whens)
            else_ = go(e.else_) if e.else_ is not None else None
            return replace(e, whens=whens, else_=else_)
        if isinstance(e, bx.BCast):
            operand = go(e.operand)
            return e if operand is e.operand else replace(e, operand=operand)
        if isinstance(e, bx.BScalarSubquery):
            if plan_fn is not None:
                return replace(e, plan=plan_fn(e.plan))
            return e
        if isinstance(e, bx.BInSubquery):
            operand = go(e.operand)
            plan = plan_fn(e.plan) if plan_fn is not None else e.plan
            if operand is e.operand and plan is e.plan:
                return e
            return replace(e, operand=operand, plan=plan)
        if isinstance(e, bx.BExists):
            if plan_fn is not None:
                return replace(e, plan=plan_fn(e.plan))
            return e
        return e  # literals, params

    return go(expr)


def _has_subquery(expr: bx.BoundExpr) -> bool:
    return any(
        isinstance(e, (bx.BScalarSubquery, bx.BInSubquery, bx.BExists))
        for e in bx.walk(expr)
    )


def split_equi_condition(
    condition: bx.BoundExpr, left_ids: set[int], right_ids: set[int]
):
    """Extract hashable equi-join pairs from a conjunction.

    Returns (pairs, residual): pairs is a list of (left_expr,
    right_expr), residual the conjuncts that are not simple equalities
    across the two sides.
    """
    pairs: list[tuple[bx.BoundExpr, bx.BoundExpr]] = []
    residual: list[bx.BoundExpr] = []
    for conjunct in split_conjuncts(condition):
        if isinstance(conjunct, bx.BCall) and conjunct.op == "=":
            a, b = conjunct.args
            a_refs = bx.referenced_columns(a)
            b_refs = bx.referenced_columns(b)
            if a_refs <= left_ids and b_refs <= right_ids:
                pairs.append((a, b))
                continue
            if a_refs <= right_ids and b_refs <= left_ids:
                pairs.append((b, a))
                continue
        residual.append(conjunct)
    return pairs, residual


# ---------------------------------------------------------------------------
# column origins (col_id -> base table column), for statistics lookups
# ---------------------------------------------------------------------------
def collect_origins(node, out: Optional[dict[int, tuple[str, str]]] = None):
    """Map every scan-produced col_id to its (table, column) origin."""
    if out is None:
        out = {}
    if isinstance(node, lp.LScan):
        for col in node.schema:
            out[col.col_id] = (node.table, col.name)
    if isinstance(node, lp.LogicalNode):
        for child in node.children:
            collect_origins(child, out)
        for field in dataclasses.fields(node):
            _origins_in_value(getattr(node, field.name), out)
    return out


def _origins_in_value(value, out):
    if isinstance(value, bx.BoundExpr):
        for sub in bx.walk(value):
            if isinstance(sub, (bx.BScalarSubquery, bx.BInSubquery, bx.BExists)):
                collect_origins(sub.plan, out)
    elif isinstance(value, tuple):
        for item in value:
            _origins_in_value(item, out)
    elif dataclasses.is_dataclass(value) and not isinstance(
        value, (lp.LogicalNode, pp.PhysicalNode)
    ):
        for field in dataclasses.fields(value):
            _origins_in_value(getattr(value, field.name), out)


# ---------------------------------------------------------------------------
# cardinality and selectivity estimation
# ---------------------------------------------------------------------------
class Estimator:
    """Selectivity / cardinality estimation over live row counts plus
    (optional) ANALYZE statistics."""

    def __init__(self, catalog, stats=None, origins=None):
        self.catalog = catalog
        self.stats = stats
        self.origins = origins or {}

    # -- base facts ----------------------------------------------------
    def table_rows(self, table: str) -> float:
        try:
            return float(self.catalog.get(table).num_rows)
        except Exception:
            return 1000.0

    def _column_stats(self, col_id: int):
        origin = self.origins.get(col_id)
        if origin is None or self.stats is None:
            return None, origin
        table_stats = self.stats.get(origin[0])
        if table_stats is None:
            return None, origin
        return table_stats.column(origin[1]), origin

    def ndv(self, col_id: int) -> float:
        """Distinct-value estimate for a column (>= 1)."""
        col_stats, origin = self._column_stats(col_id)
        if col_stats is not None and col_stats.distinct > 0:
            return float(col_stats.distinct)
        if origin is not None:
            rows = self.table_rows(origin[0])
            return max(1.0, min(rows, 10.0 + rows / 10.0))
        return 10.0

    def null_fraction(self, col_id: int) -> float:
        col_stats, origin = self._column_stats(col_id)
        if col_stats is None or origin is None:
            return 0.1
        rows = max(self.table_rows(origin[0]), 1.0)
        return min(1.0, col_stats.null_count / rows)

    # -- predicate selectivity ----------------------------------------
    def selectivity(self, expr: bx.BoundExpr) -> float:
        if isinstance(expr, bx.BLiteral):
            if expr.value is True:
                return 1.0
            if expr.value is False or expr.value is None:
                return 0.0
            return DEFAULT_SELECTIVITY
        if isinstance(expr, bx.BIsNull):
            frac = self._operand_null_fraction(expr.operand)
            return (1.0 - frac) if expr.negated else frac
        if isinstance(expr, bx.BInList):
            eq = self._eq_selectivity(expr.operand, None)
            sel = min(1.0, len(expr.items) * eq)
            return (1.0 - sel) if expr.negated else sel
        if isinstance(expr, bx.BInSubquery):
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(expr, bx.BExists):
            return 0.5
        if isinstance(expr, bx.BCall):
            op = expr.op
            if op == "and":
                product = 1.0
                for arg in expr.args:
                    product *= self.selectivity(arg)
                return product
            if op == "or":
                a = self.selectivity(expr.args[0])
                b = self.selectivity(expr.args[1])
                return min(1.0, a + b - a * b)
            if op == "not":
                return 1.0 - self.selectivity(expr.args[0])
            if op == "=":
                return self._eq_selectivity(expr.args[0], expr.args[1])
            if op == "<>":
                return 1.0 - self._eq_selectivity(expr.args[0], expr.args[1])
            if op in ("<", "<=", ">", ">="):
                return self._range_selectivity(op, expr.args[0], expr.args[1])
            if op == "like":
                return 0.25
        return DEFAULT_SELECTIVITY

    def _operand_null_fraction(self, operand: bx.BoundExpr) -> float:
        if isinstance(operand, bx.BColumn):
            return self.null_fraction(operand.col_id)
        return 0.1

    def _eq_selectivity(self, a: bx.BoundExpr, b: Optional[bx.BoundExpr]) -> float:
        ndvs = [
            self.ndv(e.col_id)
            for e in (a, b)
            if isinstance(e, (bx.BColumn, bx.BAggValue))
        ]
        if ndvs:
            return 1.0 / max(ndvs)
        return DEFAULT_EQ_SELECTIVITY

    def _range_selectivity(self, op, a: bx.BoundExpr, b: bx.BoundExpr) -> float:
        # normalize to column <op> literal
        if isinstance(b, bx.BColumn) and isinstance(a, bx.BLiteral):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            return self._range_selectivity(flipped, b, a)
        if not (isinstance(a, bx.BColumn) and isinstance(b, bx.BLiteral)):
            return DEFAULT_RANGE_SELECTIVITY
        col_stats, _ = self._column_stats(a.col_id)
        if col_stats is None or not col_stats.has_range:
            return DEFAULT_RANGE_SELECTIVITY
        try:
            lo = float(col_stats.min_value)
            hi = float(col_stats.max_value)
            value = float(b.value)
        except (TypeError, ValueError):
            return DEFAULT_RANGE_SELECTIVITY
        if hi <= lo:
            return DEFAULT_RANGE_SELECTIVITY
        fraction = (value - lo) / (hi - lo)
        if op in (">", ">="):
            fraction = 1.0 - fraction
        return min(1.0, max(0.001, fraction))

    # -- join selectivity ---------------------------------------------
    def conjunct_selectivity(self, conjunct: bx.BoundExpr) -> float:
        """Selectivity of one join conjunct over the pair cross space."""
        if isinstance(conjunct, bx.BCall) and conjunct.op == "=":
            return self._eq_selectivity(conjunct.args[0], conjunct.args[1])
        return self.selectivity(conjunct)

    # -- logical-plan cardinality (used by the join-reorder pass) ------
    def rows(self, node: lp.LogicalNode) -> float:
        if isinstance(node, lp.LScan):
            return self.table_rows(node.table)
        if isinstance(node, lp.LSingleRow):
            return 1.0
        if isinstance(node, lp.LValues):
            return float(len(node.rows))
        if isinstance(node, lp.LCTERef):
            return CTE_REF_DEFAULT_ROWS
        if isinstance(node, lp.LFilter):
            return self.rows(node.input) * self.selectivity(node.predicate)
        if isinstance(node, (lp.LProject, lp.LSort)):
            return self.rows(node.input)
        if isinstance(node, lp.LDistinct):
            return self.rows(node.input)
        if isinstance(node, lp.LLimit):
            child = self.rows(node.input)
            if node.limit is None:
                return max(child - node.offset, 0.0)
            return min(float(node.limit), child)
        if isinstance(node, lp.LAggregate):
            return self.group_estimate(node.group_exprs, self.rows(node.input))
        if isinstance(node, lp.LJoin):
            left = self.rows(node.left)
            right = self.rows(node.right)
            if node.condition is None:
                return left * right
            sel = 1.0
            for conjunct in split_conjuncts(node.condition):
                sel *= self.conjunct_selectivity(conjunct)
            return max(left * right * sel, 1.0)
        if isinstance(node, lp.LSetOp):
            left = self.rows(node.left)
            right = self.rows(node.right)
            if node.op == "union":
                return left + right
            if node.op == "except":
                return left
            return min(left, right)
        if isinstance(node, lp.LRecursive):
            return (self.rows(node.base) + 1.0) * RECURSIVE_FANOUT
        if isinstance(node, lp.LMaterialize):
            return self.rows(node.body)
        if isinstance(node, lp.LGraphSelect):
            return max(self.rows(node.input) * GRAPH_SELECT_SELECTIVITY, 1.0)
        if isinstance(node, lp.LGraphJoin):
            return max(
                self.rows(node.left) * self.rows(node.right) * GRAPH_JOIN_SELECTIVITY,
                1.0,
            )
        if isinstance(node, lp.LUnnest):
            return self.rows(node.input) * UNNEST_FANOUT
        return 100.0

    def group_estimate(self, group_exprs, input_rows: float) -> float:
        if not group_exprs:
            return 1.0
        ndv_product = 1.0
        for expr in group_exprs:
            if isinstance(expr, (bx.BColumn, bx.BAggValue)):
                ndv_product *= self.ndv(expr.col_id)
            else:
                ndv_product *= 10.0
        return max(1.0, min(input_rows, ndv_product))


# ---------------------------------------------------------------------------
# pushdown passes (logical -> logical)
# ---------------------------------------------------------------------------
_CHILD_FIELDS = (
    "input",
    "edge",
    "left",
    "right",
    "base",
    "recursive",
    "definition",
    "body",
)


def _map_children(node: lp.LogicalNode, fn):
    updates = {}
    for name in _CHILD_FIELDS:
        child = getattr(node, name, None)
        if isinstance(child, lp.LogicalNode):
            new_child, changed = fn(child)
            if changed:
                updates[name] = new_child
    if updates:
        return replace(node, **updates), True
    return node, False


def pushdown(plan: lp.LogicalNode) -> lp.LogicalNode:
    """Run all pushdown + unfolding rules to a fixpoint."""
    changed = True
    while changed:
        plan, changed = _push_once(plan)
    return plan


def _push_once(node: lp.LogicalNode) -> tuple[lp.LogicalNode, bool]:
    node, changed = _map_children(node, _push_once)
    rewritten = _apply_rules(node)
    if rewritten is not None:
        return rewritten, True
    return node, changed


def _ids(schema) -> set[int]:
    return {c.col_id for c in schema}


def _filter(child: lp.LogicalNode, predicate: bx.BoundExpr) -> lp.LFilter:
    return lp.LFilter(child, predicate, child.schema)


def _apply_rules(node: lp.LogicalNode) -> Optional[lp.LogicalNode]:
    # rule: graph-join unfolding (the paper's Section-3.1 rewrite)
    if isinstance(node, lp.LGraphSelect) and isinstance(node.input, lp.LJoin):
        join = node.input
        if join.kind == "cross":
            source_refs = set().union(
                *(bx.referenced_columns(e) for e in node.spec.source)
            )
            dest_refs = set().union(
                *(bx.referenced_columns(e) for e in node.spec.dest)
            )
            if source_refs <= _ids(join.left.schema) and dest_refs <= _ids(
                join.right.schema
            ):
                return lp.LGraphJoin(
                    join.left, join.right, node.edge, node.spec, node.schema
                )

    if not isinstance(node, lp.LFilter):
        return None
    predicate = node.predicate
    child = node.input

    # rule: split conjunctions into a stack of single-conjunct filters
    conjuncts = split_conjuncts(predicate)
    if len(conjuncts) > 1:
        for part in conjuncts:
            child = _filter(child, part)
        return child

    refs = bx.referenced_columns(predicate)

    if isinstance(child, lp.LJoin):
        left_ids = _ids(child.left.schema)
        right_ids = _ids(child.right.schema)
        if refs <= left_ids and child.kind in ("cross", "inner", "left"):
            return replace(child, left=_filter(child.left, predicate))
        if refs <= right_ids and child.kind in ("cross", "inner"):
            return replace(child, right=_filter(child.right, predicate))
        if child.kind == "cross":
            # spans both sides: cross product becomes an inner join so the
            # executor can extract hash keys
            return lp.LJoin(
                child.left, child.right, "inner", predicate, child.schema
            )
        if child.kind == "inner":
            condition = bx.BCall(
                "and", (child.condition, predicate), DataType.BOOLEAN
            )
            return replace(child, condition=condition)
        return None

    if isinstance(child, lp.LProject):
        # substitute through trivial projections (pure column renames)
        mapping: dict[int, bx.BoundExpr] = {}
        for out_col, expr in zip(child.schema, child.exprs):
            if out_col.col_id in refs:
                if not isinstance(expr, (bx.BColumn, bx.BLiteral)):
                    return None
                mapping[out_col.col_id] = expr
        if refs <= set(mapping):
            pushed = map_expr(predicate, col_map=mapping)
            return replace(child, input=_filter(child.input, pushed))
        return None

    if isinstance(child, lp.LSetOp) and not _has_subquery(predicate):
        left_map = {
            out.col_id: bx.BColumn(c.col_id, c.type, c.name)
            for out, c in zip(child.schema, child.left.schema)
        }
        right_map = {
            out.col_id: bx.BColumn(c.col_id, c.type, c.name)
            for out, c in zip(child.schema, child.right.schema)
        }
        if refs <= set(left_map):
            return replace(
                child,
                left=_filter(child.left, map_expr(predicate, col_map=left_map)),
                right=_filter(child.right, map_expr(predicate, col_map=right_map)),
            )
        return None

    if isinstance(child, (lp.LSort, lp.LDistinct)):
        return replace(child, input=_filter(child.input, predicate))

    if isinstance(child, lp.LAggregate):
        if not child.group_exprs:
            # a scalar aggregate emits exactly one row even over empty
            # input — filtering below it changes the answer
            return None
        group_cols = child.schema[: len(child.group_exprs)]
        mapping = {
            col.col_id: expr for col, expr in zip(group_cols, child.group_exprs)
        }
        if refs <= set(mapping):
            pushed = map_expr(predicate, col_map=mapping)
            return replace(child, input=_filter(child.input, pushed))
        return None

    if isinstance(child, lp.LGraphSelect):
        if refs <= _ids(child.input.schema):
            return replace(child, input=_filter(child.input, predicate))
        return None

    if isinstance(child, lp.LGraphJoin):
        if refs <= _ids(child.left.schema):
            return replace(child, left=_filter(child.left, predicate))
        if refs <= _ids(child.right.schema):
            return replace(child, right=_filter(child.right, predicate))
        return None

    if isinstance(child, lp.LUnnest):
        if refs <= _ids(child.input.schema):
            return replace(child, input=_filter(child.input, predicate))
        return None

    return None


# ---------------------------------------------------------------------------
# join reordering (logical -> logical)
# ---------------------------------------------------------------------------
def reorder_joins(node: lp.LogicalNode, est: Estimator) -> lp.LogicalNode:
    """Greedily reorder maximal inner/cross join regions, smallest
    estimated intermediate result first."""
    if isinstance(node, lp.LJoin) and node.kind in ("inner", "cross"):
        leaves: list[lp.LogicalNode] = []
        conjuncts: list[bx.BoundExpr] = []

        def flatten(join: lp.LogicalNode) -> None:
            if isinstance(join, lp.LJoin) and join.kind in ("inner", "cross"):
                flatten(join.left)
                flatten(join.right)
                if join.condition is not None:
                    conjuncts.extend(split_conjuncts(join.condition))
            else:
                leaves.append(reorder_joins(join, est))

        flatten(node)
        if len(leaves) >= MIN_REORDER_RELATIONS:
            return _greedy_join(leaves, conjuncts, est)
        # small region: keep shape, children already reordered
        rebuilt = _rebuild_region(node, iter(leaves))
        return rebuilt

    updated, _ = _map_children(node, lambda ch: (reorder_joins(ch, est), True))
    return updated


def _rebuild_region(join: lp.LJoin, leaves):
    def go(node):
        if isinstance(node, lp.LJoin) and node.kind in ("inner", "cross"):
            left = go(node.left)
            right = go(node.right)
            return replace(node, left=left, right=right)
        return next(leaves)

    return go(join)


def _greedy_join(
    leaves: list[lp.LogicalNode],
    conjuncts: list[bx.BoundExpr],
    est: Estimator,
) -> lp.LogicalNode:
    leaf_ids = [_ids(leaf.schema) for leaf in leaves]

    # single-leaf conjuncts become filters on that leaf up front
    remaining: list[tuple[bx.BoundExpr, set[int]]] = []
    for conjunct in conjuncts:
        refs = bx.referenced_columns(conjunct)
        for i, ids in enumerate(leaf_ids):
            if refs <= ids:
                leaves[i] = _filter(leaves[i], conjunct)
                break
        else:
            remaining.append((conjunct, refs))

    entries = [
        {"node": leaf, "ids": ids, "rows": max(est.rows(leaf), 1.0)}
        for leaf, ids in zip(leaves, leaf_ids)
    ]
    # start from the smallest relation
    entries.sort(key=lambda e: e["rows"])
    current = entries.pop(0)
    plan, placed, rows = current["node"], set(current["ids"]), current["rows"]

    while entries:
        best_index, best_rows, best_conjs = None, None, []
        for i, entry in enumerate(entries):
            combined = placed | entry["ids"]
            applicable = [
                (c, refs) for c, refs in remaining if refs <= combined
            ]
            sel = 1.0
            for conjunct, _ in applicable:
                sel *= est.conjunct_selectivity(conjunct)
            candidate_rows = max(rows * entry["rows"] * sel, 1.0)
            if best_rows is None or candidate_rows < best_rows:
                best_index, best_rows, best_conjs = i, candidate_rows, applicable
        entry = entries.pop(best_index)
        schema = plan.schema + entry["node"].schema
        if best_conjs:
            condition = and_all([c for c, _ in best_conjs])
            plan = lp.LJoin(plan, entry["node"], "inner", condition, schema)
            remaining = [r for r in remaining if r not in best_conjs]
        else:
            plan = lp.LJoin(plan, entry["node"], "cross", None, schema)
        placed |= entry["ids"]
        rows = best_rows

    return plan


# ---------------------------------------------------------------------------
# lowering (logical -> physical)
# ---------------------------------------------------------------------------
class _Lowering:
    def __init__(self, catalog, stats, est: Estimator, enabled: bool):
        self.catalog = catalog
        self.stats = stats
        self.est = est
        self.enabled = enabled
        self.cte_rows: dict[str, float] = {}

    # -- helpers -------------------------------------------------------
    def _expr(self, expr: bx.BoundExpr) -> bx.BoundExpr:
        return map_expr(expr, plan_fn=self._subplan)

    def _subplan(self, plan):
        return optimize(plan, self.catalog, self.stats, enabled=self.enabled)

    def _exprs(self, exprs) -> tuple:
        return tuple(self._expr(e) for e in exprs)

    def _refs(self, *exprs) -> set[int]:
        out: set[int] = set()
        for expr in exprs:
            out |= bx.referenced_columns(expr)
        return out

    def positional(self, node: lp.LogicalNode) -> pp.PhysicalNode:
        """Lower preserving the node's exact output schema (order and
        width) — required wherever results are consumed by position:
        statement roots, set-operation branches, recursive-CTE branches,
        CTE definitions and path-producing edge plans."""
        lowered = self.lower(node, None)
        if lowered.schema != node.schema:
            exprs = tuple(
                bx.BColumn(c.col_id, c.type, c.name) for c in node.schema
            )
            lowered = pp.PProject(
                lowered,
                exprs,
                node.schema,
                est_rows=lowered.est_rows,
                est_cost=lowered.est_cost + lowered.est_rows,
            )
        return lowered

    # -- dispatch ------------------------------------------------------
    def lower(
        self, node: lp.LogicalNode, required: Optional[set[int]]
    ) -> pp.PhysicalNode:
        if not self.enabled:
            required = None  # projection pruning is an optimizer pass
        method = self._DISPATCH.get(type(node))
        if method is None:
            raise NotImplementedError(
                f"no lowering for {type(node).__name__}"
            )
        return method(self, node, required)

    # -- leaves --------------------------------------------------------
    def _lower_scan(self, node: lp.LScan, required):
        schema = node.schema
        if required is not None and schema:
            kept = tuple(c for c in schema if c.col_id in required)
            schema = kept or (schema[0],)
        rows = self.est.table_rows(node.table)
        return pp.PScan(node.table, schema, est_rows=rows, est_cost=rows)

    def _lower_single_row(self, node: lp.LSingleRow, required):
        return pp.PSingleRow()

    def _lower_values(self, node: lp.LValues, required):
        rows = tuple(self._exprs(row) for row in node.rows)
        return pp.PValues(
            rows, node.schema, est_rows=float(len(rows)), est_cost=float(len(rows))
        )

    def _lower_cte_ref(self, node: lp.LCTERef, required):
        rows = self.cte_rows.get(node.cte_name, CTE_REF_DEFAULT_ROWS)
        return pp.PCTERef(node.cte_name, node.schema, est_rows=rows, est_cost=0.0)

    # -- unary ---------------------------------------------------------
    def _lower_filter(self, node: lp.LFilter, required):
        predicate = self._expr(node.predicate)
        child_req = None
        if required is not None:
            child_req = required | self._refs(predicate)
        child = self.lower(node.input, child_req)
        if self.enabled:
            child = self._attach_zone_filter(child, predicate)
        sel = self.est.selectivity(predicate)
        return pp.PFilter(
            child,
            predicate,
            child.schema,
            est_rows=max(child.est_rows * sel, 0.0),
            est_cost=child.est_cost + child.est_rows,
            streamable=self.enabled
            and not _has_subquery(predicate)
            and self._streams_over_scan(child),
        )

    def _streams_over_scan(self, child) -> bool:
        """True when ``child`` is a chain of streamable filters over a
        base-table scan — the shape the budgeted executor can evaluate
        morsel-at-a-time (elementwise predicates commute with
        concatenation, so per-morsel filtering is bit-identical)."""
        node = child
        while isinstance(node, pp.PFilter):
            if not node.streamable:
                return False
            node = node.input
        return isinstance(node, pp.PScan)

    # -- zone-map pushdown ---------------------------------------------
    def _attach_zone_filter(self, child, predicate):
        """When a filter sits on a (chain of filters over a) base-table
        scan, record its zone-testable form on the PScan so the executor
        can skip whole morsels.  The filter itself stays in the plan —
        zone maps are morsel-granular, the residual filter guarantees
        row-level exactness."""
        base = child
        while isinstance(base, pp.PFilter):
            base = base.input
        if not isinstance(base, pp.PScan):
            return child
        zone = self._zone_predicate(predicate, base.table)
        if zone is None:
            return child

        def rebuild(node):
            if isinstance(node, pp.PScan):
                return replace(node, zone_filters=node.zone_filters + (zone,))
            return replace(node, input=rebuild(node.input))

        return rebuild(child)

    def _zone_operand(self, expr):
        """``("lit", v)`` / ``("param", i)`` for a parameter-free scalar
        operand, else None.  The plan cache normalizes literals into
        params, so both shapes occur for the same SQL text."""
        if isinstance(expr, bx.BLiteral):
            return ("lit", expr.value)
        if isinstance(expr, bx.BParam):
            return ("param", expr.index)
        return None

    def _zone_column(self, expr, table):
        """The base-column name when ``expr`` is a bare column of
        ``table`` (by origin), else None."""
        if not isinstance(expr, bx.BColumn):
            return None
        origin = self.est.origins.get(expr.col_id)
        if origin is None or origin[0] != table:
            return None
        return origin[1]

    def _zone_predicate(self, predicate, table):
        if isinstance(predicate, bx.BCall) and predicate.op in (
            "=", "<", "<=", ">", ">=",
        ) and len(predicate.args) == 2:
            left, right = predicate.args
            column = self._zone_column(left, table)
            operand = self._zone_operand(right)
            op = predicate.op
            if column is None:
                # reversed comparison: literal <op> column
                column = self._zone_column(right, table)
                operand = self._zone_operand(left)
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            if column is None or operand is None:
                return None
            return ZonePredicate(column, op, (operand,))
        if isinstance(predicate, bx.BInList) and not predicate.negated:
            column = self._zone_column(predicate.operand, table)
            if column is None:
                return None
            operands = []
            for item in predicate.items:
                operand = self._zone_operand(item)
                if operand is None:
                    return None
                operands.append(operand)
            if not operands:
                return None
            return ZonePredicate(column, "in", tuple(operands))
        if isinstance(predicate, bx.BIsNull):
            column = self._zone_column(predicate.operand, table)
            if column is None:
                return None
            return ZonePredicate(
                column, "notnull" if predicate.negated else "isnull"
            )
        if isinstance(predicate, bx.BInSubquery) and not predicate.negated:
            # the plan inside the predicate was already lowered by
            # self._expr; the executor's resolver runs it and prunes
            # zones outside the probe values' [min, max] range
            column = self._zone_column(predicate.operand, table)
            if column is None:
                return None
            return ZonePredicate(column, "insub", (("sub", predicate.plan),))
        return None

    def _lower_project(self, node: lp.LProject, required):
        exprs = self._exprs(node.exprs)
        child = self.lower(node.input, self._refs(*exprs))
        return pp.PProject(
            child,
            exprs,
            node.schema,
            est_rows=child.est_rows,
            est_cost=child.est_cost + child.est_rows,
        )

    def _lower_aggregate(self, node: lp.LAggregate, required):
        group_exprs = self._exprs(node.group_exprs)
        aggs = tuple(
            replace(a, arg=self._expr(a.arg)) if a.arg is not None else a
            for a in node.aggs
        )
        child_req = self._refs(*group_exprs)
        for agg in aggs:
            if agg.arg is not None:
                child_req |= self._refs(agg.arg)
        child = self.lower(node.input, child_req)
        rows = self.est.group_estimate(group_exprs, child.est_rows)
        return pp.PAggregate(
            child,
            group_exprs,
            aggs,
            node.schema,
            est_rows=rows,
            est_cost=child.est_cost + child.est_rows,
            streamable=self.enabled
            and not group_exprs
            and bool(aggs)
            and all(self._streamable_agg(a) for a in aggs)
            and self._streams_over_scan(child),
        )

    @staticmethod
    def _streamable_agg(agg) -> bool:
        """True when the aggregate folds exactly over morsels:
        count/min/max always combine associatively; sum/avg only over
        integers (int64 addition is associative mod 2**64, while
        reassociating float sums changes rounding)."""
        if agg.distinct:
            return False
        if agg.func == "count_star":
            return True
        if agg.arg is None or _has_subquery(agg.arg):
            return False
        if agg.func in ("count", "min", "max"):
            return True
        if agg.func in ("sum", "avg"):
            return agg.arg.type is not None and agg.arg.type.is_integral
        return False

    def _lower_sort(self, node: lp.LSort, required):
        keys = tuple(replace(k, expr=self._expr(k.expr)) for k in node.keys)
        child_req = None
        if required is not None:
            child_req = required | self._refs(*(k.expr for k in keys))
        child = self.lower(node.input, child_req)
        n = max(child.est_rows, 1.0)
        return pp.PSort(
            child,
            keys,
            child.schema,
            est_rows=child.est_rows,
            est_cost=child.est_cost + n * max(math.log2(n), 1.0),
        )

    def _lower_limit(self, node: lp.LLimit, required):
        child = self.lower(node.input, required)
        if (
            self.enabled
            and node.limit is not None
            and isinstance(child, pp.PSort)
            and child.limit is None
        ):
            # top-k fusion hint: the budgeted executor truncates the
            # sort permutation to limit+offset rows before gathering
            # payloads; the PLimit below still slices, so results are
            # unchanged
            child = replace(child, limit=int(node.limit) + int(node.offset))
        if node.limit is None:
            rows = max(child.est_rows - node.offset, 0.0)
        else:
            rows = min(float(node.limit), child.est_rows)
        return pp.PLimit(
            child,
            node.limit,
            node.offset,
            child.schema,
            est_rows=rows,
            est_cost=child.est_cost,
        )

    def _lower_distinct(self, node: lp.LDistinct, required):
        child = self.lower(node.input, None)  # every column is significant
        return pp.PDistinct(
            child,
            child.schema,
            est_rows=child.est_rows,
            est_cost=child.est_cost + child.est_rows,
        )

    # -- joins ---------------------------------------------------------
    def _lower_join(self, node: lp.LJoin, required):
        condition = (
            self._expr(node.condition) if node.condition is not None else None
        )
        left_ids = _ids(node.left.schema)
        right_ids = _ids(node.right.schema)
        left_req = right_req = None
        if required is not None:
            need = set(required)
            if condition is not None:
                need |= self._refs(condition)
            left_req = need & left_ids
            right_req = need & right_ids
        left = self.lower(node.left, left_req)
        right = self.lower(node.right, right_req)
        schema = left.schema + right.schema
        cross_rows = left.est_rows * right.est_rows

        if node.kind == "cross" or condition is None and node.kind != "left":
            return pp.PCrossJoin(
                left,
                right,
                schema,
                est_rows=cross_rows,
                est_cost=left.est_cost + right.est_cost + cross_rows,
            )
        if condition is None:  # LEFT JOIN ON TRUE (degenerate)
            condition = bx.BLiteral(True, DataType.BOOLEAN)
        pairs, residual = split_equi_condition(condition, left_ids, right_ids)
        sel = 1.0
        for conjunct in split_conjuncts(condition):
            sel *= self.est.conjunct_selectivity(conjunct)
        rows = max(cross_rows * sel, 1.0)
        if node.kind == "left":
            rows = max(rows, left.est_rows)
        if pairs:
            build_left = (
                self.enabled
                and node.kind == "inner"
                and left.est_rows < right.est_rows
            )
            probe_zone: tuple = ()
            if self.enabled and node.kind == "inner":
                probe_zone = self._probe_zone_marks(
                    tuple(pairs), left, right, build_left
                )
            return pp.PHashJoin(
                left,
                right,
                node.kind,
                tuple(pairs),
                tuple(residual),
                build_left,
                schema,
                est_rows=rows,
                est_cost=left.est_cost
                + right.est_cost
                + left.est_rows
                + right.est_rows
                + rows,
                probe_zone=probe_zone,
            )
        return pp.PNestedLoopJoin(
            left,
            right,
            node.kind,
            tuple(split_conjuncts(condition)),
            schema,
            est_rows=rows,
            est_cost=left.est_cost + right.est_cost + cross_rows,
        )

    def _probe_zone_marks(self, pairs, left, right, build_left) -> tuple:
        """``(pair_index, column_name)`` marks for hash-join keys whose
        probe side is a (filter chain over a) base-table scan: the
        executor consults the probe scan's zone maps against the build
        side's key range (zone maps for join build sides, not just
        pushed-down filters)."""
        probe = right if build_left else left
        base = probe
        while isinstance(base, pp.PFilter):
            base = base.input
        if not isinstance(base, pp.PScan):
            return ()
        marks = []
        for index, (a, b) in enumerate(pairs):
            probe_expr = b if build_left else a
            column = self._zone_column(probe_expr, base.table)
            if column is not None:
                marks.append((index, column))
        return tuple(marks)

    # -- set operations / CTEs -----------------------------------------
    def _lower_setop(self, node: lp.LSetOp, required):
        left = self.positional(node.left)
        right = self.positional(node.right)
        if node.op == "union":
            rows = left.est_rows + right.est_rows
        elif node.op == "except":
            rows = left.est_rows
        else:
            rows = min(left.est_rows, right.est_rows)
        return pp.PSetOp(
            node.op,
            node.all,
            left,
            right,
            node.schema,
            est_rows=rows,
            est_cost=left.est_cost + right.est_cost + rows,
        )

    def _lower_recursive(self, node: lp.LRecursive, required):
        base = self.positional(node.base)
        self.cte_rows[node.cte_name] = max(base.est_rows, 1.0)
        recursive = self.positional(node.recursive)
        rows = (base.est_rows + 1.0) * RECURSIVE_FANOUT
        return pp.PRecursive(
            node.cte_name,
            base,
            recursive,
            node.union_all,
            node.schema,
            est_rows=rows,
            est_cost=base.est_cost + recursive.est_cost * RECURSIVE_FANOUT,
        )

    def _lower_materialize(self, node: lp.LMaterialize, required):
        definition = self.positional(node.definition)
        self.cte_rows[node.cte_name] = max(definition.est_rows, 1.0)
        body = self.lower(node.body, required)
        return pp.PMaterialize(
            node.cte_name,
            definition,
            body,
            body.schema,
            est_rows=body.est_rows,
            est_cost=definition.est_cost + body.est_cost,
        )

    # -- graph operators ------------------------------------------------
    def _lower_spec(self, spec: lp.GraphSpec) -> lp.GraphSpec:
        return replace(
            spec,
            source=self._exprs(spec.source),
            dest=self._exprs(spec.dest),
            cheapest=tuple(
                replace(c, weight=self._expr(c.weight)) for c in spec.cheapest
            ),
        )

    def _lower_edge(self, edge: lp.LogicalNode, spec: lp.GraphSpec):
        """Lower the edge (transition-table) plan.  Path-producing specs
        consume the edge batch positionally through nested-table values,
        so they keep the full bind-time schema; otherwise the edge is
        narrowed to the key columns and weight references."""
        want_path = any(c.path is not None for c in spec.cheapest)
        if want_path:
            return self.positional(edge)
        edge_req = _ids(spec.src_cols) | _ids(spec.dst_cols)
        for cheapest in spec.cheapest:
            edge_req |= self._refs(cheapest.weight)
        return self.lower(edge, edge_req)

    def _lower_graph_select(self, node: lp.LGraphSelect, required):
        spec = self._lower_spec(node.spec)
        input_ids = _ids(node.input.schema)
        in_req = None
        if required is not None:
            in_req = (required & input_ids) | self._refs(
                *spec.source, *spec.dest
            )
        input_ = self.lower(node.input, in_req)
        edge = self._lower_edge(node.edge, spec)
        extras = node.schema[len(node.input.schema):]
        rows = max(input_.est_rows * GRAPH_SELECT_SELECTIVITY, 1.0)
        return pp.PGraphSelect(
            input_,
            edge,
            spec,
            input_.schema + extras,
            est_rows=rows,
            est_cost=input_.est_cost
            + edge.est_cost
            + edge.est_rows
            + input_.est_rows * 2.0,
        )

    def _lower_graph_join(self, node: lp.LGraphJoin, required):
        spec = self._lower_spec(node.spec)
        left_ids = _ids(node.left.schema)
        right_ids = _ids(node.right.schema)
        left_req = right_req = None
        if required is not None:
            left_req = (required & left_ids) | self._refs(*spec.source)
            right_req = (required & right_ids) | self._refs(*spec.dest)
        left = self.lower(node.left, left_req)
        right = self.lower(node.right, right_req)
        edge = self._lower_edge(node.edge, spec)
        n_leaf = len(node.left.schema) + len(node.right.schema)
        extras = node.schema[n_leaf:]
        rows = max(
            left.est_rows * right.est_rows * GRAPH_JOIN_SELECTIVITY, 1.0
        )
        return pp.PGraphJoin(
            left,
            right,
            edge,
            spec,
            left.schema + right.schema + extras,
            est_rows=rows,
            est_cost=left.est_cost
            + right.est_cost
            + edge.est_cost
            + edge.est_rows
            + left.est_rows * right.est_rows,
        )

    def _lower_unnest(self, node: lp.LUnnest, required):
        operand = self._expr(node.operand)
        input_ids = _ids(node.input.schema)
        in_req = None
        if required is not None:
            in_req = (required & input_ids) | self._refs(operand)
        input_ = self.lower(node.input, in_req)
        schema = input_.schema + node.unnested
        if node.ordinality is not None:
            schema = schema + (node.ordinality,)
        rows = input_.est_rows * UNNEST_FANOUT
        return pp.PUnnest(
            input_,
            operand,
            node.ordinality,
            node.outer,
            node.unnested,
            schema,
            est_rows=rows,
            est_cost=input_.est_cost + rows,
        )

    _DISPATCH = {
        lp.LScan: _lower_scan,
        lp.LSingleRow: _lower_single_row,
        lp.LValues: _lower_values,
        lp.LCTERef: _lower_cte_ref,
        lp.LFilter: _lower_filter,
        lp.LProject: _lower_project,
        lp.LAggregate: _lower_aggregate,
        lp.LSort: _lower_sort,
        lp.LLimit: _lower_limit,
        lp.LDistinct: _lower_distinct,
        lp.LJoin: _lower_join,
        lp.LSetOp: _lower_setop,
        lp.LRecursive: _lower_recursive,
        lp.LMaterialize: _lower_materialize,
        lp.LGraphSelect: _lower_graph_select,
        lp.LGraphJoin: _lower_graph_join,
        lp.LUnnest: _lower_unnest,
    }


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def optimize(
    plan: lp.LogicalNode,
    catalog,
    stats=None,
    *,
    enabled: bool = True,
) -> pp.PhysicalNode:
    """Optimize a bound logical plan and lower it to a physical plan.

    With ``enabled=False`` only the paper's legacy rewriter runs (filter
    pushdown through cross products + graph-join unfolding) and the
    lowering makes no statistics-driven decisions — the baseline the
    equivalence oracle and benchmarks compare against.
    """
    origins = collect_origins(plan)
    est = Estimator(catalog, stats, origins)
    if enabled:
        plan = pushdown(plan)
        plan = reorder_joins(plan, est)
    else:
        plan = legacy_rewrite(plan)
    lowering = _Lowering(catalog, stats, est, enabled)
    return lowering.positional(plan)


def lower_plan(plan: lp.LogicalNode, catalog, stats=None) -> pp.PhysicalNode:
    """Trivial lowering without optimization passes (compatibility shim
    for callers holding a bare logical plan)."""
    return optimize(plan, catalog, stats, enabled=False)
