"""Logical (relational-algebra) plan operators.

The inventory mirrors the MonetDB relational AST the paper extends
(Section 3.1): the classic operators plus the two additions —
**graph select** ``σ̂_P̄(T, E)`` and **graph join** ``⋈̂_P̄(T1, T2, E)``.
The binder always emits :class:`LGraphSelect`; :class:`LGraphJoin` "is
only unfolded in the query rewriter when it recognizes the sequence of a
cross product plus a graph select" (see :mod:`repro.plan.rewriter`).

Every operator exposes ``schema``: an ordered list of :class:`PlanColumn`
(col_id, name, type).  Column ids are unique across one bound statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..storage import DataType
from .exprs import BoundExpr


@dataclass(frozen=True)
class PlanColumn:
    """One output column of a logical operator."""

    col_id: int
    name: str
    type: Optional[DataType]
    #: For NESTED_TABLE columns: the flattened schema of the nested rows,
    #: i.e. the edge table's columns (Section 3.3).  ``None`` otherwise.
    nested: Optional[tuple["PlanColumn", ...]] = None


class LogicalNode:
    """Base class; subclasses are frozen dataclasses with a ``schema``."""

    schema: tuple[PlanColumn, ...]

    @property
    def children(self) -> tuple["LogicalNode", ...]:
        return ()


# ---------------------------------------------------------------------------
# leaves
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LScan(LogicalNode):
    """Scan of a base table."""

    table: str
    schema: tuple[PlanColumn, ...]


@dataclass(frozen=True)
class LSingleRow(LogicalNode):
    """One row with no columns — the input of a FROM-less SELECT."""

    schema: tuple[PlanColumn, ...] = ()


@dataclass(frozen=True)
class LValues(LogicalNode):
    """Inline constant rows (used by INSERT ... VALUES execution)."""

    rows: tuple[tuple[BoundExpr, ...], ...]
    schema: tuple[PlanColumn, ...]


@dataclass(frozen=True)
class LCTERef(LogicalNode):
    """Reference to the working table of the enclosing recursive CTE."""

    cte_name: str
    schema: tuple[PlanColumn, ...]


# ---------------------------------------------------------------------------
# unary operators
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LFilter(LogicalNode):
    input: LogicalNode
    predicate: BoundExpr
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.input,)


@dataclass(frozen=True)
class LProject(LogicalNode):
    """Projection: each item is (expression, output PlanColumn)."""

    input: LogicalNode
    exprs: tuple[BoundExpr, ...]
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.input,)


@dataclass(frozen=True)
class AggSpec:
    """One aggregate computation: func(arg) [DISTINCT] -> output column."""

    func: str  # count | count_star | sum | min | max | avg
    arg: Optional[BoundExpr]
    distinct: bool
    output: PlanColumn


@dataclass(frozen=True)
class LAggregate(LogicalNode):
    """Group-by + aggregation.  ``group_exprs`` align with the first
    ``len(group_exprs)`` schema columns; aggregates follow."""

    input: LogicalNode
    group_exprs: tuple[BoundExpr, ...]
    aggs: tuple[AggSpec, ...]
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.input,)


@dataclass(frozen=True)
class SortKey:
    expr: BoundExpr
    ascending: bool


@dataclass(frozen=True)
class LSort(LogicalNode):
    input: LogicalNode
    keys: tuple[SortKey, ...]
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.input,)


@dataclass(frozen=True)
class LLimit(LogicalNode):
    input: LogicalNode
    limit: Optional[int]
    offset: int
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.input,)


@dataclass(frozen=True)
class LDistinct(LogicalNode):
    input: LogicalNode
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.input,)


# ---------------------------------------------------------------------------
# binary operators
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LJoin(LogicalNode):
    """inner / left / cross join.  ``condition`` is None for cross."""

    left: LogicalNode
    right: LogicalNode
    kind: str
    condition: Optional[BoundExpr]
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class LSetOp(LogicalNode):
    op: str  # union | except | intersect
    all: bool
    left: LogicalNode
    right: LogicalNode
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class LRecursive(LogicalNode):
    """WITH RECURSIVE evaluation: base ∪ iterate(recursive) to fixpoint.

    The recursive branch refers to the working table through
    :class:`LCTERef` nodes carrying ``cte_name``.
    """

    cte_name: str
    base: LogicalNode
    recursive: LogicalNode
    union_all: bool
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.base, self.recursive)


@dataclass(frozen=True)
class LMaterialize(LogicalNode):
    """Materialize a (recursive) CTE, then run ``body`` with it in scope.

    The executor evaluates ``definition`` once, registers the batch under
    ``cte_name`` so that :class:`LCTERef` nodes in ``body`` resolve to it,
    then evaluates ``body``.
    """

    cte_name: str
    definition: LogicalNode
    body: LogicalNode
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.definition, self.body)


# ---------------------------------------------------------------------------
# the paper's additions (Section 3.1)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CheapestSpec:
    """One CHEAPEST SUM attached to a reachability predicate.

    ``weight`` is bound against the *edge plan's* schema; ``constant_one``
    marks the unweighted case (BFS).  ``cost`` is always produced;
    ``path`` is present only for the ``AS (cost, path)`` form.
    """

    weight: BoundExpr
    constant_one: bool
    cost: PlanColumn
    path: Optional[PlanColumn]


@dataclass(frozen=True)
class GraphSpec:
    """The bound reachability predicate P̄(X, Y, S, D) plus its paths.

    All four key sides are tuples of equal arity: single-attribute vertex
    keys are 1-tuples; composite keys (the paper's multi-attribute
    extension) carry one entry per attribute.
    """

    source: tuple[BoundExpr, ...]  # X — over the input (left side of a join)
    dest: tuple[BoundExpr, ...]  # Y — over the input (right side of a join)
    src_cols: tuple[PlanColumn, ...]  # S — edge plan columns
    dst_cols: tuple[PlanColumn, ...]  # D — edge plan columns
    binding: Optional[str]
    cheapest: tuple[CheapestSpec, ...]


@dataclass(frozen=True)
class LGraphSelect(LogicalNode):
    """Graph select σ̂: filter input rows by reachability over the edge
    plan; appends one cost (and optionally one path) column per
    CHEAPEST SUM."""

    input: LogicalNode
    edge: LogicalNode
    spec: GraphSpec
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.input, self.edge)


@dataclass(frozen=True)
class LGraphJoin(LogicalNode):
    """Graph join ⋈̂ = σ̂(T1 × T2, E); produced only by the rewriter."""

    left: LogicalNode
    right: LogicalNode
    edge: LogicalNode
    spec: GraphSpec
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.left, self.right, self.edge)


# ---------------------------------------------------------------------------
# nested tables (Section 3.3)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LUnnest(LogicalNode):
    """Lateral UNNEST of a nested-table column.

    For each input row, emits one output row per edge in the nested table
    (or, with ``outer``, one all-NULL row when it is empty).  With
    ``ordinality`` an extra dense 1-based counter column is appended —
    the WITH ORDINALITY clause the prototype left unimplemented.
    """

    input: LogicalNode
    operand: BoundExpr
    ordinality: Optional[PlanColumn]
    outer: bool
    unnested: tuple[PlanColumn, ...]
    schema: tuple[PlanColumn, ...]

    @property
    def children(self):
        return (self.input,)


def explain(node: LogicalNode, indent: int = 0) -> str:
    """Readable multi-line plan rendering (the EXPLAIN output)."""
    pad = "  " * indent
    name = type(node).__name__[1:]
    details = ""
    if isinstance(node, LScan):
        details = f" {node.table}"
    elif isinstance(node, LJoin):
        details = f" [{node.kind}]"
    elif isinstance(node, LSetOp):
        details = f" [{node.op}{' all' if node.all else ''}]"
    elif isinstance(node, (LGraphSelect, LGraphJoin)):
        n_paths = sum(1 for c in node.spec.cheapest if c.path)
        details = f" [cheapest={len(node.spec.cheapest)} paths={n_paths}]"
    elif isinstance(node, LRecursive):
        details = f" {node.cte_name}"
    cols = ", ".join(f"{c.name}" for c in node.schema)
    lines = [f"{pad}{name}{details} -> ({cols})"]
    for child in node.children:
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
