"""Logical-plan rewriting (the optimizer stage of Section 3.1).

Two families of rules, applied to a fixpoint:

* **filter pushdown** through cross joins, so that predicates evaluate
  close to their scans and — importantly — so that a graph select's
  input surfaces as a bare cross product when it is one;
* **graph-join unfolding**: "graph joins are only unfolded in the query
  rewriter when it recognizes the sequence of a cross product plus a
  graph select".  A :class:`~repro.plan.logical.LGraphSelect` whose input
  is a cross join, and whose source expression only references the left
  side while the destination only references the right side, becomes a
  :class:`~repro.plan.logical.LGraphJoin`.

The rewriter preserves schemas exactly: rewritten nodes expose the same
PlanColumns, so expressions above them stay valid (this is the
"dependencies ... which need to be respected in the rewriting rules of
the optimiser" caveat of Section 3.1 — cost/path columns produced by a
graph operator must survive the rewrite).
"""

from __future__ import annotations

from dataclasses import replace

from .exprs import referenced_columns
from . import logical as lp


def rewrite(plan: lp.LogicalNode) -> lp.LogicalNode:
    """Apply all rewrite rules bottom-up until nothing changes."""
    changed = True
    while changed:
        plan, changed = _rewrite_once(plan)
    return plan


def _rewrite_once(node: lp.LogicalNode) -> tuple[lp.LogicalNode, bool]:
    # rewrite children first (bottom-up)
    changed = False
    node, child_changed = _rewrite_children(node)
    changed |= child_changed

    # rule: merge adjacent filters is unnecessary (executor chains them),
    # but pushing a filter through a cross join matters for rule 2.
    if isinstance(node, lp.LFilter) and isinstance(node.input, lp.LJoin):
        join = node.input
        if join.kind == "cross":
            refs = referenced_columns(node.predicate)
            left_ids = {c.col_id for c in join.left.schema}
            right_ids = {c.col_id for c in join.right.schema}
            if refs <= left_ids:
                new_left = lp.LFilter(join.left, node.predicate, join.left.schema)
                return (
                    lp.LJoin(new_left, join.right, "cross", None, join.schema),
                    True,
                )
            if refs <= right_ids:
                new_right = lp.LFilter(join.right, node.predicate, join.right.schema)
                return (
                    lp.LJoin(join.left, new_right, "cross", None, join.schema),
                    True,
                )
            # spans both sides: turn the cross product into an inner join
            # so the executor can extract hash keys instead of
            # materializing |L| x |R| rows
            return (
                lp.LJoin(
                    join.left, join.right, "inner", node.predicate, join.schema
                ),
                True,
            )

    # rule: cross product + graph select -> graph join (Section 3.1)
    if isinstance(node, lp.LGraphSelect) and isinstance(node.input, lp.LJoin):
        join = node.input
        if join.kind == "cross":
            source_refs = set().union(
                *(referenced_columns(e) for e in node.spec.source)
            )
            dest_refs = set().union(
                *(referenced_columns(e) for e in node.spec.dest)
            )
            left_ids = {c.col_id for c in join.left.schema}
            right_ids = {c.col_id for c in join.right.schema}
            if source_refs <= left_ids and dest_refs <= right_ids:
                return (
                    lp.LGraphJoin(
                        join.left, join.right, node.edge, node.spec, node.schema
                    ),
                    True,
                )
    return node, changed


def _rewrite_children(node: lp.LogicalNode) -> tuple[lp.LogicalNode, bool]:
    changed = False
    if isinstance(node, lp.LFilter):
        child, c = _rewrite_once(node.input)
        if c:
            node = replace(node, input=child)
        changed |= c
    elif isinstance(node, lp.LProject):
        child, c = _rewrite_once(node.input)
        if c:
            node = replace(node, input=child)
        changed |= c
    elif isinstance(node, lp.LAggregate):
        child, c = _rewrite_once(node.input)
        if c:
            node = replace(node, input=child)
        changed |= c
    elif isinstance(node, lp.LSort):
        child, c = _rewrite_once(node.input)
        if c:
            node = replace(node, input=child)
        changed |= c
    elif isinstance(node, lp.LLimit):
        child, c = _rewrite_once(node.input)
        if c:
            node = replace(node, input=child)
        changed |= c
    elif isinstance(node, lp.LDistinct):
        child, c = _rewrite_once(node.input)
        if c:
            node = replace(node, input=child)
        changed |= c
    elif isinstance(node, lp.LUnnest):
        child, c = _rewrite_once(node.input)
        if c:
            node = replace(node, input=child)
        changed |= c
    elif isinstance(node, lp.LJoin):
        left, c1 = _rewrite_once(node.left)
        right, c2 = _rewrite_once(node.right)
        if c1 or c2:
            node = replace(node, left=left, right=right)
        changed |= c1 or c2
    elif isinstance(node, lp.LSetOp):
        left, c1 = _rewrite_once(node.left)
        right, c2 = _rewrite_once(node.right)
        if c1 or c2:
            node = replace(node, left=left, right=right)
        changed |= c1 or c2
    elif isinstance(node, lp.LRecursive):
        base, c1 = _rewrite_once(node.base)
        recursive, c2 = _rewrite_once(node.recursive)
        if c1 or c2:
            node = replace(node, base=base, recursive=recursive)
        changed |= c1 or c2
    elif isinstance(node, lp.LMaterialize):
        definition, c1 = _rewrite_once(node.definition)
        body, c2 = _rewrite_once(node.body)
        if c1 or c2:
            node = replace(node, definition=definition, body=body)
        changed |= c1 or c2
    elif isinstance(node, lp.LGraphSelect):
        child, c1 = _rewrite_once(node.input)
        edge, c2 = _rewrite_once(node.edge)
        if c1 or c2:
            node = replace(node, input=child, edge=edge)
        changed |= c1 or c2
    elif isinstance(node, lp.LGraphJoin):
        left, c1 = _rewrite_once(node.left)
        right, c2 = _rewrite_once(node.right)
        edge, c3 = _rewrite_once(node.edge)
        if c1 or c2 or c3:
            node = replace(node, left=left, right=right, edge=edge)
        changed |= c1 or c2 or c3
    return node, changed
