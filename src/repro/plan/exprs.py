"""Bound (resolved, typed) expression trees.

The binder turns parser AST expressions into these nodes.  Every column
reference is resolved to a *column id* — a unique integer assigned when a
scope introduces the column — which makes duplicate output names (e.g.
``SELECT VP1.*, VP2.*`` over the same table) unambiguous, exactly the
problem MonetDB solves with expression references in its relational AST.

``type`` is the statically inferred :class:`~repro.storage.DataType`, or
``None`` for host parameters whose type is only known at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..storage import DataType


class BoundExpr:
    """Marker base class; every node carries an inferred ``type``."""

    type: Optional[DataType]


@dataclass(frozen=True)
class BLiteral(BoundExpr):
    value: Any
    type: Optional[DataType]


@dataclass(frozen=True)
class BParam(BoundExpr):
    """Host parameter ``?``; its type is unknown until execution."""

    index: int
    type: Optional[DataType] = None


@dataclass(frozen=True)
class BColumn(BoundExpr):
    """A resolved input column."""

    col_id: int
    type: Optional[DataType]
    name: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"#{self.col_id}:{self.name}"


@dataclass(frozen=True)
class BCall(BoundExpr):
    """Scalar operator or function call (not aggregates).

    ``op`` is a lower-case operator/function name: ``+ - * / % || = <> <
    <= > >= and or not neg like`` or a scalar function (``abs``,
    ``coalesce``, ``lower`` ...).
    """

    op: str
    args: tuple[BoundExpr, ...]
    type: Optional[DataType]


@dataclass(frozen=True)
class BIsNull(BoundExpr):
    operand: BoundExpr
    negated: bool
    type: Optional[DataType] = DataType.BOOLEAN


@dataclass(frozen=True)
class BInList(BoundExpr):
    operand: BoundExpr
    items: tuple[BoundExpr, ...]
    negated: bool
    type: Optional[DataType] = DataType.BOOLEAN


@dataclass(frozen=True)
class BCase(BoundExpr):
    """Searched CASE (the binder lowers the simple form to this)."""

    whens: tuple[tuple[BoundExpr, BoundExpr], ...]
    else_: Optional[BoundExpr]
    type: Optional[DataType] = None


@dataclass(frozen=True)
class BCast(BoundExpr):
    operand: BoundExpr
    type: Optional[DataType] = None


@dataclass(frozen=True)
class BAggValue(BoundExpr):
    """Reference to an aggregate computed by an LAggregate below.

    After aggregation rewriting, SELECT/HAVING expressions refer to the
    aggregate outputs through these nodes (resolved to fresh col_ids).
    """

    col_id: int
    type: Optional[DataType]
    name: str = ""


@dataclass(frozen=True)
class BScalarSubquery(BoundExpr):
    """Uncorrelated scalar subquery; executed once, yields one value."""

    plan: "object"  # LogicalNode; typed as object to avoid a cycle
    type: Optional[DataType] = None


@dataclass(frozen=True)
class BInSubquery(BoundExpr):
    operand: BoundExpr
    plan: "object"
    negated: bool
    type: Optional[DataType] = DataType.BOOLEAN


@dataclass(frozen=True)
class BExists(BoundExpr):
    plan: "object"
    negated: bool = False
    type: Optional[DataType] = DataType.BOOLEAN


def walk(expr: BoundExpr):
    """Yield ``expr`` and all of its descendants, pre-order."""
    yield expr
    children: tuple = ()
    if isinstance(expr, BCall):
        children = expr.args
    elif isinstance(expr, BIsNull):
        children = (expr.operand,)
    elif isinstance(expr, BInList):
        children = (expr.operand, *expr.items)
    elif isinstance(expr, BCase):
        parts = [p for pair in expr.whens for p in pair]
        if expr.else_ is not None:
            parts.append(expr.else_)
        children = tuple(parts)
    elif isinstance(expr, BCast):
        children = (expr.operand,)
    elif isinstance(expr, BInSubquery):
        children = (expr.operand,)
    for child in children:
        yield from walk(child)


def referenced_columns(expr: BoundExpr) -> set[int]:
    """Set of col_ids referenced anywhere inside ``expr``."""
    return {node.col_id for node in walk(expr) if isinstance(node, (BColumn, BAggValue))}
