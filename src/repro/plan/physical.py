"""Physical (executable) plan operators.

The optimizer (:mod:`repro.plan.optimizer`) lowers the logical plan of
:mod:`repro.plan.logical` into this tree; :mod:`repro.exec.operators`
interprets it directly.  The physical layer makes the execution
decisions explicit that the old interpreter took implicitly:

* join *strategy* is a node type — :class:`PHashJoin` (with the
  equi-key pairs extracted at plan time and an explicit build side),
  :class:`PNestedLoopJoin` and :class:`PCrossJoin` — instead of a
  runtime inspection of the join condition;
* every node carries ``est_rows`` (the optimizer's cardinality
  estimate) and ``est_cost`` (cumulative), which EXPLAIN renders and
  the profiler compares against actual row counts.

Node names mirror the logical inventory with a ``P`` prefix; the
``GraphSpec``/``CheapestSpec``/``PlanColumn`` value types are shared
with the logical layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .exprs import BoundExpr
from .logical import AggSpec, GraphSpec, PlanColumn, SortKey


class PhysicalNode:
    """Base class; subclasses are frozen dataclasses with ``schema``,
    ``est_rows`` and ``est_cost``."""

    schema: tuple[PlanColumn, ...]
    est_rows: float
    est_cost: float

    @property
    def children(self) -> tuple["PhysicalNode", ...]:
        return ()


# ---------------------------------------------------------------------------
# leaves
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PScan(PhysicalNode):
    """Scan of a base table.  ``schema`` may be a *subset* of the table's
    columns — the optimizer's projection-pruning pass narrows scans to
    the columns the statement actually references.

    ``zone_filters`` are the zone-testable conjuncts
    (:class:`~repro.storage.zonemap.ZonePredicate`) of filters sitting
    directly above this scan: the executor consults per-morsel zone maps
    to skip whole morsels before the residual filter runs.  They are an
    *optimization hint only* — the filters stay in the plan, so dropping
    ``zone_filters`` never changes results."""

    table: str
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0
    zone_filters: tuple = ()


@dataclass(frozen=True)
class PSingleRow(PhysicalNode):
    schema: tuple[PlanColumn, ...] = ()
    est_rows: float = 1.0
    est_cost: float = 0.0


@dataclass(frozen=True)
class PValues(PhysicalNode):
    rows: tuple[tuple[BoundExpr, ...], ...]
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0


@dataclass(frozen=True)
class PCTERef(PhysicalNode):
    cte_name: str
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0


# ---------------------------------------------------------------------------
# unary operators
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PFilter(PhysicalNode):
    """``streamable`` marks filters whose predicate is elementwise (no
    subqueries) sitting on a ``PFilter*`` → ``PScan`` chain: under a
    memory budget the executor fuses the chain and evaluates it
    morsel-at-a-time instead of materializing the scan.  Pure hint —
    the unbudgeted path ignores it."""

    input: PhysicalNode
    predicate: BoundExpr
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0
    streamable: bool = False

    @property
    def children(self):
        return (self.input,)


@dataclass(frozen=True)
class PProject(PhysicalNode):
    input: PhysicalNode
    exprs: tuple[BoundExpr, ...]
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0

    @property
    def children(self):
        return (self.input,)


@dataclass(frozen=True)
class PAggregate(PhysicalNode):
    """``streamable`` marks ungrouped aggregates over a streamable
    filter chain whose functions all have exactly-associative
    accumulators (count/min/max, integer sum/avg): under a memory
    budget the executor folds morsels into running state without
    materializing the input.  Pure hint."""

    input: PhysicalNode
    group_exprs: tuple[BoundExpr, ...]
    aggs: tuple[AggSpec, ...]
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0
    streamable: bool = False

    @property
    def children(self):
        return (self.input,)


@dataclass(frozen=True)
class PSort(PhysicalNode):
    """``limit`` is the fused row cap (LIMIT+OFFSET of an enclosing
    :class:`PLimit`): the budgeted executor truncates the sort
    permutation before gathering payloads, so a top-k over a huge table
    never materializes the full sorted output.  The PLimit stays in the
    plan, so the hint never changes results."""

    input: PhysicalNode
    keys: tuple[SortKey, ...]
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0
    limit: Optional[int] = None

    @property
    def children(self):
        return (self.input,)


@dataclass(frozen=True)
class PLimit(PhysicalNode):
    input: PhysicalNode
    limit: Optional[int]
    offset: int
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0

    @property
    def children(self):
        return (self.input,)


@dataclass(frozen=True)
class PDistinct(PhysicalNode):
    input: PhysicalNode
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0

    @property
    def children(self):
        return (self.input,)


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PHashJoin(PhysicalNode):
    """Equi-join: ``pairs`` holds (left expr, right expr) hash keys,
    ``residual`` the non-equi conjuncts evaluated after the probe.
    ``build_left`` selects the build side (chosen by estimated size);
    LEFT joins always build on the right.

    ``probe_zone`` lists ``(pair_index, column_name)`` marks for inner
    joins whose probe side is a filter chain over a base-table scan:
    the executor runs the build side first, computes each marked key's
    min/max, and installs them as dynamic zone predicates on the probe
    scan, so probe morsels outside the build key range are never paged
    in.  Pruned rows cannot match (inner join), so results are
    unchanged."""

    left: PhysicalNode
    right: PhysicalNode
    kind: str  # inner | left
    pairs: tuple[tuple[BoundExpr, BoundExpr], ...]
    residual: tuple[BoundExpr, ...]
    build_left: bool
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0
    probe_zone: tuple = ()

    @property
    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class PNestedLoopJoin(PhysicalNode):
    """Non-equi inner/left join: guarded pair enumeration + filter.
    ``residual`` holds the condition pre-split into conjuncts at plan
    time (like :class:`PHashJoin`), so cached executions skip the
    split."""

    left: PhysicalNode
    right: PhysicalNode
    kind: str  # inner | left
    residual: tuple[BoundExpr, ...]
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0

    @property
    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class PCrossJoin(PhysicalNode):
    left: PhysicalNode
    right: PhysicalNode
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0

    @property
    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class PSetOp(PhysicalNode):
    op: str  # union | except | intersect
    all: bool
    left: PhysicalNode
    right: PhysicalNode
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0

    @property
    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class PRecursive(PhysicalNode):
    cte_name: str
    base: PhysicalNode
    recursive: PhysicalNode
    union_all: bool
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0

    @property
    def children(self):
        return (self.base, self.recursive)


@dataclass(frozen=True)
class PMaterialize(PhysicalNode):
    cte_name: str
    definition: PhysicalNode
    body: PhysicalNode
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0

    @property
    def children(self):
        return (self.definition, self.body)


# ---------------------------------------------------------------------------
# the paper's graph operators
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PGraphSelect(PhysicalNode):
    input: PhysicalNode
    edge: PhysicalNode
    spec: GraphSpec
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0

    @property
    def children(self):
        return (self.input, self.edge)


@dataclass(frozen=True)
class PGraphJoin(PhysicalNode):
    left: PhysicalNode
    right: PhysicalNode
    edge: PhysicalNode
    spec: GraphSpec
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0

    @property
    def children(self):
        return (self.left, self.right, self.edge)


@dataclass(frozen=True)
class PUnnest(PhysicalNode):
    input: PhysicalNode
    operand: BoundExpr
    ordinality: Optional[PlanColumn]
    outer: bool
    unnested: tuple[PlanColumn, ...]
    schema: tuple[PlanColumn, ...]
    est_rows: float = 0.0
    est_cost: float = 0.0

    @property
    def children(self):
        return (self.input,)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def node_name(node: PhysicalNode) -> str:
    """Display name: the class name without the ``P`` prefix."""
    return type(node).__name__[1:]


def node_detail(node: PhysicalNode) -> str:
    """Operator-specific annotation used by EXPLAIN and the profiler."""
    if isinstance(node, PScan):
        if node.zone_filters:
            zones = ", ".join(zf.describe() for zf in node.zone_filters)
            return f" {node.table} [zone-skip: {zones}]"
        return f" {node.table}"
    if isinstance(node, PFilter):
        return " [streamable]" if node.streamable else ""
    if isinstance(node, PAggregate):
        return " [streamable]" if node.streamable else ""
    if isinstance(node, PSort):
        return f" [limit={node.limit}]" if node.limit is not None else ""
    if isinstance(node, PHashJoin):
        build = "left" if node.build_left else "right"
        probe = ""
        if node.probe_zone:
            cols = ", ".join(name for _, name in node.probe_zone)
            probe = f", zone-probe={cols}"
        return f" [{node.kind}, build={build}, keys={len(node.pairs)}{probe}]"
    if isinstance(node, PNestedLoopJoin):
        return f" [{node.kind}]"
    if isinstance(node, PSetOp):
        return f" [{node.op}{' all' if node.all else ''}]"
    if isinstance(node, (PGraphSelect, PGraphJoin)):
        n_paths = sum(1 for c in node.spec.cheapest if c.path)
        paths = f" paths={n_paths}" if n_paths else ""
        return f" [cheapest={len(node.spec.cheapest)}{paths}]"
    if isinstance(node, PRecursive):
        return f" {node.cte_name}"
    return ""


def _fmt_est(value: float) -> str:
    if value >= 100 or value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def explain(node: PhysicalNode, indent: int = 0) -> str:
    """Readable multi-line physical-plan rendering with per-operator
    estimated rows and cumulative cost (the EXPLAIN output)."""
    pad = "  " * indent
    cols = ", ".join(c.name for c in node.schema)
    line = (
        f"{pad}{node_name(node)}{node_detail(node)} "
        f"(est_rows={_fmt_est(node.est_rows)} cost={_fmt_est(node.est_cost)})"
        f" -> ({cols})"
    )
    lines = [line]
    for child in node.children:
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
