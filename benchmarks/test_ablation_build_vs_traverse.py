"""Ablation A2: where does the time go — graph build vs traversal?

The paper's central performance finding: "The execution time is almost
entirely dominated by the construction of the graph representation."
This ablation times the two phases separately (dictionary encoding + CSR
build vs one BFS traversal) and asserts that the build dominates a
single-pair query, exactly the paper's motivation for batching and for
the future-work graph indices.
"""

import time

import numpy as np
import pytest

from repro.graph import GraphLibrary, bfs

from conftest import SCALE_FACTORS


@pytest.fixture(scope="module")
def edge_arrays(networks):
    network = networks[max(SCALE_FACTORS)]
    src, dst, _, _ = network.directed_edges()
    return network, src, dst


def test_bench_graph_build(benchmark, edge_arrays):
    """Phase 1: vertex-domain encoding + CSR construction."""
    _, src, dst = edge_arrays
    benchmark(lambda: GraphLibrary(src, dst))


def test_bench_single_traversal(benchmark, edge_arrays):
    """Phase 2: one BFS over the prepared CSR (early exit disabled)."""
    network, src, dst = edge_arrays
    library = GraphLibrary(src, dst)
    rng = np.random.default_rng(23)
    sources = library.domain.encode(rng.choice(network.person_ids, size=32))
    state = {"i": 0}

    def one_bfs():
        source = int(sources[state["i"] % len(sources)])
        state["i"] += 1
        return bfs(library.csr, source)

    benchmark(one_bfs)


def test_build_dominates_single_pair_query(edge_arrays, capsys):
    """The paper's claim, measured: build time >> one early-exit BFS."""
    network, src, dst = edge_arrays
    repeats = 5
    build_total = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        library = GraphLibrary(src, dst)
        build_total += time.perf_counter() - start
    build = build_total / repeats

    rng = np.random.default_rng(29)
    encoded = library.domain.encode(rng.choice(network.person_ids, size=repeats * 2))
    traverse_total = 0.0
    for i in range(repeats):
        source, target = int(encoded[2 * i]), int(encoded[2 * i + 1])
        start = time.perf_counter()
        bfs(library.csr, source, targets=np.array([target]))
        traverse_total += time.perf_counter() - start
    traverse = traverse_total / repeats

    with capsys.disabled():
        print(
            f"\n=== A2 cost split (SF {max(SCALE_FACTORS)}) === "
            f"build {build * 1000:.2f} ms vs single-pair BFS "
            f"{traverse * 1000:.2f} ms ({build / max(traverse, 1e-9):.1f}x)"
        )
    assert build > traverse, "graph construction should dominate one lookup"
